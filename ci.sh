#!/bin/sh
# Tier-1 gate: build, test, and format-check the entire workspace,
# fully offline (every dependency is a workspace path crate — see
# Cargo.toml [workspace.dependencies]).
#
#   ./ci.sh
#
# Warnings are errors here; the workspace-wide lint expectations live
# in [workspace.lints] in the root Cargo.toml.
set -eu

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== build (release, -D warnings) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== lint (plan verifier + CompLL dataflow, full matrix) =="
# Runs hipress-lint over every strategy x algorithm x cluster-size
# task graph plus all shipped CompLL programs; any diagnostic fails.
cargo run --release -q --bin hipress -- lint

echo "== verify (bounded model checking of the wire/FT protocol) =="
# Exhaust the small-scope scenario matrix over the runtime's real
# protocol state machines: every scenario must terminate violation
# free (the CLI exits non-zero otherwise and prints per-scenario
# exploration stats, including the sleep-set reduction's pruning).
# Then a seeded protocol defect must be refuted with a counterexample
# trace — the mutant run exiting non-zero proves the checker has
# teeth, not just green lights.
cargo run --release -q --bin hipress -- verify
VERIFY_ERR=$(mktemp)
if cargo run --release -q --bin hipress -- verify --mutant skip-dedup \
    >/dev/null 2>"$VERIFY_ERR"; then
  echo "seeded protocol defect went undetected" >&2
  rm -f "$VERIFY_ERR"
  exit 1
fi
if ! grep -q "refute" "$VERIFY_ERR"; then
  echo "mutant run failed for the wrong reason:" >&2
  cat "$VERIFY_ERR" >&2
  rm -f "$VERIFY_ERR"
  exit 1
fi
# Same teeth for the elastic epoch-transition matrix: a seeded
# stale-epoch acceptance defect must be refuted with a counterexample.
if cargo run --release -q --bin hipress -- verify --mutant accept-stale-epoch \
    >/dev/null 2>"$VERIFY_ERR"; then
  echo "seeded elastic-protocol defect went undetected" >&2
  rm -f "$VERIFY_ERR"
  exit 1
fi
if ! grep -q "refute" "$VERIFY_ERR"; then
  echo "elastic mutant run failed for the wrong reason:" >&2
  cat "$VERIFY_ERR" >&2
  rm -f "$VERIFY_ERR"
  exit 1
fi
rm -f "$VERIFY_ERR"

echo "== trace smoke (sim + runtime export, read back by the crate's own parser) =="
# Both engines must export a Chrome trace that validates (every
# registered track non-empty) and survives the crate's import; the
# CLI itself enforces both and exits non-zero otherwise. trace-diff
# must then load the pair.
cargo run --release -q --bin hipress -- sim --model ResNet50 --nodes 4 \
  --trace /tmp/hipress-ci-sim.json >/dev/null
cargo run --release -q --bin hipress -- run --nodes 3 --algorithm onebit \
  --trace /tmp/hipress-ci-rt.json >/dev/null
cargo run --release -q --bin hipress -- trace-diff \
  /tmp/hipress-ci-sim.json /tmp/hipress-ci-rt.json >/dev/null
rm -f /tmp/hipress-ci-sim.json /tmp/hipress-ci-rt.json

echo "== chaos smoke (recoverable plan reproduces, crash plan fails structurally) =="
# A fixed-seed recoverable fault plan must complete bit-identical to
# the fault-free run (the CLI itself enforces the bitstream match and
# exits non-zero otherwise). A fixed-seed unrecoverable plan (victim
# crash) must exit non-zero with a structured error naming a node.
cargo run --release -q --bin hipress -- chaos --single --plan recoverable \
  --seed 7 >/dev/null
CHAOS_ERR=$(mktemp)
if cargo run --release -q --bin hipress -- chaos --single --plan crash \
    --victim 1 --deadline-ms 1500 >/dev/null 2>"$CHAOS_ERR"; then
  echo "chaos crash plan unexpectedly succeeded" >&2
  rm -f "$CHAOS_ERR"
  exit 1
fi
if ! grep -q "node" "$CHAOS_ERR"; then
  echo "chaos crash error did not name a node:" >&2
  cat "$CHAOS_ERR" >&2
  rm -f "$CHAOS_ERR"
  exit 1
fi
rm -f "$CHAOS_ERR"

echo "== multi-process smoke (loopback TCP reproduces the thread bitstream) =="
# Three real OS processes over a loopback TCP mesh must install bytes
# identical to the in-process thread engine (the CLI enforces the
# cross-check and exits non-zero otherwise). Then a run with an
# injected worker kill must fail with a structured error naming the
# dead node — never hang.
cargo run --release -q --bin hipress -- run --nodes 3 --algorithm onebit \
  --backend processes --iters 3 --window 2 --cross-check >/dev/null
PROC_ERR=$(mktemp)
if cargo run --release -q --bin hipress -- run --nodes 3 --algorithm onebit \
    --backend processes --kill-node 1 >/dev/null 2>"$PROC_ERR"; then
  echo "killed-worker run unexpectedly succeeded" >&2
  rm -f "$PROC_ERR"
  exit 1
fi
if ! grep -q "node 1" "$PROC_ERR"; then
  echo "killed-worker error did not name node 1:" >&2
  cat "$PROC_ERR" >&2
  rm -f "$PROC_ERR"
  exit 1
fi
rm -f "$PROC_ERR"

echo "== elastic smoke (survive rank loss, re-admit the restarted worker) =="
# Four processes, rank 2 killed at iteration 2: the run must finish
# every iteration on the survivors, bump the membership epoch, name
# the evicted rank, and exit 0 — with the continuation bit-identical
# to a fixed-membership run over the survivor set (the CLI enforces
# the cross-check and exits non-zero otherwise).
EL_OUT=$(mktemp)
cargo run --release -q --bin hipress -- run --elastic --backend processes \
  --nodes 4 --iters 6 --window 2 --kill-rank 2 --kill-iter 2 \
  --cross-check >"$EL_OUT"
grep -q "elastic: 4 worker(s), 2 epoch(s)" "$EL_OUT"
grep -q "evicted rank 2" "$EL_OUT"
grep -q "cross-check OK" "$EL_OUT"
# With --rejoin-after, the victim is restarted (`node --join`) and
# re-admitted at the next epoch boundary: final membership is back to
# 4 workers and the flows match a run that never crashed at all.
cargo run --release -q --bin hipress -- run --elastic --backend processes \
  --nodes 4 --iters 6 --window 2 --kill-rank 2 --kill-iter 2 \
  --rejoin-after 4 --cross-check >"$EL_OUT"
grep -q "final membership 4 node(s)" "$EL_OUT"
grep -q "cross-check OK" "$EL_OUT"
rm -f "$EL_OUT"

echo "== distributed trace smoke (per-rank traces stitch into one aligned timeline) =="
# A traced 4-process run must merge every rank's shipped trace into a
# single clock-aligned Chrome trace: the CLI validates cross-rank
# send->recv causality and trace->report parity itself (exiting
# non-zero otherwise), and trace-diff must re-import the merged file.
PROC_OUT=$(mktemp)
cargo run --release -q --bin hipress -- run --nodes 4 --algorithm onebit \
  --backend processes --iters 2 --window 2 \
  --trace /tmp/hipress-ci-proc.json >"$PROC_OUT"
grep -q "clock alignment OK" "$PROC_OUT"
rm -f "$PROC_OUT"
test -s /tmp/hipress-ci-proc.json
cargo run --release -q --bin hipress -- trace-diff \
  /tmp/hipress-ci-proc.json /tmp/hipress-ci-proc.json >/dev/null
rm -f /tmp/hipress-ci-proc.json

echo "== postmortem smoke (flight recorder survives a worker crash) =="
# Kill a worker mid-protocol with the flight dump armed: the run must
# fail, the surviving ranks' recorder rings must land in the dump, and
# `hipress postmortem` must render a cross-rank timeline whose root
# cause names the dead rank.
PM_DUMP=$(mktemp)
if cargo run --release -q --bin hipress -- run --nodes 3 --algorithm onebit \
    --backend processes --kill-node 1 \
    --flight-dump "$PM_DUMP" >/dev/null 2>&1; then
  echo "killed-worker run with --flight-dump unexpectedly succeeded" >&2
  rm -f "$PM_DUMP"
  exit 1
fi
if ! cargo run --release -q --bin hipress -- postmortem "$PM_DUMP" \
    | grep -q "root cause: node 1"; then
  echo "postmortem did not name node 1 as root cause" >&2
  rm -f "$PM_DUMP"
  exit 1
fi
rm -f "$PM_DUMP"

echo "== pipelining gate (pipelined must beat serial over the real fabric) =="
# Four processes, uncompressed ring, latency-bound shape: a window-16
# pipelined run must finish faster than the same work serialized
# (median of five interleaved pairs; the CLI exits non-zero if the
# pipeline loses).
cargo run --release -q --bin hipress -- bench --require-overlap

echo "== bench snapshot + perf gate =="
# Emit a machine-readable benchmark snapshot, re-read it with the
# crate's own parser (report --json), and run the --baseline gate as a
# self-compare at 0% tolerance — deterministic regardless of host
# speed. The second gate run injects a synthetic 50% slowdown and must
# trip, proving the gate can actually fail.
BENCH_DIR=$(mktemp -d)
cargo run --release -q --bin hipress -- bench --nodes 3 --dir "$BENCH_DIR" >/dev/null
cargo run --release -q --bin hipress -- report "$BENCH_DIR/BENCH_runtime.json" --json >/dev/null
cargo run --release -q --bin hipress -- bench --snapshot "$BENCH_DIR/BENCH_runtime.json" \
  --baseline "$BENCH_DIR/BENCH_runtime.json" --tolerance 0
if HIPRESS_BENCH_SLOWDOWN_PCT=50 cargo run --release -q --bin hipress -- bench \
    --snapshot "$BENCH_DIR/BENCH_runtime.json" \
    --baseline "$BENCH_DIR/BENCH_runtime.json" >/dev/null 2>&1; then
  echo "perf gate failed to trip on an injected 50% slowdown" >&2
  exit 1
fi
rm -rf "$BENCH_DIR"

echo "== telemetry smoke (live scrape/stream server + SLO watchdog) =="
# A fault-free process run with the embedded telemetry server attached
# must serve /healthz, Prometheus /metrics, and at least one /events
# NDJSON progress record while it lingers — and raise no watchdog
# alerts. A second run with an injected per-iteration slowdown
# (HIPRESS_TELEMETRY_SLOWDOWN_MS, the watchdog's analogue of
# HIPRESS_BENCH_SLOWDOWN_PCT) must deterministically raise
# alerts_total{kind="iteration_latency_regression"}. Scrapes use the
# binary's own std-TCP client (`hipress scrape`), no curl needed.
HIPRESS_BIN=target/release/hipress
TELE_OUT=$(mktemp)
"$HIPRESS_BIN" run --nodes 3 --algorithm onebit --backend processes \
  --iters 8 --window 2 --listen 127.0.0.1:0 --linger-ms 5000 >"$TELE_OUT" &
TELE_PID=$!
TELE_ADDR=""
for _ in $(seq 1 100); do
  TELE_ADDR=$(grep "telemetry: listening on" "$TELE_OUT" 2>/dev/null \
    | awk '{print $4}') || true
  [ -n "$TELE_ADDR" ] && break
  sleep 0.1
done
if [ -z "$TELE_ADDR" ]; then
  echo "telemetry server never announced its address" >&2
  exit 1
fi
# Wait for retirement so /metrics holds the folded worker metrics and
# the record count is final (3 ranks x 8 iterations = 24).
for _ in $(seq 1 100); do
  grep -q "replicas consistent: true" "$TELE_OUT" 2>/dev/null && break
  sleep 0.1
done
"$HIPRESS_BIN" scrape "$TELE_ADDR" /healthz | grep -q '"records":24'
"$HIPRESS_BIN" scrape "$TELE_ADDR" /events --lines 1 | grep -q '"iter":'
"$HIPRESS_BIN" scrape "$TELE_ADDR" /report.json | grep -q '"pipeline_window":2'
TELE_METRICS=$(mktemp)
"$HIPRESS_BIN" scrape "$TELE_ADDR" /metrics >"$TELE_METRICS"
grep -q "^bytes_wire" "$TELE_METRICS"
if grep -q "alerts_total" "$TELE_METRICS"; then
  echo "fault-free run raised watchdog alerts:" >&2
  grep "alerts_total" "$TELE_METRICS" >&2
  exit 1
fi
wait "$TELE_PID"
rm -f "$TELE_OUT" "$TELE_METRICS"
TELE_OUT=$(mktemp)
HIPRESS_TELEMETRY_SLOWDOWN_MS=200 "$HIPRESS_BIN" run --nodes 3 \
  --algorithm onebit --backend processes --iters 8 --window 2 \
  --listen 127.0.0.1:0 --linger-ms 5000 >"$TELE_OUT" &
TELE_PID=$!
for _ in $(seq 1 200); do
  grep -q "replicas consistent: true" "$TELE_OUT" 2>/dev/null && break
  sleep 0.1
done
TELE_ADDR=$(grep "telemetry: listening on" "$TELE_OUT" | awk '{print $4}')
TELE_ALERTS=$("$HIPRESS_BIN" scrape "$TELE_ADDR" /metrics \
  | grep 'alerts_total{kind="iteration_latency_regression"}' \
  | awk '{print $NF}') || true
if [ "${TELE_ALERTS:-0}" -le 0 ]; then
  echo "injected slowdown did not raise the latency-regression alert" >&2
  exit 1
fi
wait "$TELE_PID"
rm -f "$TELE_OUT"

echo "== fmt =="
cargo fmt --check

echo "ci.sh: all green"

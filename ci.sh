#!/bin/sh
# Tier-1 gate: build, test, and format-check the entire workspace,
# fully offline (every dependency is a workspace path crate — see
# Cargo.toml [workspace.dependencies]).
#
#   ./ci.sh
#
# Warnings are errors here; the workspace-wide lint expectations live
# in [workspace.lints] in the root Cargo.toml.
set -eu

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== build (release, -D warnings) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== lint (plan verifier + CompLL dataflow, full matrix) =="
# Runs hipress-lint over every strategy x algorithm x cluster-size
# task graph plus all shipped CompLL programs; any diagnostic fails.
cargo run --release -q --bin hipress -- lint

echo "== fmt =="
cargo fmt --check

echo "ci.sh: all green"

//! Property-based tests of the selective compression planner.

use hipress_compress::Algorithm;
use hipress_core::{ClusterConfig, Strategy};
use hipress_planner::Planner;
use proptest::prelude::*;

fn planner(nodes: usize, strategy: Strategy, alg: Algorithm) -> Planner {
    Planner::profile(&ClusterConfig::ec2(nodes), strategy, alg).expect("profiling succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Plans are always structurally valid: K >= 1 and bounded.
    #[test]
    fn plans_are_valid(bytes in 4u64..(1u64 << 30), nodes in 2usize..20) {
        let bytes = bytes / 4 * 4;
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let p = planner(nodes, strategy, Algorithm::OneBit);
            let plan = p.plan_gradient(bytes.max(4));
            prop_assert!(plan.partitions >= 1);
            prop_assert!(plan.partitions <= (nodes * 4).clamp(4, 64));
        }
    }

    /// The compression decision is monotone in gradient size: if a
    /// gradient is compressed, every larger gradient is too.
    #[test]
    fn decision_monotone_in_size(small in 1024u64..(1 << 22), factor in 2u64..64, nodes in 2usize..17) {
        let small = small / 4 * 4;
        let large = small * factor;
        let p = planner(nodes, Strategy::CaSyncPs, Algorithm::OneBit);
        if p.plan_gradient(small).compress {
            prop_assert!(
                p.plan_gradient(large).compress,
                "compressed at {small} but not at {large}"
            );
        }
    }

    /// The predicted compressed-path cost never exceeds raw cost for
    /// very large gradients (compression must win in the limit).
    #[test]
    fn compression_wins_in_the_limit(nodes in 2usize..17) {
        for alg in [Algorithm::OneBit, Algorithm::Dgc { rate: 0.001 }] {
            let p = planner(nodes, Strategy::CaSyncRing, alg);
            let plan = p.plan_gradient(512 << 20);
            prop_assert!(plan.compress, "{alg:?} at {nodes} nodes");
        }
    }

    /// Eq. 1/2 algebra: predicted costs are positive and increase with
    /// gradient size at fixed K.
    #[test]
    fn costs_increase_with_size(k in 1usize..16, nodes in 2usize..17) {
        let p = planner(nodes, Strategy::CaSyncPs, Algorithm::OneBit);
        let m = p.cost_model();
        let mut prev_orig = 0.0;
        let mut prev_cpr = 0.0;
        for bytes in [1u64 << 16, 1 << 20, 1 << 24, 1 << 28] {
            let o = m.t_sync_orig(bytes, k, nodes);
            let c = m.t_sync_cpr(bytes, k, nodes);
            prop_assert!(o > prev_orig, "orig cost must grow");
            prop_assert!(c > prev_cpr, "cpr cost must grow");
            prev_orig = o;
            prev_cpr = c;
        }
    }
}

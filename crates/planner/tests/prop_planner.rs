//! Randomized tests of the selective compression planner, driven by
//! the workspace's own deterministic PRNGs.

use hipress_compress::Algorithm;
use hipress_core::{ClusterConfig, Strategy};
use hipress_planner::Planner;
use hipress_util::rng::{Rng64, Xoshiro256};

const CASES: usize = 16;

fn planner(nodes: usize, strategy: Strategy, alg: Algorithm) -> Planner {
    Planner::profile(&ClusterConfig::ec2(nodes), strategy, alg).expect("profiling succeeds")
}

/// Plans are always structurally valid: K >= 1 and bounded.
#[test]
fn plans_are_valid() {
    let mut rng = Xoshiro256::new(0x71A9_0001);
    for _ in 0..CASES {
        let bytes = rng.range_u64(4, 1 << 30) / 4 * 4;
        let nodes = rng.range_u64(2, 20) as usize;
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let p = planner(nodes, strategy, Algorithm::OneBit);
            let plan = p.plan_gradient(bytes.max(4));
            assert!(plan.partitions >= 1);
            assert!(plan.partitions <= (nodes * 4).clamp(4, 64));
        }
    }
}

/// The compression decision is monotone in gradient size: if a
/// gradient is compressed, every larger gradient is too.
#[test]
fn decision_monotone_in_size() {
    let mut rng = Xoshiro256::new(0x71A9_0002);
    for _ in 0..CASES {
        let small = rng.range_u64(1024, 1 << 22) / 4 * 4;
        let factor = rng.range_u64(2, 64);
        let nodes = rng.range_u64(2, 17) as usize;
        let large = small * factor;
        let p = planner(nodes, Strategy::CaSyncPs, Algorithm::OneBit);
        if p.plan_gradient(small).compress {
            assert!(
                p.plan_gradient(large).compress,
                "compressed at {small} but not at {large}"
            );
        }
    }
}

/// The predicted compressed-path cost never exceeds raw cost for
/// very large gradients (compression must win in the limit).
#[test]
fn compression_wins_in_the_limit() {
    let mut rng = Xoshiro256::new(0x71A9_0003);
    for _ in 0..CASES {
        let nodes = rng.range_u64(2, 17) as usize;
        for alg in [Algorithm::OneBit, Algorithm::Dgc { rate: 0.001 }] {
            let p = planner(nodes, Strategy::CaSyncRing, alg);
            let plan = p.plan_gradient(512 << 20);
            assert!(plan.compress, "{alg:?} at {nodes} nodes");
        }
    }
}

/// Eq. 1/2 algebra: predicted costs are positive and increase with
/// gradient size at fixed K.
#[test]
fn costs_increase_with_size() {
    let mut rng = Xoshiro256::new(0x71A9_0004);
    for _ in 0..CASES {
        let k = rng.range_u64(1, 16) as usize;
        let nodes = rng.range_u64(2, 17) as usize;
        let p = planner(nodes, Strategy::CaSyncPs, Algorithm::OneBit);
        let m = p.cost_model();
        let mut prev_orig = 0.0;
        let mut prev_cpr = 0.0;
        for bytes in [1u64 << 16, 1 << 20, 1 << 24, 1 << 28] {
            let o = m.t_sync_orig(bytes, k, nodes);
            let c = m.t_sync_cpr(bytes, k, nodes);
            assert!(o > prev_orig, "orig cost must grow");
            assert!(c > prev_cpr, "cpr cost must grow");
            prev_orig = o;
            prev_cpr = c;
        }
    }
}

//! The α/β/γ synchronization parameters (Table 3 and the §6.1
//! deployed variants).

use hipress_core::Strategy;

/// The cost-model coefficients for one strategy instance:
///
/// * `alpha` — serial communication steps per gradient,
/// * `beta` — encode operators that do not overlap transmission,
/// * `gamma` — decode operators that do not overlap transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncParams {
    /// Serial communication steps.
    pub alpha: f64,
    /// Non-overlapped encodes.
    pub beta: f64,
    /// Non-overlapped decodes.
    pub gamma: f64,
}

impl SyncParams {
    /// Table 3 as printed: the theoretical values with dedicated
    /// aggregators.
    ///
    /// | strategy    | α       | β     | γ     |
    /// |-------------|---------|-------|-------|
    /// | CaSync-Ring | 2(N−1)  | N     | N     |
    /// | CaSync-PS   | 2N      | K+1   | N+1   |
    pub fn table3(strategy: Strategy, n: usize, k: usize) -> SyncParams {
        let nf = n as f64;
        match strategy {
            Strategy::CaSyncRing | Strategy::HorovodRing => SyncParams {
                alpha: 2.0 * (nf - 1.0),
                beta: nf,
                gamma: nf,
            },
            Strategy::CaSyncPs | Strategy::BytePs => SyncParams {
                alpha: 2.0 * nf,
                beta: k as f64 + 1.0,
                gamma: nf + 1.0,
            },
        }
    }

    /// The §6.1 deployed values: CaSync-PS co-locates aggregators and
    /// workers, so local traffic skips the network — α = 2(N−1),
    /// β = K, γ = N. Ring is unchanged.
    pub fn deployed(strategy: Strategy, n: usize, k: usize) -> SyncParams {
        let nf = n as f64;
        match strategy {
            Strategy::CaSyncRing | Strategy::HorovodRing => Self::table3(strategy, n, k),
            Strategy::CaSyncPs | Strategy::BytePs => SyncParams {
                alpha: 2.0 * (nf - 1.0),
                beta: k as f64,
                gamma: nf,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_ring_values() {
        let p = SyncParams::table3(Strategy::CaSyncRing, 16, 4);
        assert_eq!(p.alpha, 30.0);
        assert_eq!(p.beta, 16.0);
        assert_eq!(p.gamma, 16.0);
    }

    #[test]
    fn table3_ps_values() {
        let p = SyncParams::table3(Strategy::CaSyncPs, 16, 4);
        assert_eq!(p.alpha, 32.0);
        assert_eq!(p.beta, 5.0);
        assert_eq!(p.gamma, 17.0);
    }

    #[test]
    fn deployed_ps_drops_local_traffic() {
        let t3 = SyncParams::table3(Strategy::CaSyncPs, 16, 4);
        let dep = SyncParams::deployed(Strategy::CaSyncPs, 16, 4);
        assert!(dep.alpha < t3.alpha);
        assert_eq!(dep.alpha, 30.0);
        assert_eq!(dep.beta, 4.0);
        assert_eq!(dep.gamma, 16.0);
    }

    #[test]
    fn deployed_ring_unchanged() {
        assert_eq!(
            SyncParams::deployed(Strategy::CaSyncRing, 8, 2),
            SyncParams::table3(Strategy::CaSyncRing, 8, 2)
        );
    }
}

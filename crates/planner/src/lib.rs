//! Selective compression and partitioning (§3.3 of the paper).
//!
//! Compressing a gradient is not free: the encode/decode kernels cost
//! GPU time that communication savings must pay back. For each
//! gradient the planner compares
//!
//! ```text
//! T_sync^orig(m, K) = α · T_send(m / K)                       (Eq. 1)
//! T_sync^cpr (m, K) = α · T_send(r·m/K) + β · T_enc(m/K)
//!                                       + γ · T_dec(r·m/K)    (Eq. 2)
//! ```
//!
//! over the partition count `K`, where α is the number of serial
//! communication steps and β/γ count the encode/decode operators that
//! cannot overlap transmission (Table 3). The winning `<compress?, K>`
//! tuple per gradient is Table 7's content.
//!
//! The cost curves `T_enc`, `T_dec`, `T_send` are *profiled*, not
//! assumed: the planner launches simulated kernels and point-to-point
//! transfers at a ladder of sizes and fits affine curves — mirroring
//! "we launch the GPU kernels and peer-to-peer communication tasks
//! with respect to different gradient sizes to fit the compression
//! and network cost curves" (§3.3).

#![forbid(unsafe_code)]

mod cost;
mod params;

pub use cost::{CostModel, PlanChoice};
pub use params::SyncParams;

use hipress_compress::Algorithm;
use hipress_core::{ClusterConfig, GradPlan, Strategy};
use hipress_util::Result;

/// The selective compression and partitioning planner.
///
/// Build one per (cluster, strategy, algorithm) configuration; it
/// profiles the cost curves once and then plans arbitrarily many
/// gradients.
pub struct Planner {
    model: CostModel,
    nodes: usize,
    metrics: Option<hipress_metrics::Scope>,
}

impl Planner {
    /// Profiles the cost curves for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid cluster configs or
    /// [`Algorithm::None`] (nothing to plan).
    pub fn profile(
        cluster: &ClusterConfig,
        strategy: Strategy,
        algorithm: Algorithm,
    ) -> Result<Planner> {
        let model = CostModel::profile(cluster, strategy, algorithm)?;
        Ok(Planner {
            model,
            nodes: cluster.nodes,
            metrics: None,
        })
    }

    /// Records planning activity into `scope`: every decision adds its
    /// cost-model evaluation count to the `planner_cost_evals` counter
    /// and the winning predicted synchronization time to the
    /// `planner_predicted_sync_ns` histogram.
    #[must_use]
    pub fn with_metrics(mut self, scope: &hipress_metrics::Scope) -> Self {
        self.metrics = Some(scope.clone());
        self
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Derives a planner for a changed member set — the re-planning
    /// step of an elastic epoch bump. The profiled cost curves carry
    /// over unchanged (they are node-count-independent measurements;
    /// see [`CostModel::retarget`]), so re-planning is instantaneous:
    /// only the serial-step counts α and the partition cap follow the
    /// new membership. The result is identical to freshly profiling a
    /// cluster of `members` nodes.
    ///
    /// # Errors
    ///
    /// Returns an error when `members < 2` — one node has nobody to
    /// synchronize with, mirroring the runtime's refusal to continue
    /// an elastic run below two survivors.
    pub fn replan(&self, members: usize) -> Result<Planner> {
        if members < 2 {
            return Err(hipress_util::Error::plan(format!(
                "cannot re-plan for {members} member(s): synchronization needs at least 2"
            )));
        }
        Ok(Planner {
            model: self.model.retarget(members),
            nodes: members,
            metrics: self.metrics.clone(),
        })
    }

    /// Plans one gradient of `bytes` bytes: whether to compress and
    /// into how many partitions to split.
    pub fn plan_gradient(&self, bytes: u64) -> GradPlan {
        let choice = self.model.best_plan(bytes, self.nodes);
        if let Some(scope) = &self.metrics {
            use hipress_metrics::names;
            scope.counter(names::PLANNER_EVALS, &[]).add(choice.evals);
            let predicted = if choice.plan.compress {
                choice.t_cpr_ns
            } else {
                choice.t_orig_ns
            };
            scope
                .histogram(names::PLANNER_PREDICTED_SYNC_NS, &[])
                .record(predicted.max(0.0) as u64);
        }
        choice.plan
    }

    /// Plans every gradient of a model (sizes in bytes).
    pub fn plan_model(&self, layer_bytes: &[u64]) -> Vec<GradPlan> {
        layer_bytes.iter().map(|&b| self.plan_gradient(b)).collect()
    }

    /// The smallest gradient size (bytes) for which compression wins,
    /// determined by bisection over the planner's decisions — the
    /// "compress gradients larger than X" threshold of §6.1.
    pub fn compression_threshold(&self) -> u64 {
        let (mut lo, mut hi) = (4u64, 1 << 30);
        // The decision is monotone in practice: compression wins for
        // large gradients. Bisect on the boundary.
        while hi - lo > 4 {
            let mid = ((lo + hi) / 2) / 4 * 4;
            if self.plan_gradient(mid).compress {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_simnet::LinkSpec;

    fn planner(nodes: usize, strategy: Strategy) -> Planner {
        Planner::profile(&ClusterConfig::ec2(nodes), strategy, Algorithm::OneBit).unwrap()
    }

    #[test]
    fn large_gradients_are_compressed_and_partitioned() {
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let p = planner(16, strategy);
            let plan = p.plan_gradient(392 << 20); // VGG19 fc6.
            assert!(plan.compress, "{strategy:?}");
            assert!(plan.partitions > 1, "{strategy:?}: K={}", plan.partitions);
        }
    }

    #[test]
    fn tiny_gradients_are_not_compressed() {
        // SS3.2: small gradients' compression overhead cannot be
        // repaid; 4 KiB biases stay raw.
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let p = planner(16, strategy);
            let plan = p.plan_gradient(4 * 1024);
            assert!(!plan.compress, "{strategy:?}");
        }
    }

    #[test]
    fn threshold_is_monotone_boundary() {
        let p = planner(16, Strategy::CaSyncPs);
        let thr = p.compression_threshold();
        assert!(thr > 4 * 1024, "threshold {thr} too small");
        assert!(thr < 64 << 20, "threshold {thr} too large");
        assert!(!p.plan_gradient(thr / 2).compress);
        assert!(p.plan_gradient(thr * 2).compress);
    }

    #[test]
    fn slower_network_favors_compression() {
        let fast = planner(16, Strategy::CaSyncPs);
        let slow = Planner::profile(
            &ClusterConfig::ec2(16).with_link(LinkSpec::gbps10()),
            Strategy::CaSyncPs,
            Algorithm::OneBit,
        )
        .unwrap();
        assert!(
            slow.compression_threshold() <= fast.compression_threshold(),
            "slow {} vs fast {}",
            slow.compression_threshold(),
            fast.compression_threshold()
        );
    }

    #[test]
    fn replan_matches_fresh_profile_over_a_byte_ladder() {
        // An elastic epoch bump re-plans with retargeted curves; the
        // decisions must be indistinguishable from profiling the
        // smaller (or re-grown) cluster from scratch.
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let original = planner(16, strategy);
            for members in [15usize, 8, 4, 2, 16] {
                let replanned = original.replan(members).unwrap();
                let fresh = planner(members, strategy);
                for bytes in [4096u64, 64 << 10, 1 << 20, 16 << 20, 392 << 20] {
                    let a = replanned.plan_gradient(bytes);
                    let b = fresh.plan_gradient(bytes);
                    assert_eq!(
                        (a.compress, a.partitions),
                        (b.compress, b.partitions),
                        "{strategy:?}: {members} members, {bytes} bytes"
                    );
                }
                assert_eq!(
                    replanned.compression_threshold(),
                    fresh.compression_threshold(),
                    "{strategy:?}: {members} members"
                );
            }
        }
    }

    #[test]
    fn replan_below_two_members_is_refused() {
        let p = planner(4, Strategy::CaSyncPs);
        assert!(p.replan(1).is_err());
        assert!(p.replan(0).is_err());
        assert!(p.replan(2).is_ok());
    }

    #[test]
    fn plan_model_covers_all_layers() {
        let p = planner(4, Strategy::CaSyncRing);
        let plans = p.plan_model(&[4096, 1 << 20, 392 << 20]);
        assert_eq!(plans.len(), 3);
        assert!(plans.iter().all(|pl| pl.partitions >= 1));
    }

    #[test]
    fn metrics_count_cost_evaluations() {
        use hipress_metrics::{names, Registry};
        let registry = Registry::new();
        let p = planner(4, Strategy::CaSyncPs).with_metrics(&registry.root());
        p.plan_model(&[4096, 1 << 20, 392 << 20]);
        let snap = registry.snapshot();
        // Each gradient sweeps K for both equations; every decision
        // contributes at least one evaluation pair.
        assert!(snap.total_counter(names::PLANNER_EVALS) >= 3 * 2);
        let (count, _) = snap.hist_totals(names::PLANNER_PREDICTED_SYNC_NS);
        assert_eq!(count, 3, "one predicted time per planned gradient");
        // Without metrics installed nothing is recorded.
        let silent = Registry::new();
        planner(4, Strategy::CaSyncPs).plan_gradient(1 << 20);
        assert!(silent.snapshot().is_empty());
    }

    #[test]
    fn none_algorithm_rejected() {
        assert!(
            Planner::profile(&ClusterConfig::ec2(4), Strategy::CaSyncPs, Algorithm::None).is_err()
        );
    }
}

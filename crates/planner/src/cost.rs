//! The profiled cost model implementing Equations (1) and (2).

use crate::params::SyncParams;
use hipress_compress::Algorithm;
use hipress_core::{ClusterConfig, GradPlan, Strategy};
use hipress_simgpu::profile::{default_sizes, CompressionProfile};
use hipress_simnet::{Fabric, NodeId};
use hipress_util::fit::AffineFit;
use hipress_util::{Error, Result};

/// The outcome of planning one gradient: the chosen plan plus the
/// predicted costs backing it (useful for Table 7 style reporting).
#[derive(Debug, Clone, Copy)]
pub struct PlanChoice {
    /// The decision.
    pub plan: GradPlan,
    /// Predicted synchronization time without compression at the best
    /// uncompressed K, in ns.
    pub t_orig_ns: f64,
    /// Predicted synchronization time with compression at the best
    /// compressed K, in ns.
    pub t_cpr_ns: f64,
    /// Cost-model evaluations spent on this decision (both equations
    /// across the whole K sweep).
    pub evals: u64,
}

/// The profiled §3.3 cost model for one (cluster, strategy,
/// algorithm) configuration.
pub struct CostModel {
    strategy: Strategy,
    /// Compression cost curves and ratio.
    profile: CompressionProfile,
    /// `T_send(m)` affine fit, ns over bytes.
    send: AffineFit,
    /// Maximum partition count considered (the "beyond N partitions"
    /// relaxation caps at a small multiple of N).
    k_max: usize,
}

impl CostModel {
    /// Profiles the three cost curves for the configuration.
    pub fn profile(
        cluster: &ClusterConfig,
        strategy: Strategy,
        algorithm: Algorithm,
    ) -> Result<CostModel> {
        cluster.validate()?;
        let compressor = algorithm
            .build()
            .ok_or_else(|| Error::plan("cannot plan for Algorithm::None"))?;
        let costs = compressor.cost_profile();
        let ratio = {
            // Marginal ratio at a large probe, matching the
            // synchronization layer's CompressionSpec.
            let probe = 1u64 << 24;
            let zero = compressor.compressed_size(0);
            (compressor.compressed_size(probe as usize / 4) - zero) as f64 / probe as f64
        };
        let profile = CompressionProfile::measure(
            &cluster.gpu,
            costs.encode_passes,
            costs.decode_passes,
            ratio,
        );
        // Profile the network exactly as the paper does: timed
        // point-to-point transfers at a ladder of sizes.
        let fabric = Fabric::homogeneous(cluster.nodes.max(2), cluster.effective_link())?;
        let samples: Vec<(f64, f64)> = default_sizes()
            .into_iter()
            .map(|m| {
                (
                    m as f64,
                    fabric.isolated_transfer_ns(NodeId(0), NodeId(1), m) as f64,
                )
            })
            .collect();
        let send = AffineFit::fit(&samples)
            .ok_or_else(|| Error::plan("network profiling produced a degenerate curve"))?;
        Ok(CostModel {
            strategy,
            profile,
            send,
            k_max: (cluster.nodes * 4).clamp(4, 64),
        })
    }

    /// Re-targets the profiled model at a new node count without
    /// re-profiling. The encode/decode kernel curves are per-device
    /// and the `T_send` fit is a point-to-point link measurement —
    /// neither depends on how many nodes participate — so an elastic
    /// re-plan after a membership change reuses them verbatim; only
    /// the partition-count cap moves with the cluster size.
    #[must_use]
    pub fn retarget(&self, nodes: usize) -> CostModel {
        CostModel {
            strategy: self.strategy,
            profile: self.profile,
            send: self.send,
            k_max: (nodes * 4).clamp(4, 64),
        }
    }

    /// `T_send(m)` in ns.
    pub fn t_send_ns(&self, bytes: f64) -> f64 {
        self.send.eval(bytes).max(0.0)
    }

    /// `T_enc(m)` in ns.
    pub fn t_enc_ns(&self, bytes: f64) -> f64 {
        self.profile.encode.eval(bytes).max(0.0)
    }

    /// `T_dec` for the compressed form of an m-byte chunk, in ns.
    pub fn t_dec_ns(&self, bytes: f64) -> f64 {
        self.profile.decode.eval(bytes).max(0.0)
    }

    /// The compression ratio `r`.
    pub fn ratio(&self) -> f64 {
        self.profile.ratio
    }

    /// Equation (1): synchronization cost without compression.
    pub fn t_sync_orig(&self, m: u64, k: usize, n: usize) -> f64 {
        let p = SyncParams::deployed(self.strategy, n, k);
        let chunk = m as f64 / k as f64;
        // All K partitions flow in parallel; batches beyond N
        // pipeline, adding one bottleneck stage each.
        let batches = k.div_ceil(n).max(1) as f64;
        let per_batch = p.alpha * self.t_send_ns(chunk);
        per_batch + (batches - 1.0) * self.t_send_ns(chunk) * p.alpha / batches.max(1.0)
    }

    /// Equation (2): synchronization cost with compression.
    pub fn t_sync_cpr(&self, m: u64, k: usize, n: usize) -> f64 {
        let p = SyncParams::deployed(self.strategy, n, k);
        let chunk = m as f64 / k as f64;
        let send = p.alpha * self.t_send_ns(self.profile.ratio * chunk);
        let enc = p.beta * self.t_enc_ns(chunk);
        let dec = p.gamma * self.t_dec_ns(chunk);
        let per_batch = send + enc + dec;
        // K > N: group partitions into ceil(K/N) pipelined batches;
        // each extra batch adds roughly its bottleneck stage.
        let batches = k.div_ceil(n).max(1) as f64;
        let bottleneck = send.max(enc).max(dec) / batches;
        per_batch + (batches - 1.0) * bottleneck
    }

    /// Searches K for both alternatives and picks the cheaper one.
    pub fn best_plan(&self, m: u64, n: usize) -> PlanChoice {
        let mut best_orig = (f64::INFINITY, 1usize);
        let mut best_cpr = (f64::INFINITY, 1usize);
        let max_k = self.k_max.min(((m / 4).max(1)) as usize);
        for k in 1..=max_k {
            let o = self.t_sync_orig(m, k, n);
            if o < best_orig.0 {
                best_orig = (o, k);
            }
            let c = self.t_sync_cpr(m, k, n);
            if c < best_cpr.0 {
                best_cpr = (c, k);
            }
        }
        let compress = best_cpr.0 < best_orig.0;
        PlanChoice {
            plan: GradPlan {
                compress,
                partitions: if compress { best_cpr.1 } else { best_orig.1 },
            },
            t_orig_ns: best_orig.0,
            t_cpr_ns: best_cpr.0,
            evals: 2 * max_k as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(strategy: Strategy) -> CostModel {
        CostModel::profile(&ClusterConfig::ec2(16), strategy, Algorithm::OneBit).unwrap()
    }

    #[test]
    fn send_curve_matches_fabric() {
        let m = model(Strategy::CaSyncPs);
        let cluster = ClusterConfig::ec2(16);
        let fabric = Fabric::homogeneous(2, cluster.effective_link()).unwrap();
        for bytes in [1u64 << 16, 1 << 22, 1 << 26] {
            let measured = fabric.isolated_transfer_ns(NodeId(0), NodeId(1), bytes) as f64;
            let predicted = m.t_send_ns(bytes as f64);
            assert!(
                (measured - predicted).abs() / measured < 0.01,
                "bytes {bytes}: {predicted} vs {measured}"
            );
        }
    }

    #[test]
    fn compression_wins_for_large_m_on_both_equations() {
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let m = model(strategy);
            let big = 128 << 20;
            let orig = m.t_sync_orig(big, 16, 16);
            let cpr = m.t_sync_cpr(big, 16, 16);
            assert!(cpr < orig, "{strategy:?}: {cpr} !< {orig}");
        }
    }

    #[test]
    fn compression_loses_for_tiny_m() {
        let m = model(Strategy::CaSyncPs);
        let tiny = 1024;
        assert!(m.t_sync_cpr(tiny, 1, 16) > m.t_sync_orig(tiny, 1, 16));
    }

    #[test]
    fn cost_decreases_then_increases_in_k() {
        // Eq. 2 is convex-ish in K: launch overheads eventually
        // dominate the parallelism gains.
        let m = model(Strategy::CaSyncPs);
        let big = 392u64 << 20;
        let costs: Vec<f64> = (1..=32).map(|k| m.t_sync_cpr(big, k, 16)).collect();
        let best = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(best > 0, "partitioning must help a 392 MiB gradient");
        // K=1 is strictly worse than the optimum.
        assert!(
            costs[0] > costs[best] * 1.2,
            "{} vs {}",
            costs[0],
            costs[best]
        );
    }

    #[test]
    fn ratio_matches_algorithm() {
        let m = model(Strategy::CaSyncRing);
        assert!((m.ratio() - 1.0 / 32.0).abs() < 1e-3);
    }
}

//! Simulated GPU/CPU compute for gradient compression.
//!
//! Gradient compression kernels are memory-bound scans (§2.5 of the
//! paper: "extremely memory-intensive and require massive
//! parallelism"). Their execution time is therefore well modelled by a
//! roofline: a fixed launch overhead plus `passes × bytes` moved at
//! the device's effective memory bandwidth. This crate provides:
//!
//! * [`DeviceSpec`] — effective-bandwidth presets for the paper's
//!   hardware (V100, GTX 1080 Ti) and a CPU executor that reproduces
//!   the ~35× on-CPU slowdown (§2.5),
//! * [`GpuDevice`] — per-device kernel streams (FIFO) so compression
//!   kernels from concurrent gradients serialize realistically, plus a
//!   copy engine for PCIe/NVLink transfers,
//! * [`profile`] — the measurement harness the selective compression
//!   planner uses to fit `T_enc(m) = a + b·m` cost curves, mirroring
//!   the paper's profiling of compression algorithms (§3.3).

#![forbid(unsafe_code)]

mod device;
pub mod profile;

pub use device::{intra_node_allreduce_ns, CopyPath, DeviceSpec, GpuDevice, StreamId};

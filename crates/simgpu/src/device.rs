//! Device specifications and the execution-time model.

use hipress_simevent::{FifoResource, SimTime};
use hipress_util::units::Bandwidth;

/// Identifies a kernel stream of a [`GpuDevice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub usize);

/// Which interconnect a device-to-device or device-to-host copy uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyPath {
    /// Host ↔ device over PCIe.
    Pcie,
    /// Peer GPU over NVLink (if the device has it; falls back to PCIe
    /// otherwise).
    Peer,
}

/// Execution-time parameters of a compute device.
///
/// `effective_bandwidth` is deliberately below the headline memory
/// bandwidth: streaming kernels reach 70–80% of peak. The presets bake
/// that in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Effective streaming memory bandwidth for kernels.
    pub effective_bandwidth: Bandwidth,
    /// Fixed cost of launching one kernel (plus completion callback).
    pub kernel_launch_ns: u64,
    /// Host ↔ device copy bandwidth (PCIe).
    pub pcie_bandwidth: Bandwidth,
    /// Peer-to-peer bandwidth between GPUs in the same node, if a
    /// fast interconnect exists (NVLink on the V100 nodes).
    pub peer_bandwidth: Option<Bandwidth>,
}

impl DeviceSpec {
    /// NVIDIA Tesla V100 (32 GB, NVLink) — the paper's EC2
    /// p3dn.24xlarge GPUs. 900 GB/s HBM2 peak, ~700 GB/s effective.
    pub fn v100() -> Self {
        Self {
            name: "V100",
            effective_bandwidth: Bandwidth::gbytes_per_sec(700.0),
            kernel_launch_ns: 10_000,
            pcie_bandwidth: Bandwidth::gbytes_per_sec(12.0),
            peer_bandwidth: Some(Bandwidth::gbytes_per_sec(150.0)),
        }
    }

    /// NVIDIA GTX 1080 Ti — the paper's local-cluster GPUs. 484 GB/s
    /// peak, ~380 GB/s effective, PCIe only.
    pub fn gtx1080ti() -> Self {
        Self {
            name: "1080Ti",
            effective_bandwidth: Bandwidth::gbytes_per_sec(380.0),
            kernel_launch_ns: 10_000,
            pcie_bandwidth: Bandwidth::gbytes_per_sec(12.0),
            peer_bandwidth: None,
        }
    }

    /// A CPU executor for on-CPU compression baselines. Effective
    /// scan bandwidth ~20 GB/s, which reproduces the paper's
    /// measurement that on-CPU onebit runs ~35.6× slower than on-GPU
    /// (§2.5).
    pub fn cpu() -> Self {
        Self {
            name: "CPU",
            effective_bandwidth: Bandwidth::gbytes_per_sec(20.0),
            kernel_launch_ns: 1_000,
            pcie_bandwidth: Bandwidth::gbytes_per_sec(12.0),
            peer_bandwidth: None,
        }
    }

    /// Roofline kernel time: launch overhead plus `passes` full
    /// memory sweeps over `bytes`.
    pub fn kernel_ns(&self, passes: f64, bytes: u64) -> u64 {
        let sweep = (bytes as f64 * passes / self.effective_bandwidth.as_bytes_per_sec() * 1e9)
            .ceil() as u64;
        self.kernel_launch_ns + sweep
    }

    /// Time to merge (element-wise add) two `bytes`-sized gradients:
    /// two reads and one write, i.e. three memory sweeps.
    pub fn merge_ns(&self, bytes: u64) -> u64 {
        self.kernel_ns(3.0, bytes)
    }

    /// Copy time for `bytes` over the chosen path.
    pub fn copy_ns(&self, path: CopyPath, bytes: u64) -> u64 {
        let bw = match path {
            CopyPath::Pcie => self.pcie_bandwidth,
            CopyPath::Peer => self.peer_bandwidth.unwrap_or(self.pcie_bandwidth),
        };
        bw.transfer_ns(bytes)
    }
}

/// Time for a ring allreduce of `bytes` across `gpus` co-located GPUs
/// over the intra-node interconnect — the **local aggregation** step
/// HiPress performs before inter-node synchronization (§5).
///
/// Bandwidth-optimal ring: `2 (g-1)/g × bytes` crossing each link.
pub fn intra_node_allreduce_ns(spec: &DeviceSpec, gpus: usize, bytes: u64) -> u64 {
    assert!(gpus > 0, "need at least one GPU");
    if gpus == 1 {
        return 0;
    }
    let bw = spec.peer_bandwidth.unwrap_or(spec.pcie_bandwidth);
    let volume = 2.0 * (gpus as f64 - 1.0) / gpus as f64 * bytes as f64;
    let move_ns = (volume / bw.as_bytes_per_sec() * 1e9).ceil() as u64;
    // Each of the 2(g-1) steps has a (small) launch/sync overhead.
    move_ns + 2 * (gpus as u64 - 1) * (spec.kernel_launch_ns / 2)
}

/// A simulated GPU: one or more kernel streams plus a copy engine,
/// each FIFO.
///
/// CaSync schedules encode/decode/merge kernels onto streams; the
/// FIFO semantics reproduce the serialization of compression work
/// with (and against) DNN computation on the same device.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    spec: DeviceSpec,
    streams: Vec<FifoResource>,
    copy_engine: FifoResource,
}

impl GpuDevice {
    /// Creates a device with `streams` kernel streams.
    ///
    /// # Panics
    ///
    /// Panics if `streams == 0`.
    pub fn new(spec: DeviceSpec, streams: usize) -> Self {
        assert!(streams > 0, "a device needs at least one stream");
        Self {
            spec,
            streams: vec![FifoResource::new(); streams],
            copy_engine: FifoResource::new(),
        }
    }

    /// The device's spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Number of kernel streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Enqueues a kernel of `passes` sweeps over `bytes` on `stream`
    /// at or after `now`; returns its `(start, end)` window.
    pub fn launch(
        &mut self,
        now: SimTime,
        stream: StreamId,
        passes: f64,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        let dur = self.spec.kernel_ns(passes, bytes);
        self.streams[stream.0].acquire(now, dur)
    }

    /// Enqueues a pre-costed task (e.g., a batched compression launch
    /// whose duration was computed for the whole batch) on `stream`.
    pub fn launch_costed(
        &mut self,
        now: SimTime,
        stream: StreamId,
        duration_ns: u64,
    ) -> (SimTime, SimTime) {
        self.streams[stream.0].acquire(now, duration_ns)
    }

    /// Enqueues a copy on the copy engine.
    pub fn copy(&mut self, now: SimTime, path: CopyPath, bytes: u64) -> (SimTime, SimTime) {
        let dur = self.spec.copy_ns(path, bytes);
        self.copy_engine.acquire(now, dur)
    }

    /// When `stream` would start a new kernel issued at `now`.
    pub fn stream_free_at(&self, stream: StreamId, now: SimTime) -> SimTime {
        self.streams[stream.0].next_free(now)
    }

    /// The stream that would start a new kernel earliest at `now`.
    pub fn least_busy_stream(&self, now: SimTime) -> StreamId {
        let mut best = StreamId(0);
        let mut best_t = self.streams[0].next_free(now);
        for (i, s) in self.streams.iter().enumerate().skip(1) {
            let t = s.next_free(now);
            if t < best_t {
                best_t = t;
                best = StreamId(i);
            }
        }
        best
    }

    /// Total busy nanoseconds across all kernel streams.
    pub fn kernel_busy_ns(&self) -> u64 {
        self.streams.iter().map(FifoResource::busy_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_time_is_affine_in_bytes() {
        let spec = DeviceSpec::v100();
        let t1 = spec.kernel_ns(2.0, 1_000_000);
        let t2 = spec.kernel_ns(2.0, 2_000_000);
        let t3 = spec.kernel_ns(2.0, 3_000_000);
        // Equal increments in bytes give equal increments in time.
        assert!(((t2 - t1) as i64 - (t3 - t2) as i64).abs() <= 1);
        // Launch overhead shows at zero bytes.
        assert_eq!(spec.kernel_ns(2.0, 0), spec.kernel_launch_ns);
    }

    #[test]
    fn cpu_is_about_35x_slower_than_v100() {
        // The SS2.5 claim: on-CPU onebit runs ~35.6x slower than the
        // on-GPU implementation. With identical pass counts the ratio
        // reduces to the bandwidth ratio.
        let gpu = DeviceSpec::v100();
        let cpu = DeviceSpec::cpu();
        let bytes = 256 * 1024 * 1024;
        let ratio = cpu.kernel_ns(2.0, bytes) as f64 / gpu.kernel_ns(2.0, bytes) as f64;
        assert!((30.0..40.0).contains(&ratio), "CPU/GPU ratio {ratio}");
    }

    #[test]
    fn merge_is_three_sweeps() {
        let spec = DeviceSpec::v100();
        assert_eq!(spec.merge_ns(1 << 20), spec.kernel_ns(3.0, 1 << 20));
    }

    #[test]
    fn copy_paths() {
        let v100 = DeviceSpec::v100();
        // NVLink is faster than PCIe.
        assert!(v100.copy_ns(CopyPath::Peer, 1 << 26) < v100.copy_ns(CopyPath::Pcie, 1 << 26));
        // Without NVLink, peer copies fall back to PCIe.
        let ti = DeviceSpec::gtx1080ti();
        assert_eq!(
            ti.copy_ns(CopyPath::Peer, 1 << 26),
            ti.copy_ns(CopyPath::Pcie, 1 << 26)
        );
    }

    #[test]
    fn local_aggregation_scales_with_gpus() {
        let spec = DeviceSpec::v100();
        let m = 100 * 1024 * 1024;
        assert_eq!(intra_node_allreduce_ns(&spec, 1, m), 0);
        let t2 = intra_node_allreduce_ns(&spec, 2, m);
        let t8 = intra_node_allreduce_ns(&spec, 8, m);
        assert!(t2 > 0);
        // Ring volume grows as 2(g-1)/g -> saturates below 2x.
        assert!(t8 < 2 * t2);
        assert!(t8 > t2);
    }

    #[test]
    fn streams_serialize_independently() {
        let mut gpu = GpuDevice::new(DeviceSpec::v100(), 2);
        let (s0a, e0a) = gpu.launch(SimTime::ZERO, StreamId(0), 2.0, 1 << 26);
        let (s1a, _) = gpu.launch(SimTime::ZERO, StreamId(1), 2.0, 1 << 26);
        // Different streams start together.
        assert_eq!(s0a, s1a);
        // Same stream queues.
        let (s0b, _) = gpu.launch(SimTime::ZERO, StreamId(0), 2.0, 1 << 26);
        assert_eq!(s0b, e0a);
    }

    #[test]
    fn least_busy_stream_balances() {
        let mut gpu = GpuDevice::new(DeviceSpec::v100(), 2);
        assert_eq!(gpu.least_busy_stream(SimTime::ZERO), StreamId(0));
        gpu.launch(SimTime::ZERO, StreamId(0), 2.0, 1 << 26);
        assert_eq!(gpu.least_busy_stream(SimTime::ZERO), StreamId(1));
    }

    #[test]
    fn busy_accounting_sums_streams() {
        let mut gpu = GpuDevice::new(DeviceSpec::v100(), 2);
        gpu.launch(SimTime::ZERO, StreamId(0), 1.0, 0);
        gpu.launch(SimTime::ZERO, StreamId(1), 1.0, 0);
        assert_eq!(
            gpu.kernel_busy_ns(),
            2 * DeviceSpec::v100().kernel_launch_ns
        );
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        intra_node_allreduce_ns(&DeviceSpec::v100(), 0, 1);
    }
}

//! Cost-curve profiling for the selective compression planner.
//!
//! The paper's planner "launches the GPU kernels and peer-to-peer
//! communication tasks with respect to different gradient sizes to
//! fit the compression and network cost curves" (§3.3). This module
//! is that harness: it measures kernel times at a ladder of sizes on
//! a device model and fits an affine curve `T(m) = a + b·m`.

use crate::DeviceSpec;
use hipress_util::fit::AffineFit;

/// The default measurement ladder (bytes): 64 KiB … 64 MiB.
pub fn default_sizes() -> Vec<u64> {
    (0..=10).map(|i| (64 * 1024) << i).collect()
}

/// Measures `passes`-sweep kernels at each size on `spec` and fits an
/// affine cost curve in nanoseconds over bytes.
///
/// # Panics
///
/// Panics if fewer than two sizes are given.
pub fn profile_kernel(spec: &DeviceSpec, passes: f64, sizes: &[u64]) -> AffineFit {
    let samples: Vec<(f64, f64)> = sizes
        .iter()
        .map(|&m| (m as f64, spec.kernel_ns(passes, m) as f64))
        .collect();
    AffineFit::fit(&samples).expect("need at least two distinct sizes to fit a cost curve")
}

/// A profiled compression algorithm: its encode and decode cost
/// curves (over *input* bytes for encode and *original* bytes for
/// decode) plus its compression ratio.
#[derive(Debug, Clone, Copy)]
pub struct CompressionProfile {
    /// `T_enc(m)` in ns for an m-byte gradient.
    pub encode: AffineFit,
    /// `T_dec(m)` in ns for the compressed form of an m-byte gradient.
    pub decode: AffineFit,
    /// Compression rate `r` (compressed bytes / original bytes).
    pub ratio: f64,
}

impl CompressionProfile {
    /// Builds a profile from a device spec, the algorithm's pass
    /// counts, and its compression ratio.
    ///
    /// Decode sweeps the *compressed* buffer plus writes the dense
    /// output, so its per-original-byte cost uses
    /// `decode_passes × ratio + 1` sweeps (one full write pass of the
    /// dense output).
    pub fn measure(spec: &DeviceSpec, encode_passes: f64, decode_passes: f64, ratio: f64) -> Self {
        let sizes = default_sizes();
        let encode = profile_kernel(spec, encode_passes, &sizes);
        let decode = profile_kernel(spec, decode_passes * ratio + 1.0, &sizes);
        Self {
            encode,
            decode,
            ratio,
        }
    }

    /// `T_enc(m)` in nanoseconds.
    pub fn encode_ns(&self, bytes: u64) -> u64 {
        self.encode.eval(bytes as f64).max(0.0) as u64
    }

    /// `T_dec` for the compressed form of an `bytes`-byte original.
    pub fn decode_ns(&self, bytes: u64) -> u64 {
        self.decode.eval(bytes as f64).max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_roofline_exactly() {
        let spec = DeviceSpec::v100();
        let fit = profile_kernel(&spec, 2.0, &default_sizes());
        // The model is affine, so the fit must be essentially exact.
        for &m in &[123_456u64, 7_777_777, 400_000_000] {
            let predicted = fit.eval(m as f64);
            let actual = spec.kernel_ns(2.0, m) as f64;
            assert!(
                (predicted - actual).abs() / actual < 1e-3,
                "size {m}: {predicted} vs {actual}"
            );
        }
        assert!((fit.intercept - spec.kernel_launch_ns as f64).abs() < 10.0);
    }

    #[test]
    fn profile_encode_decode_asymmetry() {
        // onebit: 2 encode passes, 1 decode pass over 1/32-sized input.
        let p = CompressionProfile::measure(&DeviceSpec::v100(), 2.0, 1.0, 1.0 / 32.0);
        let m = 64 * 1024 * 1024;
        // Decode (1 sweep of compressed + 1 dense write) is cheaper
        // than encode (2 dense sweeps).
        assert!(p.decode_ns(m) < p.encode_ns(m));
        assert!(p.encode_ns(m) > 0);
    }

    #[test]
    fn larger_gradients_cost_more() {
        let p = CompressionProfile::measure(&DeviceSpec::gtx1080ti(), 3.0, 1.5, 0.002);
        assert!(p.encode_ns(1 << 28) > p.encode_ns(1 << 20));
        assert!(p.decode_ns(1 << 28) > p.decode_ns(1 << 20));
    }

    #[test]
    fn default_sizes_span_three_decades() {
        let sizes = default_sizes();
        assert!(sizes.len() >= 5);
        assert_eq!(sizes[0], 64 * 1024);
        assert_eq!(*sizes.last().unwrap(), 64 * 1024 * 1024);
    }
}

//! Concurrent snapshot-under-write stress: N writer threads hammer a
//! [`Registry`] while a reader snapshots and serializes in a loop.
//! Every snapshot must be *internally consistent* — this is the
//! contract the live `/metrics` scrape endpoint depends on, since it
//! renders snapshots taken mid-run with no barrier against recording.
//!
//! Checked invariants, per snapshot and across consecutive snapshots:
//!
//! * histogram `count == Σ bucket counts` (structural, because the
//!   count is derived from the buckets — but the *derivation* only
//!   holds up if bucket publication is ordered correctly);
//! * histogram totals are monotone: a later snapshot never shows fewer
//!   observations or a smaller sum than an earlier one;
//! * a counted observation's extremes are visible: `min ≤ max`, and
//!   every bucket with a count intersects `[min, max]`;
//! * counters are monotone;
//! * the snapshot serializes and re-parses losslessly while writers
//!   are still running.

use hipress_metrics::{MetricValue, MetricsSnapshot, Registry};
use hipress_trace::hist::bucket_bounds;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 4;
const OBS_PER_WRITER: u64 = 10_000;

#[test]
fn snapshots_stay_internally_consistent_under_write_load() {
    let reg = Registry::new();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let mut writers = Vec::new();
        for node in 0..WRITERS {
            let scope = reg.scope(&[("node", &node.to_string())]);
            writers.push(s.spawn(move || {
                let c = scope.counter("events", &[]);
                let shared = scope.registry().root().counter("messages", &[]);
                let h = scope.histogram("lat_ns", &[]);
                let merged = scope.registry().root().histogram("merged_ns", &[]);
                for i in 0..OBS_PER_WRITER {
                    // Values spread over many log buckets, bounded so
                    // the [min, max] envelope is known.
                    let v = i
                        .wrapping_mul(2862933555777941757)
                        .wrapping_add(node as u64)
                        % 1_000_000;
                    c.inc();
                    shared.inc();
                    h.record(v);
                    merged.record(v);
                }
            }));
        }

        let stop_r = Arc::clone(&stop);
        let reader = s.spawn(move || {
            let mut snaps = 0u64;
            let mut prev: Option<MetricsSnapshot> = None;
            loop {
                let done = stop_r.load(Ordering::Acquire);
                let snap = reg.snapshot();
                snaps += 1;

                // Serialization round-trips mid-run.
                let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parse own json");
                assert_eq!(back.len(), snap.len());

                for (key, value) in snap.iter() {
                    match value {
                        MetricValue::Counter(c) => {
                            if let Some(p) = prev.as_ref().and_then(|p| p.get(key)) {
                                if let MetricValue::Counter(pc) = p {
                                    assert!(c >= pc, "counter {key} went backwards: {pc} -> {c}");
                                }
                            }
                        }
                        MetricValue::Histogram(h) => {
                            let bucket_sum: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
                            assert_eq!(
                                h.count, bucket_sum,
                                "histogram {key}: count {} != bucket sum {}",
                                h.count, bucket_sum
                            );
                            if h.count > 0 {
                                assert!(h.min <= h.max, "{key}: min {} > max {}", h.min, h.max);
                                for &(b, _) in &h.buckets {
                                    let (lo, hi) = bucket_bounds(b);
                                    assert!(
                                        hi > h.min && lo <= h.max,
                                        "{key}: occupied bucket [{lo},{hi}) outside [{}, {}]",
                                        h.min,
                                        h.max
                                    );
                                }
                            }
                            if let Some(MetricValue::Histogram(ph)) =
                                prev.as_ref().and_then(|p| p.get(key))
                            {
                                assert!(
                                    h.count >= ph.count,
                                    "{key}: count went backwards: {} -> {}",
                                    ph.count,
                                    h.count
                                );
                                assert!(
                                    h.sum >= ph.sum,
                                    "{key}: sum went backwards: {} -> {}",
                                    ph.sum,
                                    h.sum
                                );
                            }
                        }
                        _ => {}
                    }
                }
                prev = Some(snap);
                if done {
                    break;
                }
            }
            (snaps, prev.expect("at least one snapshot"))
        });

        // Join the writers, then release the reader for one final
        // post-quiescence snapshot.
        for w in writers {
            w.join().expect("writer");
        }
        let total = (WRITERS as u64) * OBS_PER_WRITER;
        stop.store(true, Ordering::Release);
        let (snaps, last) = reader.join().expect("reader");
        assert!(snaps >= 2, "reader must have raced the writers");

        // Final snapshot is exact.
        assert_eq!(last.total_counter("events"), total);
        assert_eq!(last.total_counter("messages"), total);
        let (count, _) = last.hist_totals("lat_ns");
        assert_eq!(count, total);
        let (mcount, _) = last.hist_totals("merged_ns");
        assert_eq!(mcount, total);
    });
}

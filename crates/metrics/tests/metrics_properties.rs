//! Property tests for the metrics crate: histogram quantile error
//! bounds over seeded random distributions, and snapshot merge
//! associativity across every metric kind.

use hipress_metrics::{Key, LabelSet, MetricValue, MetricsDiff, MetricsSnapshot, Registry};
use hipress_trace::hist::bucket_of;
use hipress_util::{Rng64, SplitMix64};

/// Exact `q`-quantile by sorting: linear interpolation between order
/// statistics at fractional rank `q * (n - 1)`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    (sorted[lo] as f64 + frac * (sorted[hi] as f64 - sorted[lo] as f64)).round() as u64
}

fn assert_within_one_bucket(name: &str, q: f64, est: u64, exact: u64) {
    let (be, bx) = (bucket_of(est) as i64, bucket_of(exact) as i64);
    assert!(
        (be - bx).abs() <= 1,
        "{name} q={q}: estimate {est} (bucket {be}) vs exact {exact} (bucket {bx})"
    );
}

/// p50/p90/p99 of the log-bucketed histogram land within one bucket of
/// the exact quantile for uniform, heavy-tailed, and clustered seeded
/// distributions.
#[test]
fn quantiles_within_one_log_bucket_of_exact() {
    let distributions: Vec<(&str, Box<dyn Fn(&mut SplitMix64) -> u64>)> = vec![
        (
            "uniform",
            Box::new(|r: &mut SplitMix64| r.next_below(1_000_000)),
        ),
        (
            "exponential",
            Box::new(|r: &mut SplitMix64| (-(1.0 - r.next_f64()).ln() * 50_000.0) as u64),
        ),
        (
            "bimodal",
            Box::new(|r: &mut SplitMix64| {
                if r.next_f64() < 0.8 {
                    100 + r.next_below(50)
                } else {
                    3_000_000 + r.next_below(1_000_000)
                }
            }),
        ),
        (
            "log-spread",
            Box::new(|r: &mut SplitMix64| 1u64 << r.next_below(40)),
        ),
    ];
    for (name, sample) in distributions {
        for seed in [1u64, 42, 2024] {
            let mut rng = SplitMix64::new(seed);
            let reg = Registry::new();
            let h = reg.root().histogram("lat_ns", &[]);
            let mut values: Vec<u64> = (0..5000).map(|_| sample(&mut rng)).collect();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            let s = h.summary();
            for q in [0.5, 0.9, 0.99] {
                let est = s.quantile(q).unwrap();
                let exact = exact_quantile(&values, q);
                assert_within_one_bucket(name, q, est, exact);
            }
            // The extremes are exact, not bucketed.
            assert_eq!(s.quantile(0.0), Some(values[0]), "{name} min");
            assert_eq!(s.quantile(1.0), Some(*values.last().unwrap()), "{name} max");
        }
    }
}

/// Builds a snapshot exercising all four metric kinds, parameterized
/// so the three merge operands differ.
fn build_snapshot(salt: u64) -> MetricsSnapshot {
    let reg = Registry::new();
    let root = reg.root();
    let c = root.counter("messages", &[("node", "0")]);
    c.add(10 + salt);
    let g = root.gauge("throughput_bytes_per_sec", &[]);
    g.set(100.0 + salt as f64);
    let h = root.histogram("encode_ns", &[("node", "0")]);
    let mut rng = SplitMix64::new(salt);
    for _ in 0..200 {
        h.record(rng.next_below(1 << 20));
    }
    let ts = root.timeseries("iteration_ns", &[]);
    for i in 0..5 {
        ts.push((salt * 100 + i) as f64);
    }
    reg.snapshot().with_meta("salt", &salt.to_string())
}

#[test]
fn merge_is_associative_across_all_kinds() {
    let (a, b, c) = (build_snapshot(1), build_snapshot(2), build_snapshot(3));

    // (a + b) + c
    let mut left = a.clone();
    left.merge(&b).unwrap();
    left.merge(&c).unwrap();

    // a + (b + c)
    let mut bc = b.clone();
    bc.merge(&c).unwrap();
    let mut right = a.clone();
    right.merge(&bc).unwrap();

    assert_eq!(left, right);

    // And merging is observable: counters added across operands.
    assert_eq!(
        left.total_counter("messages"),
        (10 + 1) + (10 + 2) + (10 + 3)
    );
    let (count, _) = left.hist_totals("encode_ns");
    assert_eq!(count, 600);

    // The merged snapshot still round-trips through JSON.
    let back = MetricsSnapshot::from_json(&left.to_json()).unwrap();
    assert_eq!(back, left);
}

#[test]
fn merge_identity_is_the_empty_snapshot() {
    let a = build_snapshot(7);
    let mut left = MetricsSnapshot::new();
    left.merge(&a).unwrap();
    let mut right = a.clone();
    right.merge(&MetricsSnapshot::new()).unwrap();
    // meta from the empty side adds nothing; both equal `a`.
    assert_eq!(left, a);
    assert_eq!(right, a);
}

#[test]
fn diff_of_merged_halves_matches_whole() {
    // Two per-node snapshots merged equal one snapshot that recorded
    // both nodes — the shape the engine relies on.
    let reg_whole = Registry::new();
    let reg_parts: Vec<Registry> = vec![Registry::new(), Registry::new()];
    for node in 0..2usize {
        let label = node.to_string();
        for (reg, salt) in [(&reg_whole, 0u64), (&reg_parts[node], 0)] {
            let scope = reg.scope(&[("node", &label)]);
            let h = scope.histogram("decode_ns", &[]);
            let mut rng = SplitMix64::new(salt + node as u64);
            for _ in 0..100 {
                h.record(rng.next_below(10_000));
            }
        }
    }
    let mut merged = reg_parts[0].snapshot();
    merged.merge(&reg_parts[1].snapshot()).unwrap();
    let whole = reg_whole.snapshot();
    assert_eq!(merged, whole);
    let d = MetricsDiff::between(&whole, &merged);
    assert!(d.passes(0.0));
    assert!(d.only_baseline.is_empty() && d.only_current.is_empty());
}

#[test]
fn snapshot_insert_and_get_round_trip() {
    let mut s = MetricsSnapshot::new();
    let key = Key::new("wall_ns", LabelSet::new(&[("strategy", "casync-ring")]));
    s.insert(key.clone(), MetricValue::Gauge(5.0));
    assert_eq!(s.get(&key), Some(&MetricValue::Gauge(5.0)));
    assert_eq!(s.len(), 1);
    assert!(!s.is_empty());
}

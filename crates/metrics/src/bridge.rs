//! Lowering a recorded [`Trace`] into the metric catalogue.
//!
//! Both execution backends already lower into one trace model (PR 3);
//! this bridge closes the loop on the metrics side: any trace —
//! simulated nanoseconds from `hipress_core::Executor::run_traced` or
//! wall-clock nanoseconds from CaSync-RT — lands in the same metric
//! names ([`crate::names`]) the live engine records, with the same
//! `node` labels derived from the `node{i}` track convention. A
//! simulated and a measured snapshot of one plan therefore share keys,
//! and comparing them is a [`crate::MetricsDiff`].
//!
//! The mapping mirrors `RuntimeReport::from_trace` exactly: primitive
//! buckets from span categories, wire volume from `send` span
//! arguments, messages from `fabric` instants, batch launches from
//! `batch` instants, wall time and node count from the `run` span, and
//! queue occupancy from the `node{i}/Q_comp` / `Q_commu` counter
//! tracks.

use crate::names;
use crate::registry::Scope;
use hipress_trace::Trace;

/// The eight primitive span categories, paired with their metric
/// names (same order as `RuntimeReport`'s buckets).
const PRIM_CATEGORIES: [(&str, &str); 8] = [
    ("source", names::PRIM_NS[0]),
    ("encode", names::PRIM_NS[1]),
    ("decode", names::PRIM_NS[2]),
    ("merge", names::PRIM_NS[3]),
    ("send", names::PRIM_NS[4]),
    ("recv", names::PRIM_NS[5]),
    ("update", names::PRIM_NS[6]),
    ("barrier", names::PRIM_NS[7]),
];

/// The `node` label for a track named `node{i}` or `node{i}/...`,
/// if it follows the convention.
fn node_label(track_name: &str) -> Option<&str> {
    let rest = track_name.strip_prefix("node")?;
    let digits = rest.split('/').next()?;
    (!digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())).then_some(digits)
}

/// Records every metric the catalogue derives from `trace` into
/// `scope`. The scope supplies run-level labels (`algorithm`,
/// `strategy`, …); per-node quantities additionally carry the `node`
/// label taken from the track name.
pub fn record_trace(trace: &Trace, scope: &Scope) {
    let mut bytes_wire_total = 0u64;
    let mut bytes_raw_total = 0u64;
    for track in trace.tracks() {
        let node = node_label(&track.name);
        let labels: Vec<(&str, &str)> = node.map(|n| ("node", n)).into_iter().collect();
        // Queue occupancy comes from the counter tracks.
        if let Some(q) = track.name.split('/').nth(1) {
            let name = match q {
                "Q_comp" => Some(names::Q_COMP_DEPTH),
                "Q_commu" => Some(names::Q_COMMU_DEPTH),
                _ => None,
            };
            if let Some(name) = name {
                let h = scope.histogram(name, &labels);
                for &(_, v) in &track.samples {
                    h.record(v.max(0.0) as u64);
                }
            }
            continue;
        }
        for e in &track.events {
            if let Some(&(_, metric)) = PRIM_CATEGORIES.iter().find(|(c, _)| *c == e.category) {
                scope.histogram(metric, &labels).record(e.dur_ns);
                if e.category == "send" {
                    let wire = e.arg("bytes_wire").unwrap_or(0);
                    let raw = e.arg("bytes_raw").unwrap_or(0);
                    scope.counter(names::BYTES_WIRE, &labels).add(wire);
                    scope.counter(names::BYTES_RAW, &labels).add(raw);
                    bytes_wire_total += wire;
                    bytes_raw_total += raw;
                }
            } else {
                match e.category.as_str() {
                    "local_agg" => {
                        scope
                            .histogram(names::LOCAL_AGG_NS, &labels)
                            .record(e.dur_ns);
                    }
                    "fabric" => scope.counter(names::MESSAGES, &labels).inc(),
                    "batch" => scope.counter(names::COMP_BATCH_LAUNCHES, &labels).inc(),
                    _ => {}
                }
            }
        }
    }
    if let Some(run) = trace.events_of("run").next() {
        let wall_ns = run.dur_ns;
        scope.gauge(names::WALL_NS, &[]).set(wall_ns as f64);
        if let Some(nodes) = run.arg("nodes") {
            scope.gauge(names::NODES, &[]).set(nodes as f64);
        }
        scope
            .timeseries(names::ITERATION_NS, &[])
            .push(wall_ns as f64);
        if wall_ns > 0 {
            scope
                .gauge(names::THROUGHPUT, &[])
                .set(bytes_raw_total as f64 / (wall_ns as f64 / 1e9));
        }
    }
    scope
        .gauge(names::COMPRESSION_SAVINGS, &[])
        .set(if bytes_wire_total == 0 {
            1.0
        } else {
            bytes_raw_total as f64 / bytes_wire_total as f64
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::snapshot::MetricValue;

    fn sample_trace() -> Trace {
        let mut t = Trace::new("casync-rt");
        let engine = t.thread_track("engine");
        let n0 = t.thread_track("node0");
        let n1 = t.thread_track("node1");
        let q0 = t.counter_track("node0/Q_comp");
        t.push_span(engine, "run", "run", 0, 2_000_000_000, &[("nodes", 2)]);
        t.push_span(n0, "encode", "encode", 10, 100, &[]);
        t.push_span(n0, "local_agg", "local_agg", 20, 30, &[]);
        t.push_span(
            n0,
            "send",
            "send",
            200,
            50,
            &[("bytes_wire", 64), ("bytes_raw", 512)],
        );
        t.push_span(n1, "recv", "recv", 300, 5, &[]);
        t.push_instant(n1, "msg", "fabric", 250, &[]);
        t.push_instant(n0, "batch", "batch", 50, &[("size", 3)]);
        t.push_sample(q0, 0, 1.0);
        t.push_sample(q0, 10, 2.0);
        t
    }

    #[test]
    fn lowers_every_catalogue_entry() {
        let reg = Registry::new();
        record_trace(&sample_trace(), &reg.scope(&[("algorithm", "onebit")]));
        let snap = reg.snapshot();
        assert_eq!(snap.hist_totals("encode_ns"), (1, 100));
        assert_eq!(snap.hist_totals("recv_ns"), (1, 5));
        assert_eq!(snap.hist_totals("send_ns"), (1, 50));
        assert_eq!(snap.hist_totals("local_agg_ns"), (1, 30));
        assert_eq!(snap.total_counter("bytes_wire"), 64);
        assert_eq!(snap.total_counter("bytes_raw"), 512);
        assert_eq!(snap.total_counter("messages"), 1);
        assert_eq!(snap.total_counter("comp_batch_launches"), 1);
        assert_eq!(snap.hist_totals("q_comp_depth"), (2, 3));
        // Run-level gauges: wall 2s, 512 raw bytes -> 256 B/s.
        let wall = snap
            .iter()
            .find(|(k, _)| k.name == "wall_ns")
            .map(|(_, v)| v.scalar())
            .unwrap();
        assert_eq!(wall, 2e9);
        let tput = snap
            .iter()
            .find(|(k, _)| k.name == "throughput_bytes_per_sec")
            .map(|(_, v)| v.scalar())
            .unwrap();
        assert!((tput - 256.0).abs() < 1e-9);
        let savings = snap
            .iter()
            .find(|(k, _)| k.name == "compression_savings")
            .map(|(_, v)| v.scalar())
            .unwrap();
        assert!((savings - 8.0).abs() < 1e-9);
    }

    #[test]
    fn node_labels_follow_track_names() {
        let reg = Registry::new();
        record_trace(&sample_trace(), &reg.root());
        let snap = reg.snapshot();
        let encode_key = snap.keys().find(|k| k.name == "encode_ns").unwrap();
        assert_eq!(encode_key.labels.get("node"), Some("0"));
        let recv_key = snap.keys().find(|k| k.name == "recv_ns").unwrap();
        assert_eq!(recv_key.labels.get("node"), Some("1"));
        // The run-level gauges are unlabelled.
        let wall_key = snap.keys().find(|k| k.name == "wall_ns").unwrap();
        assert!(wall_key.labels.is_empty());
        // Series captured the run wall time.
        let iter = snap.keys().find(|k| k.name == "iteration_ns").unwrap();
        match snap.get(iter).unwrap() {
            MetricValue::Series(pts) => assert_eq!(pts[0].1, 2e9),
            other => panic!("expected series, got {other:?}"),
        }
    }

    #[test]
    fn node_label_parser() {
        assert_eq!(node_label("node0"), Some("0"));
        assert_eq!(node_label("node12/Q_comp"), Some("12"));
        assert_eq!(node_label("engine"), None);
        assert_eq!(node_label("nodex"), None);
        assert_eq!(node_label("node"), None);
    }
}

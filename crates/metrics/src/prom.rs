//! Prometheus text exposition (format 0.0.4) of a snapshot.
//!
//! This is a real scrape surface — `hipress run --listen` serves it at
//! `GET /metrics` — so it follows the text-format spec: one `# TYPE`
//! line per metric family, label values escaped (`\\`, `\"`, `\n`),
//! and histograms exposed as cumulative `_bucket{le="…"}` samples with
//! the mandatory `+Inf` bucket plus `_sum` and `_count`. Counters and
//! gauges render as single samples; time series render as a gauge
//! carrying their most recent value. Run metadata becomes leading
//! `# META` comment lines (comments are free-form under the spec).
//!
//! Bucket upper bounds come from the workspace-wide log-bucket
//! geometry (`hipress-trace`): bucket `b` holds the half-open range
//! `[lo, hi)`, so its inclusive Prometheus bound is `hi - 1` — exact
//! for the integer nanosecond observations the registry records. The
//! top bucket (values ≥ 2^63) is covered by `+Inf` alone.

use crate::registry::LabelSet;
use crate::snapshot::{HistSummary, MetricValue, MetricsSnapshot};
use hipress_trace::hist::bucket_bounds;
use std::fmt::Write as _;

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else
/// becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a label value per the text-format spec: backslash, double
/// quote, and line feed.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn labels_with(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Emit one histogram family member: cumulative `_bucket` samples
/// (exact inclusive bounds from the shared log-bucket geometry), the
/// `+Inf` bucket, `_sum`, and `_count`.
fn render_histogram(out: &mut String, name: &str, labels: &LabelSet, h: &HistSummary) {
    let mut buckets = h.buckets.clone();
    buckets.sort_unstable_by_key(|&(b, _)| b);
    let mut cum = 0u64;
    for (b, c) in buckets {
        cum += c;
        // Bucket 64 has no finite inclusive bound (it ends at
        // u64::MAX); the +Inf sample below covers it.
        if b >= 64 {
            continue;
        }
        let le = bucket_bounds(b).1 - 1;
        let _ = writeln!(
            out,
            "{name}_bucket{} {cum}",
            labels_with(labels, Some(("le", &le.to_string())))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        labels_with(labels, Some(("le", "+Inf"))),
        h.count
    );
    let _ = writeln!(out, "{name}_sum{} {}", labels_with(labels, None), h.sum);
    let _ = writeln!(out, "{name}_count{} {}", labels_with(labels, None), h.count);
}

/// Renders `snap` in Prometheus text exposition format. Run metadata
/// becomes leading `# META` comment lines.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    for (k, v) in &snap.meta {
        let _ = writeln!(out, "# META {k} {v}");
    }
    let mut last_family = String::new();
    for (key, value) in snap.iter() {
        let name = sanitize(&key.name);
        if name != last_family {
            let _ = writeln!(
                out,
                "# TYPE {name} {}",
                match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) | MetricValue::Series(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                }
            );
            last_family = name.clone();
        }
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{name}{} {c}", labels_with(&key.labels, None));
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "{name}{} {g}", labels_with(&key.labels, None));
            }
            MetricValue::Histogram(h) => render_histogram(&mut out, &name, &key.labels, h),
            MetricValue::Series(points) => {
                let last = points.last().map_or(0.0, |&(_, v)| v);
                let _ = writeln!(out, "{name}{} {last}", labels_with(&key.labels, None));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Key;
    use crate::snapshot::HistSummary;

    #[test]
    fn renders_all_kinds() {
        let mut snap = MetricsSnapshot::new().with_meta("tool", "hipress bench");
        snap.insert(
            Key::new("bytes_wire", LabelSet::new(&[("node", "0")])),
            MetricValue::Counter(64),
        );
        snap.insert(
            Key::new("throughput_bytes_per_sec", LabelSet::default()),
            MetricValue::Gauge(2.5),
        );
        snap.insert(
            Key::new("encode_ns", LabelSet::default()),
            MetricValue::Histogram(HistSummary {
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                buckets: vec![(4, 1), (5, 1)],
            }),
        );
        snap.insert(
            Key::new("iteration_ns", LabelSet::default()),
            MetricValue::Series(vec![(0, 5.0), (1, 7.0)]),
        );
        let text = render(&snap);
        assert!(text.contains("# META tool hipress bench"));
        assert!(text.contains("# TYPE bytes_wire counter"));
        assert!(text.contains("bytes_wire{node=\"0\"} 64"));
        assert!(text.contains("# TYPE throughput_bytes_per_sec gauge"));
        assert!(text.contains("throughput_bytes_per_sec 2.5"));
        // Histograms are real spec histograms now: cumulative buckets
        // with exact inclusive bounds ([8,16) -> le=15, [16,32) ->
        // le=31), the mandatory +Inf bucket, _sum, and _count.
        assert!(text.contains("# TYPE encode_ns histogram"));
        assert!(text.contains("encode_ns_bucket{le=\"15\"} 1"));
        assert!(text.contains("encode_ns_bucket{le=\"31\"} 2"));
        assert!(text.contains("encode_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("encode_ns_count 2"));
        assert!(text.contains("encode_ns_sum 30"));
        // Series expose their latest value.
        assert!(text.contains("iteration_ns 7"));
    }

    /// Byte-exact golden output: pins family ordering, `# TYPE` lines,
    /// label rendering, escaping, and the full histogram exposition in
    /// one place so any conformance drift is caught verbatim.
    #[test]
    fn golden_exposition_output() {
        let mut snap = MetricsSnapshot::new().with_meta("schema", "hipress-metrics/v1");
        snap.insert(
            Key::new(
                "alerts_total",
                LabelSet::new(&[("kind", "retransmit_storm")]),
            ),
            MetricValue::Counter(3),
        );
        snap.insert(
            Key::new("barrier_ns", LabelSet::new(&[("node", "0")])),
            MetricValue::Histogram(HistSummary {
                count: 4,
                sum: 19,
                min: 1,
                max: 9,
                buckets: vec![(1, 1), (2, 2), (4, 1)],
            }),
        );
        snap.insert(
            Key::new("pipeline_overlap_efficiency", LabelSet::default()),
            MetricValue::Gauge(0.75),
        );
        snap.insert(
            Key::new("weird", LabelSet::new(&[("path", "a\\b\"c\nd")])),
            MetricValue::Counter(1),
        );
        let text = render(&snap);
        let expected = "\
# META schema hipress-metrics/v1
# TYPE alerts_total counter
alerts_total{kind=\"retransmit_storm\"} 3
# TYPE barrier_ns histogram
barrier_ns_bucket{node=\"0\",le=\"1\"} 1
barrier_ns_bucket{node=\"0\",le=\"3\"} 3
barrier_ns_bucket{node=\"0\",le=\"15\"} 4
barrier_ns_bucket{node=\"0\",le=\"+Inf\"} 4
barrier_ns_sum{node=\"0\"} 19
barrier_ns_count{node=\"0\"} 4
# TYPE pipeline_overlap_efficiency gauge
pipeline_overlap_efficiency 0.75
# TYPE weird counter
weird{path=\"a\\\\b\\\"c\\nd\"} 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut snap = MetricsSnapshot::new();
        snap.insert(
            Key::new(
                "m",
                LabelSet::new(&[("v", "back\\slash \"quote\" new\nline")]),
            ),
            MetricValue::Counter(7),
        );
        let text = render(&snap);
        assert!(
            text.contains("m{v=\"back\\\\slash \\\"quote\\\" new\\nline\"} 7"),
            "{text}"
        );
        // The escaped body stays on one physical line.
        assert_eq!(text.lines().count(), 2, "{text}");
    }

    #[test]
    fn histogram_top_bucket_is_covered_by_inf_alone() {
        let mut snap = MetricsSnapshot::new();
        snap.insert(
            Key::new("huge_ns", LabelSet::default()),
            MetricValue::Histogram(HistSummary {
                count: 2,
                sum: u64::MAX,
                min: 1,
                max: u64::MAX,
                buckets: vec![(1, 1), (64, 1)],
            }),
        );
        let text = render(&snap);
        // No finite bound can hold values in [2^63, u64::MAX]; only
        // +Inf reports the full count.
        assert!(text.contains("huge_ns_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("huge_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(!text.contains("le=\"18446744073709551614\""), "{text}");
    }

    #[test]
    fn type_line_emitted_once_per_family() {
        let mut snap = MetricsSnapshot::new();
        for node in 0..3 {
            snap.insert(
                Key::new("messages", LabelSet::new(&[("node", &node.to_string())])),
                MetricValue::Counter(node),
            );
        }
        let text = render(&snap);
        assert_eq!(text.matches("# TYPE messages counter").count(), 1);
        assert_eq!(text.matches("messages{node=").count(), 3);
    }

    /// The fabric counters a multi-process run ships home keep their
    /// per-rank `node` labels through exposition: one `# TYPE` line
    /// per family, one sample line per rank.
    #[test]
    fn fabric_counters_expose_per_rank_series() {
        let reg = crate::Registry::new();
        for node in 0..2u64 {
            let scope = reg.scope(&[("node", &node.to_string())]);
            for (name, v) in [
                (crate::names::FABRIC_FRAMES, 10 + node),
                (crate::names::FABRIC_BYTES_FRAMED, 1000 + node),
                (crate::names::FABRIC_BYTES_PAYLOAD, 900 + node),
                (crate::names::FABRIC_RETRANSMITS, node),
            ] {
                scope.counter(name, &[]).add(v);
            }
        }
        let text = render(&reg.snapshot());
        for family in [
            "fabric_frames",
            "fabric_bytes_framed",
            "fabric_bytes_payload",
            "fabric_retransmits",
        ] {
            assert_eq!(
                text.matches(&format!("# TYPE {family} counter")).count(),
                1,
                "{family} family line"
            );
        }
        assert!(text.contains("fabric_frames{node=\"0\"} 10"));
        assert!(text.contains("fabric_frames{node=\"1\"} 11"));
        assert!(text.contains("fabric_bytes_payload{node=\"1\"} 901"));
        assert!(text.contains("fabric_retransmits{node=\"0\"} 0"));
    }

    #[test]
    fn bad_characters_sanitized() {
        let mut snap = MetricsSnapshot::new();
        snap.insert(
            Key::new("enc.ns-total", LabelSet::new(&[("strategy", "casync-ps")])),
            MetricValue::Counter(1),
        );
        let text = render(&snap);
        assert!(text.contains("enc_ns_total{strategy=\"casync-ps\"} 1"));
    }

    /// Live registry -> snapshot -> exposition keeps the histogram
    /// invariant `+Inf == _count == sum(bucket deltas)`.
    #[test]
    fn live_histogram_exposes_consistent_cumulative_counts() {
        let reg = crate::Registry::new();
        let h = reg.root().histogram("encode_ns", &[]);
        for v in [3u64, 0, 700, 700, 12] {
            h.record(v);
        }
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE encode_ns histogram"), "{text}");
        assert!(text.contains("encode_ns_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("encode_ns_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("encode_ns_count 5"), "{text}");
        assert!(text.contains("encode_ns_sum 1415"), "{text}");
    }
}

//! Prometheus-style text exposition of a snapshot.
//!
//! For eyeballing and for scraping by standard tooling: counters and
//! gauges render as single samples, histograms as the conventional
//! summary triplet (`_count`, `_sum`, `{quantile="…"}`), and time
//! series as their most recent value. The output follows the
//! Prometheus text format conventions (one `# TYPE` line per metric
//! family, label sets in `{k="v"}` form) without claiming full
//! exposition-format compliance — it is a debugging surface, not a
//! scrape endpoint.

use crate::registry::LabelSet;
use crate::snapshot::{MetricValue, MetricsSnapshot};
use std::fmt::Write as _;

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else
/// becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn labels_with(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), v.replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders `snap` in Prometheus text form. Run metadata becomes
/// leading `# META` comment lines.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    for (k, v) in &snap.meta {
        let _ = writeln!(out, "# META {k} {v}");
    }
    let mut last_family = String::new();
    for (key, value) in snap.iter() {
        let name = sanitize(&key.name);
        if name != last_family {
            let _ = writeln!(
                out,
                "# TYPE {name} {}",
                match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) | MetricValue::Series(_) => "gauge",
                    MetricValue::Histogram(_) => "summary",
                }
            );
            last_family = name.clone();
        }
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{name}{} {c}", labels_with(&key.labels, None));
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "{name}{} {g}", labels_with(&key.labels, None));
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                    let _ = writeln!(
                        out,
                        "{name}{} {v}",
                        labels_with(&key.labels, Some(("quantile", q)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_sum{} {}",
                    labels_with(&key.labels, None),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{name}_count{} {}",
                    labels_with(&key.labels, None),
                    h.count
                );
            }
            MetricValue::Series(points) => {
                let last = points.last().map_or(0.0, |&(_, v)| v);
                let _ = writeln!(out, "{name}{} {last}", labels_with(&key.labels, None));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Key;
    use crate::snapshot::HistSummary;

    #[test]
    fn renders_all_kinds() {
        let mut snap = MetricsSnapshot::new().with_meta("tool", "hipress bench");
        snap.insert(
            Key::new("bytes_wire", LabelSet::new(&[("node", "0")])),
            MetricValue::Counter(64),
        );
        snap.insert(
            Key::new("throughput_bytes_per_sec", LabelSet::default()),
            MetricValue::Gauge(2.5),
        );
        snap.insert(
            Key::new("encode_ns", LabelSet::default()),
            MetricValue::Histogram(HistSummary {
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                buckets: vec![(4, 1), (5, 1)],
            }),
        );
        snap.insert(
            Key::new("iteration_ns", LabelSet::default()),
            MetricValue::Series(vec![(0, 5.0), (1, 7.0)]),
        );
        let text = render(&snap);
        assert!(text.contains("# META tool hipress bench"));
        assert!(text.contains("# TYPE bytes_wire counter"));
        assert!(text.contains("bytes_wire{node=\"0\"} 64"));
        assert!(text.contains("# TYPE throughput_bytes_per_sec gauge"));
        assert!(text.contains("throughput_bytes_per_sec 2.5"));
        assert!(text.contains("# TYPE encode_ns summary"));
        assert!(text.contains("encode_ns{quantile=\"0.5\"}"));
        assert!(text.contains("encode_ns_count 2"));
        assert!(text.contains("encode_ns_sum 30"));
        // Series expose their latest value.
        assert!(text.contains("iteration_ns 7"));
    }

    #[test]
    fn type_line_emitted_once_per_family() {
        let mut snap = MetricsSnapshot::new();
        for node in 0..3 {
            snap.insert(
                Key::new("messages", LabelSet::new(&[("node", &node.to_string())])),
                MetricValue::Counter(node),
            );
        }
        let text = render(&snap);
        assert_eq!(text.matches("# TYPE messages counter").count(), 1);
        assert_eq!(text.matches("messages{node=").count(), 3);
    }

    /// The fabric counters a multi-process run ships home keep their
    /// per-rank `node` labels through exposition: one `# TYPE` line
    /// per family, one sample line per rank.
    #[test]
    fn fabric_counters_expose_per_rank_series() {
        let reg = crate::Registry::new();
        for node in 0..2u64 {
            let scope = reg.scope(&[("node", &node.to_string())]);
            for (name, v) in [
                (crate::names::FABRIC_FRAMES, 10 + node),
                (crate::names::FABRIC_BYTES_FRAMED, 1000 + node),
                (crate::names::FABRIC_BYTES_PAYLOAD, 900 + node),
                (crate::names::FABRIC_RETRANSMITS, node),
            ] {
                scope.counter(name, &[]).add(v);
            }
        }
        let text = render(&reg.snapshot());
        for family in [
            "fabric_frames",
            "fabric_bytes_framed",
            "fabric_bytes_payload",
            "fabric_retransmits",
        ] {
            assert_eq!(
                text.matches(&format!("# TYPE {family} counter")).count(),
                1,
                "{family} family line"
            );
        }
        assert!(text.contains("fabric_frames{node=\"0\"} 10"));
        assert!(text.contains("fabric_frames{node=\"1\"} 11"));
        assert!(text.contains("fabric_bytes_payload{node=\"1\"} 901"));
        assert!(text.contains("fabric_retransmits{node=\"0\"} 0"));
    }

    #[test]
    fn bad_characters_sanitized() {
        let mut snap = MetricsSnapshot::new();
        snap.insert(
            Key::new("enc.ns-total", LabelSet::new(&[("strategy", "casync-ps")])),
            MetricValue::Counter(1),
        );
        let text = render(&snap);
        assert!(text.contains("enc_ns_total{strategy=\"casync-ps\"} 1"));
    }
}

//! Snapshot comparison and the perf-regression gate.
//!
//! A [`MetricsDiff`] lines two snapshots up key by key and reduces
//! each pair to one scalar delta. Whether a delta is *bad* depends on
//! the metric: latencies regress upward, throughputs regress
//! downward, and plenty of metrics (node counts, message totals) are
//! purely informational. Rather than carrying per-metric
//! configuration, the gate derives [`Polarity`] from the metric name —
//! the workspace-wide naming convention (`*_ns` durations and
//! `*retransmit*` counters regress upward,
//! `*throughput*`/`*_per_sec`/`*efficiency*`/`*savings*` rates
//! regress downward) makes the name authoritative.
//!
//! Sign conventions, fixed by test:
//! * `delta = current - baseline` (positive means the number went up),
//! * `pct = 100 * delta / baseline` (positive means the number went up),
//! * a row **regresses** at tolerance `t` when the number moved in its
//!   bad direction by strictly more than `t` percent: `pct > t` for
//!   lower-is-better metrics, `pct < -t` for higher-is-better ones.

use crate::registry::Key;
use crate::snapshot::MetricsSnapshot;
use hipress_util::units::fmt_duration_ns;
use std::fmt;

/// Which direction of change is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Latencies, wall times: up is worse (`*_ns`).
    LowerIsBetter,
    /// Throughputs, efficiencies, compression savings: down is worse.
    HigherIsBetter,
    /// Counts and sizes with no inherent good direction; never gated.
    Informational,
}

impl Polarity {
    /// Derives the polarity from a metric name per the workspace
    /// naming convention.
    pub fn of_name(name: &str) -> Polarity {
        if name.ends_with("_ns") || name.contains("retransmit") {
            return Polarity::LowerIsBetter;
        }
        if name.ends_with("_per_sec")
            || name.contains("throughput")
            || name.contains("efficiency")
            || name.contains("savings")
        {
            return Polarity::HigherIsBetter;
        }
        Polarity::Informational
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// The metric identity shared by both snapshots.
    pub key: Key,
    /// The baseline scalar ([`crate::MetricValue::scalar`]).
    pub baseline: f64,
    /// The current scalar.
    pub current: f64,
    /// `current - baseline`.
    pub delta: f64,
    /// `100 * delta / baseline` (0 when the baseline is 0).
    pub pct: f64,
    /// Good direction, derived from the metric name.
    pub polarity: Polarity,
}

impl DiffRow {
    /// True when this row moved in its bad direction by strictly more
    /// than `tolerance_pct` percent. Informational rows never regress.
    pub fn regressed(&self, tolerance_pct: f64) -> bool {
        match self.polarity {
            Polarity::LowerIsBetter => self.pct > tolerance_pct,
            Polarity::HigherIsBetter => self.pct < -tolerance_pct,
            Polarity::Informational => false,
        }
    }

    /// True when this row moved in its *good* direction by strictly
    /// more than `tolerance_pct` percent.
    pub fn improved(&self, tolerance_pct: f64) -> bool {
        match self.polarity {
            Polarity::LowerIsBetter => self.pct < -tolerance_pct,
            Polarity::HigherIsBetter => self.pct > tolerance_pct,
            Polarity::Informational => false,
        }
    }
}

/// The comparison of two snapshots.
#[derive(Debug, Clone, Default)]
pub struct MetricsDiff {
    /// Metrics present in both snapshots, in key order.
    pub rows: Vec<DiffRow>,
    /// Keys only the baseline has.
    pub only_baseline: Vec<Key>,
    /// Keys only the current snapshot has.
    pub only_current: Vec<Key>,
}

impl MetricsDiff {
    /// Compares `current` against `baseline`, key by key.
    pub fn between(baseline: &MetricsSnapshot, current: &MetricsSnapshot) -> MetricsDiff {
        let mut diff = MetricsDiff::default();
        for (key, b) in baseline.iter() {
            match current.get(key) {
                None => diff.only_baseline.push(key.clone()),
                Some(c) => {
                    let (b, c) = (b.scalar(), c.scalar());
                    let delta = c - b;
                    diff.rows.push(DiffRow {
                        key: key.clone(),
                        baseline: b,
                        current: c,
                        delta,
                        pct: if b == 0.0 { 0.0 } else { 100.0 * delta / b },
                        polarity: Polarity::of_name(&key.name),
                    });
                }
            }
        }
        for (key, _) in current.iter() {
            if baseline.get(key).is_none() {
                diff.only_current.push(key.clone());
            }
        }
        diff
    }

    /// The rows that regressed at `tolerance_pct`, worst first.
    pub fn regressions(&self, tolerance_pct: f64) -> Vec<&DiffRow> {
        let mut out: Vec<&DiffRow> = self
            .rows
            .iter()
            .filter(|r| r.regressed(tolerance_pct))
            .collect();
        out.sort_by(|a, b| {
            b.pct
                .abs()
                .partial_cmp(&a.pct.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// True when no gated row regressed at `tolerance_pct`.
    pub fn passes(&self, tolerance_pct: f64) -> bool {
        self.rows.iter().all(|r| !r.regressed(tolerance_pct))
    }
}

fn fmt_scalar(key: &Key, v: f64) -> String {
    if key.name.ends_with("_ns") && v >= 0.0 {
        fmt_duration_ns(v.round() as u64)
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.3}")
    }
}

impl fmt::Display for DiffRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.polarity {
            Polarity::LowerIsBetter => "↓good",
            Polarity::HigherIsBetter => "↑good",
            Polarity::Informational => "info",
        };
        write!(
            f,
            "{:<48} {:>12} -> {:>12}  {:>+8.2}%  [{dir}]",
            self.key.to_string(),
            fmt_scalar(&self.key, self.baseline),
            fmt_scalar(&self.key, self.current),
            self.pct,
        )
    }
}

impl fmt::Display for MetricsDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rows {
            writeln!(f, "{r}")?;
        }
        for k in &self.only_baseline {
            writeln!(f, "{k:<48} only in baseline")?;
        }
        for k in &self.only_current {
            writeln!(f, "{k:<48} only in current")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::LabelSet;
    use crate::snapshot::MetricValue;

    fn snap(entries: &[(&str, f64)]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        for &(name, v) in entries {
            s.insert(Key::new(name, LabelSet::default()), MetricValue::Gauge(v));
        }
        s
    }

    #[test]
    fn polarity_from_names() {
        assert_eq!(Polarity::of_name("encode_ns"), Polarity::LowerIsBetter);
        assert_eq!(Polarity::of_name("wall_ns"), Polarity::LowerIsBetter);
        assert_eq!(
            Polarity::of_name("throughput_bytes_per_sec"),
            Polarity::HigherIsBetter
        );
        assert_eq!(
            Polarity::of_name("scaling_efficiency"),
            Polarity::HigherIsBetter
        );
        assert_eq!(
            Polarity::of_name("compression_savings"),
            Polarity::HigherIsBetter
        );
        assert_eq!(Polarity::of_name("bytes_wire"), Polarity::Informational);
        assert_eq!(Polarity::of_name("messages"), Polarity::Informational);
        // Retransmissions are resent work: growth is a regression even
        // though the metric is a counter, not a duration.
        assert_eq!(
            Polarity::of_name("fabric_retransmits"),
            Polarity::LowerIsBetter
        );
        assert_eq!(Polarity::of_name("fabric_frames"), Polarity::Informational);
        assert_eq!(
            Polarity::of_name("fabric_bytes_framed"),
            Polarity::Informational
        );
        assert_eq!(
            Polarity::of_name("pipeline_overlap_efficiency"),
            Polarity::HigherIsBetter
        );
        // comm_ratio is lower-is-better semantically but carries no
        // suffix the gate trusts; it stays informational by design.
        assert_eq!(Polarity::of_name("comm_ratio"), Polarity::Informational);
    }

    #[test]
    fn sign_conventions() {
        // Baseline 100, current 110: delta +10, pct +10.
        let d = MetricsDiff::between(&snap(&[("wall_ns", 100.0)]), &snap(&[("wall_ns", 110.0)]));
        let r = &d.rows[0];
        assert_eq!(r.delta, 10.0);
        assert_eq!(r.pct, 10.0);
        // Latency up = regression once past tolerance.
        assert!(r.regressed(5.0));
        assert!(!r.regressed(10.0), "tolerance boundary is exclusive");
        assert!(!r.improved(5.0));

        // Throughput down = regression; throughput up = improvement.
        let down = MetricsDiff::between(
            &snap(&[("throughput_bytes_per_sec", 200.0)]),
            &snap(&[("throughput_bytes_per_sec", 150.0)]),
        );
        assert_eq!(down.rows[0].pct, -25.0);
        assert!(down.rows[0].regressed(10.0));
        let up = MetricsDiff::between(
            &snap(&[("throughput_bytes_per_sec", 200.0)]),
            &snap(&[("throughput_bytes_per_sec", 300.0)]),
        );
        assert!(up.rows[0].improved(10.0));
        assert!(!up.rows[0].regressed(0.0));
    }

    #[test]
    fn identical_snapshots_pass_at_zero_tolerance() {
        let s = snap(&[("wall_ns", 123.0), ("throughput_bytes_per_sec", 9.0)]);
        let d = MetricsDiff::between(&s, &s.clone());
        assert!(d.passes(0.0));
        assert!(d.regressions(0.0).is_empty());
    }

    #[test]
    fn informational_metrics_never_gate() {
        let d = MetricsDiff::between(&snap(&[("messages", 10.0)]), &snap(&[("messages", 1000.0)]));
        assert!(d.passes(0.0));
    }

    #[test]
    fn disjoint_keys_are_reported_not_gated() {
        let d = MetricsDiff::between(&snap(&[("a_ns", 1.0)]), &snap(&[("b_ns", 1.0)]));
        assert!(d.rows.is_empty());
        assert_eq!(d.only_baseline.len(), 1);
        assert_eq!(d.only_current.len(), 1);
        assert!(d.passes(0.0));
    }

    #[test]
    fn regressions_sorted_worst_first() {
        let d = MetricsDiff::between(
            &snap(&[("a_ns", 100.0), ("b_ns", 100.0)]),
            &snap(&[("a_ns", 120.0), ("b_ns", 200.0)]),
        );
        let regs = d.regressions(0.0);
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].key.name, "b_ns");
        assert_eq!(regs[1].key.name, "a_ns");
    }

    #[test]
    fn zero_baseline_is_not_a_regression() {
        let d = MetricsDiff::between(&snap(&[("x_ns", 0.0)]), &snap(&[("x_ns", 50.0)]));
        assert_eq!(d.rows[0].pct, 0.0);
        assert!(d.passes(0.0));
    }

    #[test]
    fn display_renders_rows() {
        let d = MetricsDiff::between(&snap(&[("wall_ns", 100.0)]), &snap(&[("wall_ns", 150.0)]));
        let s = d.to_string();
        assert!(s.contains("wall_ns"));
        assert!(s.contains("+50.00%"));
    }
}

//! Immutable metric snapshots: the `BENCH_*.json` format.
//!
//! A [`MetricsSnapshot`] is what a [`crate::Registry`] looks like at
//! one instant: a sorted map from [`Key`] to [`MetricValue`], plus
//! free-form run metadata (tool, git revision, configuration). It is
//! the unit of persistence (`to_json` / `from_json`, schema-versioned
//! as [`SCHEMA`]), of aggregation ([`MetricsSnapshot::merge`] — bucket
//! counts add, counters add, so merging is associative), and of
//! comparison ([`crate::MetricsDiff`]).
//!
//! The serializer rides on `hipress-trace`'s RFC-8259 JSON machinery;
//! the workspace builds fully offline, so the format carries its own
//! reader and the CI smoke step re-parses everything it emits.
//! Histogram buckets are stored by *bucket index* (the geometry of
//! `hipress_trace::hist`), never by bound, so no value in a snapshot
//! exceeds 2^53 and every number survives the `f64` JSON dialect.

use crate::registry::{Key, LabelSet};
use hipress_trace::hist::bucket_bounds;
use hipress_trace::json::{self, Json};
use hipress_util::{Error, Result};
use std::collections::BTreeMap;

/// The snapshot schema identifier; bump on breaking format changes.
pub const SCHEMA: &str = "hipress-metrics/v1";

/// The summary of one histogram: exact count/sum/min/max plus the
/// non-empty log buckets as `(bucket_index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Exact smallest observation (0 if empty).
    pub min: u64,
    /// Exact largest observation (0 if empty).
    pub max: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistSummary {
    /// Exact mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile, or `None` if empty — the same interpolation
    /// as [`hipress_trace::LatencyHistogram::quantile`]: the
    /// fractional rank is located in the cumulative bucket counts,
    /// interpolated linearly within the containing bucket, and
    /// clamped to the exact observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let target = q * (self.count - 1) as f64 + 1.0;
        let mut cum = 0u64;
        for &(b, c) in &self.buckets {
            if (cum + c) as f64 >= target {
                let (lo, hi) = bucket_bounds(b);
                let frac = (target - cum as f64) / c as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return Some((v.round() as u64).clamp(self.min, self.max));
            }
            cum += c;
        }
        Some(self.max)
    }

    /// Convenience: p50 (0 if empty).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5).unwrap_or(0)
    }

    /// Convenience: p90 (0 if empty).
    pub fn p90(&self) -> u64 {
        self.quantile(0.9).unwrap_or(0)
    }

    /// Convenience: p99 (0 if empty).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99).unwrap_or(0)
    }

    /// Merges `other` into this summary (bucket counts add; extremes
    /// and totals combine), so merge order never matters.
    pub fn merge(&mut self, other: &HistSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for &(b, c) in &other.buckets {
            *merged.entry(b).or_insert(0) += c;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// One metric's snapshot value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic count.
    Counter(u64),
    /// A last-value instrument.
    Gauge(f64),
    /// A log-bucketed distribution.
    Histogram(HistSummary),
    /// Retained `(sequence, value)` samples.
    Series(Vec<(u64, f64)>),
}

impl MetricValue {
    /// The kind tag used in the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
            MetricValue::Series(_) => "series",
        }
    }

    /// A single comparable number for diffing: the count for
    /// counters, the value for gauges, the mean for histograms, the
    /// mean of retained samples for series.
    pub fn scalar(&self) -> f64 {
        match self {
            MetricValue::Counter(c) => *c as f64,
            MetricValue::Gauge(g) => *g,
            MetricValue::Histogram(h) => h.mean(),
            MetricValue::Series(s) => {
                if s.is_empty() {
                    0.0
                } else {
                    s.iter().map(|&(_, v)| v).sum::<f64>() / s.len() as f64
                }
            }
        }
    }
}

/// An immutable snapshot: run metadata plus a sorted metric map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Free-form run metadata (`tool`, `git_rev`, configuration …).
    pub meta: BTreeMap<String, String>,
    metrics: BTreeMap<Key, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets one metadata entry (builder style).
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: &str) -> Self {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    /// Inserts or replaces one metric.
    pub fn insert(&mut self, key: Key, value: MetricValue) {
        self.metrics.insert(key, value);
    }

    /// The value of `key`.
    pub fn get(&self, key: &Key) -> Option<&MetricValue> {
        self.metrics.get(key)
    }

    /// All keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.metrics.keys()
    }

    /// All `(key, value)` pairs, sorted by key.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &MetricValue)> {
        self.metrics.iter()
    }

    /// Number of metric series.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metrics are recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Sum of every counter named `name` across label sets.
    pub fn total_counter(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.name == name)
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Total `(count, sum)` of every histogram named `name` across
    /// label sets.
    pub fn hist_totals(&self, name: &str) -> (u64, u64) {
        self.metrics
            .iter()
            .filter(|(k, _)| k.name == name)
            .filter_map(|(_, v)| match v {
                MetricValue::Histogram(h) => Some((h.count, h.sum)),
                _ => None,
            })
            .fold((0, 0), |(c, s), (hc, hs)| (c + hc, s + hs))
    }

    /// Merges `other` into this snapshot. Counters add, histograms
    /// add bucket-wise, series concatenate, gauges take `other`
    /// (latest wins); metadata takes `other` on key conflicts. All
    /// rules are associative, so folding any number of per-node or
    /// per-run snapshots gives one order-independent aggregate.
    ///
    /// # Errors
    ///
    /// Returns an error when the same key carries different metric
    /// kinds in the two snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) -> Result<()> {
        for (k, v) in &other.meta {
            self.meta.insert(k.clone(), v.clone());
        }
        for (key, theirs) in &other.metrics {
            match self.metrics.get_mut(key) {
                None => {
                    self.metrics.insert(key.clone(), theirs.clone());
                }
                Some(ours) => match (ours, theirs) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    (MetricValue::Series(a), MetricValue::Series(b)) => {
                        a.extend(b.iter().copied());
                    }
                    (ours, theirs) => {
                        return Err(Error::config(format!(
                            "merge: {key} is a {} here but a {} there",
                            ours.kind(),
                            theirs.kind()
                        )));
                    }
                },
            }
        }
        Ok(())
    }

    /// Serializes to the schema-versioned JSON snapshot format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": ");
        json::write_str(&mut out, SCHEMA);
        out.push_str(",\n  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::write_str(&mut out, k);
            out.push_str(": ");
            json::write_str(&mut out, v);
        }
        if !self.meta.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"metrics\": [");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json::write_str(&mut out, &key.name);
            out.push_str(", \"labels\": {");
            for (j, (lk, lv)) in key.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::write_str(&mut out, lk);
                out.push_str(": ");
                json::write_str(&mut out, lv);
            }
            out.push_str("}, \"kind\": ");
            json::write_str(&mut out, value.kind());
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(", \"value\": ");
                    json::write_num(&mut out, *c as f64);
                }
                MetricValue::Gauge(g) => {
                    out.push_str(", \"value\": ");
                    json::write_num(&mut out, *g);
                }
                MetricValue::Histogram(h) => {
                    for (field, v) in [
                        ("count", h.count),
                        ("sum", h.sum),
                        ("min", h.min),
                        ("max", h.max),
                        // Derived quantiles, stored for human and
                        // external-tool consumption; the parser
                        // recomputes them from the buckets.
                        ("p50", h.p50()),
                        ("p90", h.p90()),
                        ("p99", h.p99()),
                    ] {
                        out.push_str(", \"");
                        out.push_str(field);
                        out.push_str("\": ");
                        json::write_num(&mut out, v as f64);
                    }
                    out.push_str(", \"buckets\": [");
                    for (j, &(b, c)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push('[');
                        json::write_num(&mut out, b as f64);
                        out.push_str(", ");
                        json::write_num(&mut out, c as f64);
                        out.push(']');
                    }
                    out.push(']');
                }
                MetricValue::Series(points) => {
                    out.push_str(", \"points\": [");
                    for (j, &(seq, v)) in points.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push('[');
                        json::write_num(&mut out, seq as f64);
                        out.push_str(", ");
                        json::write_num(&mut out, v);
                        out.push(']');
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a snapshot previously produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON, an unknown schema version,
    /// or structurally invalid metric entries.
    pub fn from_json(src: &str) -> Result<Self> {
        let doc = json::parse(src)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::config("snapshot: missing \"schema\""))?;
        if schema != SCHEMA {
            return Err(Error::config(format!(
                "snapshot: schema {schema:?}, this reader understands {SCHEMA:?}"
            )));
        }
        let mut snap = MetricsSnapshot::new();
        if let Some(Json::Obj(meta)) = doc.get("meta") {
            for (k, v) in meta {
                if let Json::Str(s) = v {
                    snap.meta.insert(k.clone(), s.clone());
                }
            }
        }
        let entries = doc
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or_else(|| Error::config("snapshot: missing \"metrics\" array"))?;
        for e in entries {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| Error::config("snapshot: metric without a name"))?;
            let mut labels = LabelSet::default();
            if let Some(Json::Obj(ls)) = e.get("labels") {
                for (k, v) in ls {
                    if let Json::Str(s) = v {
                        labels.insert(k, s);
                    }
                }
            }
            let kind = e
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| Error::config(format!("snapshot: {name}: missing kind")))?;
            let num = |field: &str| -> Result<f64> {
                e.get(field).and_then(Json::as_f64).ok_or_else(|| {
                    Error::config(format!("snapshot: {name}: missing number {field:?}"))
                })
            };
            let value = match kind {
                "counter" => MetricValue::Counter(num("value")? as u64),
                "gauge" => MetricValue::Gauge(num("value")?),
                "histogram" => {
                    let mut buckets = Vec::new();
                    for pair in e
                        .get("buckets")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| Error::config(format!("snapshot: {name}: no buckets")))?
                    {
                        let p = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                            Error::config(format!("snapshot: {name}: bad bucket pair"))
                        })?;
                        let idx = p[0].as_f64().unwrap_or(-1.0);
                        let count = p[1].as_f64().unwrap_or(-1.0);
                        if !(0.0..hipress_trace::hist::BUCKETS as f64).contains(&idx) || count < 0.0
                        {
                            return Err(Error::config(format!(
                                "snapshot: {name}: bucket out of range"
                            )));
                        }
                        buckets.push((idx as usize, count as u64));
                    }
                    MetricValue::Histogram(HistSummary {
                        count: num("count")? as u64,
                        sum: num("sum")? as u64,
                        min: num("min")? as u64,
                        max: num("max")? as u64,
                        buckets,
                    })
                }
                "series" => {
                    let mut points = Vec::new();
                    for pair in e
                        .get("points")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| Error::config(format!("snapshot: {name}: no points")))?
                    {
                        let p = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                            Error::config(format!("snapshot: {name}: bad point pair"))
                        })?;
                        points.push((
                            p[0].as_f64().unwrap_or(0.0) as u64,
                            p[1].as_f64().unwrap_or(0.0),
                        ));
                    }
                    MetricValue::Series(points)
                }
                other => {
                    return Err(Error::config(format!(
                        "snapshot: {name}: unknown kind {other:?}"
                    )));
                }
            };
            snap.insert(Key::new(name, labels), value);
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[u64]) -> HistSummary {
        let reg = crate::Registry::new();
        let h = reg.root().histogram("h", &[]);
        for &v in values {
            h.record(v);
        }
        h.summary()
    }

    #[test]
    fn hist_summary_matches_trace_histogram() {
        // The live histogram and the trace-side LatencyHistogram use
        // one bucket geometry and one interpolation, so identical
        // inputs yield identical quantiles.
        let mut vals = Vec::new();
        let mut x = 7u64;
        for i in 0..400u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) % 5_000_000;
            vals.push(x);
        }
        let s = hist(&vals);
        let mut t = hipress_trace::LatencyHistogram::new();
        for &v in &vals {
            t.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), t.quantile(q), "q={q}");
        }
        assert_eq!(s.count, t.count());
        assert_eq!(s.min, t.min_ns());
        assert_eq!(s.max, t.max_ns());
    }

    #[test]
    fn json_round_trip_is_identity() {
        let mut snap = MetricsSnapshot::new()
            .with_meta("tool", "test")
            .with_meta("git_rev", "abc123");
        snap.insert(
            Key::new("bytes_wire", LabelSet::new(&[("node", "0")])),
            MetricValue::Counter(12345),
        );
        snap.insert(
            Key::new("throughput_bytes_per_sec", LabelSet::default()),
            MetricValue::Gauge(1.25e9),
        );
        snap.insert(
            Key::new(
                "encode_ns",
                LabelSet::new(&[("node", "1"), ("algorithm", "onebit")]),
            ),
            MetricValue::Histogram(hist(&[10, 20, 20, 9000, 0])),
        );
        snap.insert(
            Key::new("iteration_ns", LabelSet::default()),
            MetricValue::Series(vec![(0, 100.0), (1, 95.5), (2, 103.25)]),
        );
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // And re-serializing is stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let text = MetricsSnapshot::new().to_json();
        let bad = text.replace(SCHEMA, "hipress-metrics/v999");
        assert!(MetricsSnapshot::from_json(&bad).is_err());
        assert!(MetricsSnapshot::from_json("{}").is_err());
        assert!(MetricsSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn merge_combines_kinds_correctly() {
        let key_c = Key::new("c", LabelSet::default());
        let key_g = Key::new("g", LabelSet::default());
        let key_h = Key::new("h_ns", LabelSet::default());
        let mut a = MetricsSnapshot::new();
        a.insert(key_c.clone(), MetricValue::Counter(10));
        a.insert(key_g.clone(), MetricValue::Gauge(1.0));
        a.insert(key_h.clone(), MetricValue::Histogram(hist(&[5, 5])));
        let mut b = MetricsSnapshot::new();
        b.insert(key_c.clone(), MetricValue::Counter(7));
        b.insert(key_g.clone(), MetricValue::Gauge(2.0));
        b.insert(key_h.clone(), MetricValue::Histogram(hist(&[1000])));
        a.merge(&b).unwrap();
        assert_eq!(a.get(&key_c), Some(&MetricValue::Counter(17)));
        assert_eq!(a.get(&key_g), Some(&MetricValue::Gauge(2.0)));
        match a.get(&key_h).unwrap() {
            MetricValue::Histogram(h) => {
                assert_eq!((h.count, h.sum, h.min, h.max), (3, 1010, 5, 1000));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn merge_kind_mismatch_errors() {
        let key = Key::new("x", LabelSet::default());
        let mut a = MetricsSnapshot::new();
        a.insert(key.clone(), MetricValue::Counter(1));
        let mut b = MetricsSnapshot::new();
        b.insert(key, MetricValue::Gauge(1.0));
        assert!(a.merge(&b).is_err());
    }
}

//! The typed metric registry and its recording handles.
//!
//! A [`Registry`] owns every metric created through it, keyed by
//! *name + label set*. Creation takes a lock (once, at setup time);
//! recording is lock-free — every handle writes straight into shared
//! atomics, so instrumented hot paths (CaSync-RT's per-task loop) pay
//! a handful of relaxed atomic ops, and uninstrumented ones pay
//! nothing at all (engines hold an `Option` and skip every call).
//!
//! [`Scope`] carries a base label set (`algorithm`, `strategy`,
//! `node`, `phase`, …) so a subsystem can mint metrics without
//! repeating its context on every call; scopes of one registry all
//! feed the same store.

use crate::snapshot::{HistSummary, MetricValue, MetricsSnapshot};
use hipress_trace::hist::{bucket_of, BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sorted, deduplicated `key=value` label set. Two metrics with the
/// same name but different labels are distinct series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct LabelSet(Vec<(String, String)>);

impl LabelSet {
    /// Builds a label set from pairs; later duplicates of a key win.
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        let mut set = LabelSet::default();
        for &(k, v) in pairs {
            set.insert(k, v);
        }
        set
    }

    /// Inserts or replaces one label.
    pub fn insert(&mut self, key: &str, value: &str) {
        match self.0.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.0[i].1 = value.to_string(),
            Err(i) => self.0.insert(i, (key.to_string(), value.to_string())),
        }
    }

    /// The value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.0[i].1.as_str())
    }

    /// The labels in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// True when no labels are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Renders as `{k="v",k2="v2"}` (empty string when unlabelled).
    pub fn render(&self) -> String {
        if self.0.is_empty() {
            return String::new();
        }
        let body: Vec<String> = self.0.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{{{}}}", body.join(","))
    }
}

/// The identity of one metric series: name plus labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// Metric name (dotted lowercase, e.g. `encode_ns`).
    pub name: String,
    /// Distinguishing labels.
    pub labels: LabelSet,
}

impl Key {
    /// Builds a key.
    pub fn new(name: &str, labels: LabelSet) -> Self {
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.name, self.labels.render())
    }
}

/// A monotonically increasing event/byte count.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value instrument holding an `f64` (throughput, ratios,
/// wall times).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (atomic read-modify-write).
    pub fn add(&self, delta: f64) {
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some((f64::from_bits(b) + delta).to_bits())
            });
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The shared storage of a lock-free log-bucketed histogram over
/// `u64` observations (nanoseconds, bytes, queue depths).
///
/// The bucket geometry is exactly [`hipress_trace::hist`]'s: bucket 0
/// holds `0`, bucket `k ≥ 1` holds `[2^(k-1), 2^k)` — so a live
/// histogram and a trace-derived [`hipress_trace::LatencyHistogram`]
/// report comparable quantiles.
///
/// The cell stays consistent under snapshot-while-recording: there is
/// no separate observation counter to race with the buckets — the
/// count *is* the bucket sum. Writers publish the bucket increment
/// *last* with `Release`, after `sum`/`min`/`max`; readers load the
/// buckets *first* with `Acquire`. A reader that counts an
/// observation therefore also sees that observation's contribution to
/// `sum` and the extremes (`sum` may transiently run ahead of the
/// counted observations — a record caught between its `sum` add and
/// its bucket publish — but it never lags them, so `count == Σ
/// buckets` holds in every snapshot and totals stay monotone).
#[derive(Debug)]
pub(crate) struct HistCell {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Release);
    }

    /// Folds an already-summarized histogram into this one: bucket
    /// counts and totals accumulate, extremes widen. Exact because
    /// both sides share one bucket geometry. Same publication order as
    /// [`HistCell::record`]: totals first, buckets last.
    fn absorb(&self, h: &HistSummary) {
        if h.count == 0 {
            return;
        }
        self.sum.fetch_add(h.sum, Ordering::Relaxed);
        self.min.fetch_min(h.min, Ordering::Relaxed);
        self.max.fetch_max(h.max, Ordering::Relaxed);
        for &(b, c) in &h.buckets {
            if let Some(cell) = self.counts.get(b) {
                cell.fetch_add(c, Ordering::Release);
            }
        }
    }

    fn summary(&self) -> HistSummary {
        // Buckets first (Acquire): everything a counted observation
        // wrote before its bucket publish is visible below.
        let buckets: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let c = c.load(Ordering::Acquire);
                (c > 0).then_some((b, c))
            })
            .collect();
        let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
        let min = self.min.load(Ordering::Relaxed);
        HistSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A lock-free log-bucketed histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.cell.record(v);
    }

    /// A point-in-time summary (buckets + exact count/sum/min/max).
    pub fn summary(&self) -> HistSummary {
        self.cell.summary()
    }
}

/// Default capacity of a [`TimeSeries`] sampler.
pub const SERIES_CAPACITY: usize = 512;

#[derive(Debug)]
pub(crate) struct SeriesBuf {
    /// Every retained sample covers `stride` pushes.
    stride: u64,
    samples: Vec<(u64, f64)>,
    pushed: u64,
    capacity: usize,
}

impl SeriesBuf {
    fn push(&mut self, v: f64) {
        if self.pushed % self.stride == 0 {
            if self.samples.len() == self.capacity {
                // Halve resolution, keep full-run coverage: retain
                // every other sample and double the stride.
                let mut keep = Vec::with_capacity(self.capacity / 2 + 1);
                for (i, s) in self.samples.drain(..).enumerate() {
                    if i % 2 == 0 {
                        keep.push(s);
                    }
                }
                self.samples = keep;
                self.stride *= 2;
            }
            if self.pushed % self.stride == 0 {
                self.samples.push((self.pushed, v));
            }
        }
        self.pushed += 1;
    }
}

/// A fixed-capacity sampler over an unbounded stream (per-iteration
/// throughput, wall times). When full it halves its resolution, so
/// the retained points always span the whole run.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    buf: Arc<Mutex<SeriesBuf>>,
}

impl TimeSeries {
    /// Appends one sample.
    pub fn push(&self, v: f64) {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(v);
    }

    /// The retained `(sequence, value)` points, in push order.
    pub fn points(&self) -> Vec<(u64, f64)> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .samples
            .clone()
    }
}

#[derive(Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCell>),
    Series(Arc<Mutex<SeriesBuf>>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
            Slot::Series(_) => "series",
        }
    }
}

/// The shared metric store. Cheap to clone; all clones and all
/// [`Scope`]s derived from them feed one store.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<Key, Slot>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scope with no base labels.
    pub fn root(&self) -> Scope {
        Scope {
            registry: self.clone(),
            base: LabelSet::default(),
        }
    }

    /// A scope whose metrics all carry `labels` in addition to
    /// whatever the call site supplies.
    pub fn scope(&self, labels: &[(&str, &str)]) -> Scope {
        Scope {
            registry: self.clone(),
            base: LabelSet::new(labels),
        }
    }

    fn with_slot<R>(
        &self,
        key: Key,
        make: impl FnOnce() -> Slot,
        use_: impl FnOnce(&Slot) -> R,
    ) -> R {
        let mut map = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = map.entry(key).or_insert_with(make);
        use_(slot)
    }

    fn counter_at(&self, key: Key) -> Counter {
        self.with_slot(
            key,
            || Slot::Counter(Arc::new(AtomicU64::new(0))),
            |s| match s {
                Slot::Counter(c) => Counter { cell: c.clone() },
                other => panic!(
                    "metric registered as {}, requested as counter",
                    other.kind()
                ),
            },
        )
    }

    fn gauge_at(&self, key: Key) -> Gauge {
        self.with_slot(
            key,
            || Slot::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
            |s| match s {
                Slot::Gauge(g) => Gauge { bits: g.clone() },
                other => panic!("metric registered as {}, requested as gauge", other.kind()),
            },
        )
    }

    fn histogram_at(&self, key: Key) -> Histogram {
        self.with_slot(
            key,
            || Slot::Histogram(Arc::new(HistCell::new())),
            |s| match s {
                Slot::Histogram(h) => Histogram { cell: h.clone() },
                other => panic!(
                    "metric registered as {}, requested as histogram",
                    other.kind()
                ),
            },
        )
    }

    fn series_at(&self, key: Key) -> TimeSeries {
        self.with_slot(
            key,
            || {
                Slot::Series(Arc::new(Mutex::new(SeriesBuf {
                    stride: 1,
                    samples: Vec::new(),
                    pushed: 0,
                    capacity: SERIES_CAPACITY,
                })))
            },
            |s| match s {
                Slot::Series(b) => TimeSeries { buf: b.clone() },
                other => panic!("metric registered as {}, requested as series", other.kind()),
            },
        )
    }

    /// Snapshots every metric into an immutable, serializable value
    /// map. Recording may continue concurrently; each metric is read
    /// atomically but the snapshot as a whole is not a global barrier.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut snap = MetricsSnapshot::new();
        for (key, slot) in map.iter() {
            let value = match slot {
                Slot::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                Slot::Gauge(g) => MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                Slot::Histogram(h) => MetricValue::Histogram(h.summary()),
                Slot::Series(b) => MetricValue::Series(
                    b.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .samples
                        .clone(),
                ),
            };
            snap.insert(key.clone(), value);
        }
        snap
    }
}

/// A label-carrying view over a [`Registry`]. All creation calls merge
/// the scope's base labels with the call-site labels (call site wins
/// on conflicts).
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Registry,
    base: LabelSet,
}

impl Scope {
    /// A child scope with extra base labels.
    pub fn with(&self, labels: &[(&str, &str)]) -> Scope {
        let mut base = self.base.clone();
        for &(k, v) in labels {
            base.insert(k, v);
        }
        Scope {
            registry: self.registry.clone(),
            base,
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn key(&self, name: &str, labels: &[(&str, &str)]) -> Key {
        let mut set = self.base.clone();
        for &(k, v) in labels {
            set.insert(k, v);
        }
        Key::new(name, set)
    }

    /// Creates (or finds) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.registry.counter_at(self.key(name, labels))
    }

    /// Creates (or finds) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.registry.gauge_at(self.key(name, labels))
    }

    /// Creates (or finds) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.registry.histogram_at(self.key(name, labels))
    }

    /// Creates (or finds) a time series.
    pub fn timeseries(&self, name: &str, labels: &[(&str, &str)]) -> TimeSeries {
        self.registry.series_at(self.key(name, labels))
    }

    /// Folds a snapshot (e.g. one a worker process shipped home over
    /// the control channel) into this scope's registry. Every
    /// absorbed key gains the scope's base labels, with the
    /// snapshot's own labels winning conflicts. Counters and
    /// histograms accumulate, gauges take the snapshot's value, and
    /// series points are re-appended in arrival order (sequence
    /// numbers are re-derived locally, so cross-process sequences
    /// are renumbered rather than interleaved).
    pub fn absorb_snapshot(&self, snap: &MetricsSnapshot) {
        for (key, value) in snap.iter() {
            let mut labels = self.base.clone();
            for (k, v) in key.labels.iter() {
                labels.insert(k, v);
            }
            let key = Key::new(&key.name, labels);
            match value {
                MetricValue::Counter(c) => self.registry.counter_at(key).add(*c),
                MetricValue::Gauge(g) => self.registry.gauge_at(key).set(*g),
                MetricValue::Histogram(h) => self.registry.histogram_at(key).cell.absorb(h),
                MetricValue::Series(points) => {
                    let ts = self.registry.series_at(key);
                    for &(_, v) in points {
                        ts.push(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sort_and_override() {
        let mut l = LabelSet::new(&[("b", "2"), ("a", "1")]);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![("a", "1"), ("b", "2")]);
        l.insert("a", "9");
        assert_eq!(l.get("a"), Some("9"));
        assert_eq!(l.render(), "{a=\"9\",b=\"2\"}");
        assert_eq!(LabelSet::default().render(), "");
    }

    #[test]
    fn handles_share_storage_by_key() {
        let reg = Registry::new();
        let a = reg.root().counter("x", &[("node", "0")]);
        let b = reg.root().counter("x", &[("node", "0")]);
        let other = reg.root().counter("x", &[("node", "1")]);
        a.add(2);
        b.add(3);
        other.inc();
        assert_eq!(a.get(), 5);
        assert_eq!(other.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.root().counter("x", &[]);
        let _ = reg.root().gauge("x", &[]);
    }

    #[test]
    fn scope_labels_merge_call_site_wins() {
        let reg = Registry::new();
        let scope = reg.scope(&[("strategy", "casync-ps"), ("node", "X")]);
        let _ = scope.counter("c", &[("node", "3")]);
        let snap = reg.snapshot();
        let key = snap.keys().next().unwrap();
        assert_eq!(key.labels.get("strategy"), Some("casync-ps"));
        assert_eq!(key.labels.get("node"), Some("3"));
    }

    #[test]
    fn gauge_roundtrips_f64() {
        let reg = Registry::new();
        let g = reg.root().gauge("g", &[]);
        g.set(1.5);
        g.add(-0.25);
        assert!((g.get() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_extremes() {
        let reg = Registry::new();
        let h = reg.root().histogram("h", &[]);
        for v in [3u64, 0, 700, 700, 12] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1415);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 700);
    }

    #[test]
    fn series_decimates_but_spans_run() {
        let reg = Registry::new();
        let ts = reg.root().timeseries("t", &[]);
        for i in 0..(SERIES_CAPACITY as u64 * 4) {
            ts.push(i as f64);
        }
        let pts = ts.points();
        assert!(pts.len() <= SERIES_CAPACITY);
        assert!(pts.len() >= SERIES_CAPACITY / 4);
        // First sample retained; last retained sample is near the end.
        assert_eq!(pts[0].0, 0);
        assert!(pts.last().unwrap().0 >= SERIES_CAPACITY as u64 * 3);
        // Sequence numbers strictly increase.
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn absorb_snapshot_merges_labels_and_accumulates() {
        // A "worker" registry records under its own labels…
        let worker = Registry::new();
        let wscope = worker.scope(&[("node", "1")]);
        wscope.counter("events", &[]).add(5);
        wscope.gauge("wall_ns", &[]).set(2.5);
        let h = wscope.histogram("lat_ns", &[]);
        h.record(7);
        h.record(700);
        wscope.timeseries("iter_ns", &[]).push(9.0);
        let json = worker.snapshot().to_json();
        let snap = MetricsSnapshot::from_json(&json).unwrap();

        // …and the coordinator folds it in under its base labels,
        // twice, to prove counters/histograms accumulate.
        let coord = Registry::new();
        let scope = coord.scope(&[("strategy", "casync-ring"), ("node", "X")]);
        scope.absorb_snapshot(&snap);
        scope.absorb_snapshot(&snap);

        let merged = coord.snapshot();
        let key = merged
            .keys()
            .find(|k| k.name == "events")
            .expect("absorbed counter");
        assert_eq!(key.labels.get("strategy"), Some("casync-ring"));
        assert_eq!(key.labels.get("node"), Some("1"), "snapshot label wins");
        assert_eq!(merged.total_counter("events"), 10);
        let (count, sum) = merged.hist_totals("lat_ns");
        assert_eq!(count, 4);
        assert_eq!(sum, 2 * 707);
        let hist = scope.histogram("lat_ns", &[("node", "1")]).summary();
        assert_eq!((hist.min, hist.max), (7, 700));
        let pts = scope.timeseries("iter_ns", &[("node", "1")]).points();
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|&(_, v)| (v - 9.0).abs() < 1e-12));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Registry::new();
        let mut handles = Vec::new();
        for node in 0..4 {
            let scope = reg.scope(&[("node", &node.to_string())]);
            handles.push(std::thread::spawn(move || {
                let c = scope.counter("events", &[]);
                let h = scope.histogram("lat_ns", &[]);
                for i in 0..1000 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.total_counter("events"), 4000);
        let (count, sum) = snap.hist_totals("lat_ns");
        assert_eq!(count, 4000);
        assert_eq!(sum, 4 * (999 * 1000 / 2));
    }
}

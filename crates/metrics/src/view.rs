//! The text dashboard: sparklines and a per-metric summary table.
//!
//! `hipress report` renders a snapshot through this module — the
//! metrics counterpart of `hipress-trace::view`'s Figure-9 bars. Each
//! metric gets one line: counters and gauges show their value,
//! histograms show count and p50/p90/p99, time series render as a
//! Unicode sparkline so the per-iteration trajectory is visible
//! without leaving the terminal.

use crate::snapshot::{MetricValue, MetricsSnapshot};
use hipress_util::units::{fmt_bytes, fmt_duration_ns};
use std::fmt::Write as _;

/// The eight block glyphs a sparkline is drawn with.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a fixed-height Unicode sparkline, scaled to the
/// observed min..max range (a flat series renders as a low bar).
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if span <= 0.0 || !span.is_finite() {
                BLOCKS[0]
            } else {
                let i = ((v - min) / span * (BLOCKS.len() - 1) as f64).round() as usize;
                BLOCKS[i.min(BLOCKS.len() - 1)]
            }
        })
        .collect()
}

/// Downsamples `values` to at most `width` points by bucket-averaging,
/// so long series still fit one terminal line.
pub fn resample(values: &[f64], width: usize) -> Vec<f64> {
    if width == 0 || values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let lo = i * values.len() / width;
            let hi = (((i + 1) * values.len()) / width).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

fn fmt_value(name: &str, v: f64) -> String {
    if name.ends_with("_ns") && v >= 0.0 {
        fmt_duration_ns(v.round() as u64)
    } else if name.starts_with("bytes") && v >= 0.0 && v.fract() == 0.0 {
        fmt_bytes(v as u64)
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders the dashboard: one line per metric, grouped in key order
/// (which clusters label variants of one name together).
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    if !snap.meta.is_empty() {
        let meta: Vec<String> = snap.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(out, "# {}", meta.join(" "));
    }
    let width = snap
        .keys()
        .map(|k| k.to_string().len())
        .max()
        .unwrap_or(0)
        .min(64);
    for (key, value) in snap.iter() {
        let label = key.to_string();
        let body = match value {
            MetricValue::Counter(c) => fmt_value(&key.name, *c as f64),
            MetricValue::Gauge(g) => fmt_value(&key.name, *g),
            MetricValue::Histogram(h) => format!(
                "n={} p50={} p90={} p99={} max={}",
                h.count,
                fmt_value(&key.name, h.p50() as f64),
                fmt_value(&key.name, h.p90() as f64),
                fmt_value(&key.name, h.p99() as f64),
                fmt_value(&key.name, h.max as f64),
            ),
            MetricValue::Series(points) => {
                let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
                let last = values.last().copied().unwrap_or(0.0);
                format!(
                    "{} n={} last={}",
                    sparkline(&resample(&values, 40)),
                    values.len(),
                    fmt_value(&key.name, last)
                )
            }
        };
        let _ = writeln!(out, "{label:<width$}  {body}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Key, LabelSet};
    use crate::snapshot::HistSummary;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(ramp, "▁▂▃▄▅▆▇█");
        // Extremes map to extreme glyphs.
        let updown = sparkline(&[0.0, 10.0, 0.0]);
        assert_eq!(updown.chars().count(), 3);
        assert!(updown.starts_with('▁') && updown.ends_with('▁'));
        assert!(updown.contains('█'));
    }

    #[test]
    fn resample_preserves_short_and_shrinks_long() {
        assert_eq!(resample(&[1.0, 2.0], 40), vec![1.0, 2.0]);
        let long: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let r = resample(&long, 40);
        assert_eq!(r.len(), 40);
        // Averaged buckets stay monotone for a monotone input.
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn render_covers_all_kinds() {
        let mut snap = MetricsSnapshot::new().with_meta("model", "resnet50");
        snap.insert(
            Key::new("bytes_wire", LabelSet::default()),
            MetricValue::Counter(2048),
        );
        snap.insert(
            Key::new("wall_ns", LabelSet::default()),
            MetricValue::Gauge(1_500_000.0),
        );
        snap.insert(
            Key::new("encode_ns", LabelSet::new(&[("node", "0")])),
            MetricValue::Histogram(HistSummary {
                count: 3,
                sum: 30,
                min: 10,
                max: 10,
                buckets: vec![(4, 3)],
            }),
        );
        snap.insert(
            Key::new("iteration_ns", LabelSet::default()),
            MetricValue::Series(vec![(0, 100.0), (1, 200.0), (2, 150.0)]),
        );
        let text = render(&snap);
        assert!(text.contains("# model=resnet50"));
        assert!(text.contains("2.00 KiB"));
        assert!(text.contains("1.50ms"));
        assert!(text.contains("n=3 p50=10ns"));
        assert!(text.contains('█'));
    }
}

//! The shared metric-name catalogue.
//!
//! Both execution backends emit the *same* names — CaSync-RT records
//! them live from wall-clock measurements, the simulator lowers its
//! `Timeline` through [`crate::bridge`] — so a simulated and a
//! measured run of one plan differ only in values, and sim-vs-measured
//! is a plain [`crate::MetricsDiff`]. Names follow the polarity
//! convention [`crate::Polarity::of_name`] gates on: `*_ns` durations
//! and `*retransmit*` counters regress upward,
//! `*throughput*`/`*savings*`/`*efficiency*`/`*_per_sec` rates
//! regress downward, everything else is informational.

/// Per-primitive latency histograms: `source_ns`, `encode_ns`,
/// `decode_ns`, `merge_ns`, `send_ns`, `recv_ns`, `update_ns`,
/// `barrier_ns` — one per span category of the eight primitives, in
/// report order.
pub const PRIM_NS: [&str; 8] = [
    "source_ns",
    "encode_ns",
    "decode_ns",
    "merge_ns",
    "send_ns",
    "recv_ns",
    "update_ns",
    "barrier_ns",
];

/// Local replica-aggregation latency histogram (§3.1).
pub const LOCAL_AGG_NS: &str = "local_agg_ns";

/// Counter: bytes actually moved through the fabric.
pub const BYTES_WIRE: &str = "bytes_wire";

/// Counter: bytes the same sends would have moved uncompressed.
pub const BYTES_RAW: &str = "bytes_raw";

/// Counter: messages delivered between nodes.
pub const MESSAGES: &str = "messages";

/// Counter: batched codec launches (batch compression, §3.2).
pub const COMP_BATCH_LAUNCHES: &str = "comp_batch_launches";

/// Gauge: end-to-end wall time of the run, nanoseconds.
pub const WALL_NS: &str = "wall_ns";

/// Gauge: number of nodes that executed the plan.
pub const NODES: &str = "nodes";

/// Gauge: raw gradient bytes synchronized per wall-clock second.
pub const THROUGHPUT: &str = "throughput_bytes_per_sec";

/// Gauge: wire-volume reduction factor (`bytes_raw / bytes_wire`,
/// 1.0 uncompressed). Named `savings`, not `ratio`, so the gate
/// treats growth as improvement.
pub const COMPRESSION_SAVINGS: &str = "compression_savings";

/// Series: per-iteration wall time, nanoseconds.
pub const ITERATION_NS: &str = "iteration_ns";

/// Histogram: `Q_comp` occupancy sampled at queue transitions.
pub const Q_COMP_DEPTH: &str = "q_comp_depth";

/// Histogram: `Q_commu` occupancy sampled at queue transitions.
pub const Q_COMMU_DEPTH: &str = "q_commu_depth";

/// Counter: cost-model evaluations performed by the planner.
pub const PLANNER_EVALS: &str = "planner_cost_evals";

/// Histogram: the planner's predicted synchronization time for each
/// planned gradient (the winning side of Eq. 1 vs Eq. 2), ns.
pub const PLANNER_PREDICTED_SYNC_NS: &str = "planner_predicted_sync_ns";

/// Gauge: cluster-wide training throughput in samples per second
/// (the simulator's headline figure; the runtime reports
/// [`THROUGHPUT`] in bytes because it syncs gradients, not batches).
pub const SAMPLES_PER_SEC: &str = "throughput_samples_per_sec";

/// Gauge: the paper's scaling efficiency — throughput over
/// `GPUs × single-GPU throughput`.
pub const SCALING_EFFICIENCY: &str = "scaling_efficiency";

/// Gauge: the busiest node's network activity over the iteration
/// (Table 1). Informational: it can legitimately move either way.
pub const COMM_RATIO: &str = "comm_ratio";

/// Gauge: pure single-GPU compute time per iteration (fwd+bwd), ns.
pub const COMPUTE_NS: &str = "compute_ns";

/// Gauge: when the last gradient finished synchronizing, measured
/// from the start of backward, ns.
pub const SYNC_FINISH_NS: &str = "sync_finish_ns";

/// Histogram: busy-interval durations on a simulated component track
/// (labelled `track`), lowered from `hipress-simevent`'s `Timeline`.
pub const BUSY_NS: &str = "busy_ns";

/// Counter: batched network flushes the simulated coordinator
/// performed.
pub const LINK_FLUSHES: &str = "link_flushes";

/// Counter: discrete events processed by the simulator.
pub const SIM_EVENTS: &str = "sim_events";

/// Counter: faults injected by a chaos plan, labelled `kind`
/// (`drop`, `dup`, `reorder`, `delay`, `corrupt`, `stall`).
/// Informational — a chaos run injecting more faults is not a
/// regression, it is the plan doing its job.
pub const CHAOS_INJECTED: &str = "chaos_injected";

/// Counter: timer-driven retransmissions by the fault-tolerant
/// protocol.
pub const FT_RETRIES: &str = "ft_retries";

/// Counter: nacks sent for corrupt arrivals.
pub const FT_NACKS: &str = "ft_nacks";

/// Counter: intact arrivals discarded by receiver-side dedup.
pub const FT_DUPLICATES_IGNORED: &str = "ft_duplicates_ignored";

/// Counter: corrupt arrivals caught by checksum verification.
pub const FT_CORRUPTIONS_DETECTED: &str = "ft_corruptions_detected";

/// Counter: chunk contributions skipped by the degradation policy.
pub const FT_DEGRADED_CHUNKS: &str = "ft_degraded_chunks";

/// Counter: straggler diagnoses, labelled `action`
/// (`waited`, `skipped`, `aborted`).
pub const FT_STRAGGLER_VERDICTS: &str = "ft_straggler_verdicts";

/// Counter: data frames the transport fabric sent. Informational —
/// frame counts track graph shape, not performance.
pub const FABRIC_FRAMES: &str = "fabric_frames";

/// Counter: bytes of encoded frames the fabric sent, headers
/// included. Informational; compare against `bytes_wire` to see the
/// framing overhead.
pub const FABRIC_BYTES_FRAMED: &str = "fabric_bytes_framed";

/// Counter: payload bytes inside those frames, before framing.
/// Informational; `fabric_bytes_framed − fabric_bytes_payload` is the
/// header tax.
pub const FABRIC_BYTES_PAYLOAD: &str = "fabric_bytes_payload";

/// Counter: frame retransmissions performed by the fabric's
/// reliability layer. Lower is better — loopback runs keep it at
/// zero, and growth means the reliability layer is resending work.
pub const FABRIC_RETRANSMITS: &str = "fabric_retransmits";

/// Gauge: fraction of iteration time the pipelined runtime hid by
/// overlapping iterations, in `[0, 1)`. Higher is better.
pub const PIPELINE_OVERLAP: &str = "pipeline_overlap_efficiency";

/// Counter: SLO watchdog alerts fired by the live telemetry plane,
/// labelled `kind` (`iteration_latency_regression`, `retransmit_storm`,
/// `overlap_collapse`, `straggler_rank`, `heartbeat_gap`).
/// Informational for the perf gate — alert *presence* is asserted
/// directly by the telemetry smoke test, not by the diff.
pub const ALERTS_TOTAL: &str = "alerts_total";

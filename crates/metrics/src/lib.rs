//! Live metrics for HiPress: a typed registry, machine-readable bench
//! snapshots, and perf diffs.
//!
//! The paper's argument is quantitative — throughput, sync time,
//! scaling efficiency (Figures 7–13, Tables 1/5/7) — and PR 3's
//! tracing answers *where time went* after the fact. This crate is the
//! live counterpart: numbers that accumulate while the system runs,
//! serialize to a schema-versioned JSON snapshot, and diff against a
//! committed baseline so CI notices when the runtime or the simulator
//! gets slower.
//!
//! The pieces:
//!
//! * [`Registry`] / [`Scope`] — the typed metric store. Four
//!   instrument kinds: [`Counter`] (monotonic, atomic), [`Gauge`]
//!   (`f64` last-value), [`Histogram`] (lock-free, sharing
//!   `hipress-trace`'s log-bucket geometry so live and trace-derived
//!   distributions compare exactly), and [`TimeSeries`] (fixed-capacity
//!   decimating sampler). Recording is lock-free; engines hold an
//!   `Option<&Scope>` and pay nothing when none is installed.
//! * [`names`] — the metric catalogue both execution backends emit,
//!   which is what makes sim-vs-measured a key-aligned diff.
//! * [`MetricsSnapshot`] — immutable point-in-time state with
//!   associative [`MetricsSnapshot::merge`], JSON in both directions
//!   (`BENCH_*.json`, schema [`snapshot::SCHEMA`]), and a Prometheus
//!   text form ([`prom`]).
//! * [`MetricsDiff`] / [`Polarity`] — key-by-key comparison with
//!   name-derived good directions; the `hipress bench --baseline`
//!   regression gate is [`MetricsDiff::regressions`].
//! * [`bridge`] — lowers any recorded [`hipress_trace::Trace`]
//!   (simulated or measured) into the catalogue.
//! * [`view`] — sparkline/table dashboard for `hipress report`.
//!
//! Everything is `std`-only; the JSON machinery is shared with
//! `hipress-trace` (the workspace builds fully offline).

#![forbid(unsafe_code)]

pub mod bridge;
pub mod diff;
pub mod names;
pub mod prom;
pub mod registry;
pub mod snapshot;
pub mod view;

pub use diff::{DiffRow, MetricsDiff, Polarity};
pub use registry::{Counter, Gauge, Histogram, Key, LabelSet, Registry, Scope, TimeSeries};
pub use snapshot::{HistSummary, MetricValue, MetricsSnapshot};

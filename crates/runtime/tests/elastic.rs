//! Elastic-membership determinism: the epoch boundary is the
//! checkpoint.
//!
//! The pipelined protocol is bit-deterministic in (member set,
//! gradients, seed), so re-planning over survivors after a crash must
//! produce **exactly** the flows a from-scratch run over that member
//! set produces — no drift, no residue from the dead rank. Likewise a
//! crash followed by a rejoin must land back on the full-membership
//! result bit for bit. Both are checked across the algorithm ×
//! strategy × seed matrix, against baselines run through the same
//! worker machinery ([`run_threaded_workers`]) so the only variable
//! is the membership schedule.

use hipress_chaos::MembershipPlan;
use hipress_compress::Algorithm;
use hipress_core::Strategy;
use hipress_runtime::{
    run_elastic_threaded, run_threaded_workers, Instruments, PipelineConfig, ProcessConfig,
    RunOutcome, RuntimeConfig,
};
use hipress_tensor::synth::{generate, GradientShape};
use hipress_tensor::Tensor;

const SIZES: [usize; 2] = [96, 64];
const PARTITIONS: usize = 2;
const ITERATIONS: u32 = 6;

fn worker_grads(nodes: usize, salt: u64) -> Vec<Vec<Tensor>> {
    (0..nodes)
        .map(|w| {
            SIZES
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::HeavyTailed {
                            std_dev: 1.0,
                            outlier_frac: 0.01,
                            outlier_scale: 20.0,
                        },
                        salt * 1000 + (w * 37 + g) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

fn pcfg() -> PipelineConfig {
    PipelineConfig {
        iterations: ITERATIONS,
        window: 2,
        ..Default::default()
    }
}

fn fixed_baseline(
    strategy: Strategy,
    algorithm: Algorithm,
    grads: &[Vec<Tensor>],
    seed: u64,
) -> RunOutcome {
    run_threaded_workers(
        strategy,
        algorithm,
        PARTITIONS,
        grads,
        seed,
        &RuntimeConfig::default(),
        &pcfg(),
        &ProcessConfig::default(),
        Instruments::default(),
    )
    .expect("fixed-membership baseline run")
}

fn assert_same_flows(case: &str, a: &RunOutcome, b: &RunOutcome) {
    assert_eq!(a.flows.len(), b.flows.len(), "{case}: flow count");
    for (fa, fb) in a.flows.iter().zip(&b.flows) {
        assert_eq!(fa.flow, fb.flow, "{case}: flow order");
        assert_eq!(
            fa.per_node.len(),
            fb.per_node.len(),
            "{case}: flow {} replicas",
            fa.flow
        );
        for (i, (x, y)) in fa.per_node.iter().zip(&fb.per_node).enumerate() {
            assert_eq!(x, y, "{case}: flow {} replica {i} diverged", fa.flow);
        }
    }
}

/// Crash at iteration 2 of 6: the run must finish all six iterations
/// on the survivors, report the eviction, and produce bit for bit the
/// flows of a from-scratch run over the survivor set.
#[test]
fn survivor_continuation_is_bit_identical_to_fresh_survivor_run() {
    let nodes = 3;
    let victim = 1u32;
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for algorithm in [Algorithm::OneBit, Algorithm::TernGrad { bitwidth: 2 }] {
            for seed in [11u64, 12, 13, 14] {
                let case = format!("{strategy:?}/{algorithm:?}/seed{seed}");
                let grads = worker_grads(nodes, seed);
                let elastic = run_elastic_threaded(
                    strategy,
                    algorithm,
                    PARTITIONS,
                    &grads,
                    seed,
                    &RuntimeConfig::default(),
                    &pcfg(),
                    &MembershipPlan::crash(victim, 2),
                    Instruments::default(),
                )
                .unwrap_or_else(|e| panic!("{case}: elastic run failed: {e}"));

                assert!(
                    elastic.report.evicted.contains(&victim),
                    "{case}: victim missing from evicted list {:?}",
                    elastic.report.evicted
                );
                let last = elastic
                    .report
                    .membership
                    .last()
                    .unwrap_or_else(|| panic!("{case}: no epoch records"));
                assert!(last.epoch >= 1, "{case}: epoch never bumped");
                assert_eq!(last.members, vec![0, 2], "{case}: final member set");

                let survivors: Vec<Vec<Tensor>> =
                    [0usize, 2].iter().map(|&w| grads[w].clone()).collect();
                let fresh = fixed_baseline(strategy, algorithm, &survivors, seed);
                assert_same_flows(&case, &elastic, &fresh);
            }
        }
    }
}

/// Crash at iteration 2, rejoin at iteration 4: the final epoch runs
/// at full membership again, and its flows match a run that never
/// crashed at all.
#[test]
fn rejoined_membership_lands_back_on_the_full_run_bitstream() {
    let nodes = 3;
    let victim = 2u32;
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for algorithm in [Algorithm::OneBit, Algorithm::TernGrad { bitwidth: 2 }] {
            for seed in [21u64, 22, 23, 24] {
                let case = format!("rejoin/{strategy:?}/{algorithm:?}/seed{seed}");
                let grads = worker_grads(nodes, seed);
                let elastic = run_elastic_threaded(
                    strategy,
                    algorithm,
                    PARTITIONS,
                    &grads,
                    seed,
                    &RuntimeConfig::default(),
                    &pcfg(),
                    &MembershipPlan::crash_then_rejoin(victim, 2, 4),
                    Instruments::default(),
                )
                .unwrap_or_else(|e| panic!("{case}: elastic run failed: {e}"));

                let last = elastic
                    .report
                    .membership
                    .last()
                    .unwrap_or_else(|| panic!("{case}: no epoch records"));
                assert_eq!(
                    last.members,
                    vec![0, 1, 2],
                    "{case}: rejoin never restored full membership"
                );
                assert!(
                    elastic.report.evicted.contains(&victim),
                    "{case}: eviction must still be on the record"
                );

                let full = fixed_baseline(strategy, algorithm, &grads, seed);
                assert_same_flows(&case, &elastic, &full);
            }
        }
    }
}

/// The degenerate plan — no crashes, no rejoins — runs one segment at
/// epoch 0 and matches the fixed-membership driver exactly.
#[test]
fn empty_plan_is_the_fixed_membership_run() {
    let grads = worker_grads(3, 7);
    let elastic = run_elastic_threaded(
        Strategy::CaSyncPs,
        Algorithm::OneBit,
        PARTITIONS,
        &grads,
        7,
        &RuntimeConfig::default(),
        &pcfg(),
        &MembershipPlan::none(),
        Instruments::default(),
    )
    .expect("elastic run with empty plan");
    assert_eq!(elastic.report.membership.len(), 1, "one epoch record");
    assert!(elastic.report.evicted.is_empty());
    let fixed = fixed_baseline(Strategy::CaSyncPs, Algorithm::OneBit, &grads, 7);
    assert_same_flows("empty-plan", &elastic, &fixed);
}

//! Trace/report parity for the traced thread engine.
//!
//! For every compression algorithm on both CaSync strategies, a
//! traced run must produce (a) a trace whose derived
//! [`RuntimeReport`] equals the independently accumulated one
//! *exactly* — the engine feeds each task's single measured duration
//! to both — and (b) Chrome trace-event JSON that round-trips through
//! the crate's own reader without loss.

use hipress_compress::Algorithm;
use hipress_core::interp::gradient_flows;
use hipress_core::plan::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
use hipress_core::{ClusterConfig, Strategy};
use hipress_runtime::{
    run_threaded_workers, run_traced, validate_clock_monotonicity, Instruments, PipelineConfig,
    ProcessConfig, RuntimeConfig, RuntimeReport,
};
use hipress_tensor::synth::{generate, GradientShape};
use hipress_tensor::Tensor;
use hipress_trace::{chrome, Tracer};

fn worker_grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
    (0..nodes)
        .map(|w| {
            sizes
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 1000 + g) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

fn iter_spec(sizes: &[usize], alg: Algorithm, partitions: usize) -> IterationSpec {
    IterationSpec {
        gradients: sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| SyncGradient {
                name: format!("g{i}"),
                bytes: (n * 4) as u64,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: !matches!(alg, Algorithm::None),
                    partitions,
                },
            })
            .collect(),
        compression: alg.build().map(|c| CompressionSpec::of(c.as_ref())),
    }
}

#[test]
fn traced_matrix_report_parity_and_chrome_round_trip() {
    let nodes = 3;
    let sizes = [768usize, 96];
    let grads = worker_grads(nodes, &sizes);
    let flows = gradient_flows(&grads);
    let cluster = ClusterConfig::ec2(nodes);
    let algorithms = [
        Algorithm::OneBit,
        Algorithm::Tbq { tau: 0.05 },
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::Dgc { rate: 0.1 },
        Algorithm::GradDrop { rate: 0.1 },
    ];
    for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for alg in algorithms {
            let iter = iter_spec(&sizes, alg, 2);
            let graph = strat.build(&cluster, &iter).unwrap();
            let c = alg.build().unwrap();
            let tracer = Tracer::new("casync-rt");
            let out = run_traced(
                &graph,
                nodes,
                &flows,
                Some(c.as_ref()),
                13,
                &RuntimeConfig::default(),
                &tracer,
            )
            .unwrap();
            let trace = tracer.finish();

            // Every registered track recorded something.
            assert!(
                trace.validate().is_ok(),
                "{strat:?} {alg:?}: empty tracks {:?}",
                trace.validate().unwrap_err()
            );

            // The trace-derived report equals the accumulated one
            // exactly — same counts, same nanoseconds, same bytes.
            let derived = RuntimeReport::from_trace(&trace);
            assert_eq!(derived, out.report, "{strat:?} {alg:?} parity broke");

            // Chrome export is lossless through the crate's reader,
            // and the reimported trace still derives the same report.
            let json = chrome::export(&trace);
            let back = chrome::import(&json).unwrap();
            assert_eq!(back, trace, "{strat:?} {alg:?} round trip lost data");
            assert_eq!(RuntimeReport::from_trace(&back), out.report);
        }
    }
}

#[test]
fn traced_and_untraced_runs_agree_on_results() {
    let nodes = 3;
    let sizes = [256usize];
    let grads = worker_grads(nodes, &sizes);
    let flows = gradient_flows(&grads);
    let cluster = ClusterConfig::ec2(nodes);
    let iter = iter_spec(&sizes, Algorithm::OneBit, 2);
    let graph = Strategy::CaSyncRing.build(&cluster, &iter).unwrap();
    let c = Algorithm::OneBit.build().unwrap();
    let tracer = Tracer::new("casync-rt");
    let traced = run_traced(
        &graph,
        nodes,
        &flows,
        Some(c.as_ref()),
        21,
        &RuntimeConfig::default(),
        &tracer,
    )
    .unwrap();
    let plain = hipress_runtime::run(
        &graph,
        nodes,
        &flows,
        Some(c.as_ref()),
        21,
        &RuntimeConfig::default(),
    )
    .unwrap();
    // Tracing is observation only: synchronized tensors are
    // bit-identical with and without it.
    for (a, b) in traced.flows.iter().zip(&plain.flows) {
        assert_eq!(a.per_node, b.per_node);
    }
    // Structure-level counters match too (timings of course differ).
    assert_eq!(traced.report.encode.count, plain.report.encode.count);
    assert_eq!(traced.report.messages, plain.report.messages);
    assert_eq!(traced.report.bytes_wire, plain.report.bytes_wire);
}

/// The distributed path keeps the same parity guarantee: a traced
/// multi-worker run (real control protocol, TCP mesh, clock probes —
/// only `fork/exec` elided) ships every rank's trace home, the
/// coordinator stitches them into one clock-aligned timeline, and
/// that merged timeline re-derives the merged [`RuntimeReport`]
/// exactly. Two seeds guard against a lucky alignment.
#[test]
fn processes_merged_trace_report_parity() {
    let sizes = [512usize, 64];
    for (seed, strat) in [(13u64, Strategy::CaSyncPs), (29, Strategy::CaSyncRing)] {
        let grads = worker_grads(3, &sizes);
        let tracer = Tracer::new("casync-rt");
        let out = run_threaded_workers(
            strat,
            Algorithm::OneBit,
            2,
            &grads,
            seed,
            &RuntimeConfig::default(),
            &PipelineConfig::default(),
            &ProcessConfig::default(),
            Instruments {
                tracer: Some(&tracer),
                metrics: None,
                progress: None,
            },
        )
        .unwrap_or_else(|e| panic!("{strat:?} seed {seed}: {e}"));
        let trace = tracer.finish();

        // One node track per rank made it into the merged timeline.
        for node in 0..3 {
            assert!(
                trace.find_track(&format!("node{node}")).is_some(),
                "{strat:?} seed {seed}: rank {node} missing from merged trace"
            );
        }

        // Clock alignment did its job: every cross-rank send lands
        // before its matching receive on the merged timeline.
        match validate_clock_monotonicity(&trace) {
            Ok(checked) => assert!(
                checked > 0,
                "{strat:?} seed {seed}: no cross-rank pairs checked"
            ),
            Err(violations) => panic!("{strat:?} seed {seed}: clock skew {violations:?}"),
        }

        // The merged trace re-derives the merged report exactly.
        assert_eq!(
            RuntimeReport::from_trace(&trace),
            out.report,
            "{strat:?} seed {seed}: distributed parity broke"
        );

        // And survives the Chrome JSON round trip untouched.
        let back = chrome::import(&chrome::export(&trace)).unwrap();
        assert_eq!(RuntimeReport::from_trace(&back), out.report);
    }
}

#[test]
fn queue_depth_counters_return_to_zero() {
    let nodes = 2;
    let sizes = [128usize];
    let grads = worker_grads(nodes, &sizes);
    let flows = gradient_flows(&grads);
    let cluster = ClusterConfig::ec2(nodes);
    let iter = iter_spec(&sizes, Algorithm::None, 1);
    let graph = Strategy::CaSyncPs.build(&cluster, &iter).unwrap();
    let tracer = Tracer::new("casync-rt");
    run_traced(
        &graph,
        nodes,
        &flows,
        None,
        1,
        &RuntimeConfig::default(),
        &tracer,
    )
    .unwrap();
    let trace = tracer.finish();
    for node in 0..nodes {
        for q in ["Q_comp", "Q_commu"] {
            let id = trace
                .find_track(&format!("node{node}/{q}"))
                .unwrap_or_else(|| panic!("missing node{node}/{q}"));
            let samples = &trace.track(id).samples;
            assert!(!samples.is_empty(), "node{node}/{q} never sampled");
            // All tasks drained: final queue depth is zero.
            assert_eq!(samples.last().unwrap().1, 0.0, "node{node}/{q}");
        }
    }
}

//! Cross-validation: the thread engine and the discrete-event
//! interpreter must install byte-identical parameters for every
//! compression algorithm on both CaSync strategies — the invariant
//! that lets the simulator and the runtime vouch for each other.

use hipress_compress::Algorithm;
use hipress_core::interp::{gradient_flows, interpret};
use hipress_core::plan::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
use hipress_core::{ClusterConfig, Strategy};
use hipress_runtime::{run, RuntimeConfig};
use hipress_tensor::synth::{generate, GradientShape};
use hipress_tensor::Tensor;

fn workers(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
    (0..nodes)
        .map(|w| {
            sizes
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::HeavyTailed {
                            std_dev: 1.0,
                            outlier_frac: 0.01,
                            outlier_scale: 20.0,
                        },
                        (w * 31 + g) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

fn spec(sizes: &[usize], alg: Algorithm, partitions: usize) -> IterationSpec {
    let compressor = alg.build();
    IterationSpec {
        gradients: sizes
            .iter()
            .enumerate()
            .map(|(g, &n)| SyncGradient {
                name: format!("g{g}"),
                bytes: (n * 4) as u64,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: compressor.is_some(),
                    partitions,
                },
            })
            .collect(),
        compression: compressor.as_deref().map(CompressionSpec::of),
    }
}

/// All five paper algorithms × both CaSync strategies × several
/// cluster sizes: byte-identical outcomes between the two executions.
#[test]
fn all_algorithms_bit_identical_to_interpreter() {
    let sizes = [700usize, 123];
    for nodes in [2usize, 3, 5] {
        let grads = workers(nodes, &sizes);
        let flows = gradient_flows(&grads);
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            for alg in [
                Algorithm::OneBit,
                Algorithm::Tbq { tau: 0.05 },
                Algorithm::TernGrad { bitwidth: 2 },
                Algorithm::Dgc { rate: 0.001 },
                Algorithm::GradDrop { rate: 0.01 },
            ] {
                let iter = spec(&sizes, alg, 2);
                let cluster = ClusterConfig::ec2(nodes);
                let graph = strategy.build(&cluster, &iter).unwrap();
                let c = alg.build().unwrap();
                let sim = interpret(&graph, nodes, &flows, Some(c.as_ref()), 77).unwrap();
                let rt = run(
                    &graph,
                    nodes,
                    &flows,
                    Some(c.as_ref()),
                    77,
                    &RuntimeConfig::default(),
                )
                .unwrap();
                assert_eq!(sim.len(), rt.flows.len());
                for (a, b) in sim.iter().zip(&rt.flows) {
                    assert_eq!(a.flow, b.flow);
                    assert!(b.replicas_consistent(), "{strategy:?} × {}", c.name());
                    assert_eq!(
                        a.per_node,
                        b.per_node,
                        "{strategy:?} × {} × {nodes} nodes diverged",
                        c.name()
                    );
                }
            }
        }
    }
}

/// Uncompressed graphs agree too, across partition counts (including
/// chunk counts that do not divide the gradient evenly).
#[test]
fn uncompressed_bit_identical_across_partitions() {
    let sizes = [997usize];
    let nodes = 4;
    let grads = workers(nodes, &sizes);
    let flows = gradient_flows(&grads);
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for partitions in [1usize, 3, 7] {
            let iter = spec(&sizes, Algorithm::None, partitions);
            let cluster = ClusterConfig::ec2(nodes);
            let graph = strategy.build(&cluster, &iter).unwrap();
            let sim = interpret(&graph, nodes, &flows, None, 0).unwrap();
            let rt = run(&graph, nodes, &flows, None, 0, &RuntimeConfig::default()).unwrap();
            for (a, b) in sim.iter().zip(&rt.flows) {
                assert_eq!(
                    a.per_node, b.per_node,
                    "{strategy:?} K={partitions} diverged"
                );
            }
        }
    }
}

/// Repeated thread-backend runs are deterministic: scheduling freedom
/// must never leak into the installed parameters.
#[test]
fn thread_backend_is_run_to_run_deterministic() {
    let sizes = [4096usize];
    let nodes = 4;
    let grads = workers(nodes, &sizes);
    let flows = gradient_flows(&grads);
    let iter = spec(&sizes, Algorithm::TernGrad { bitwidth: 2 }, 4);
    let cluster = ClusterConfig::ec2(nodes);
    let c = Algorithm::TernGrad { bitwidth: 2 }.build().unwrap();
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        let graph = strategy.build(&cluster, &iter).unwrap();
        let first = run(
            &graph,
            nodes,
            &flows,
            Some(c.as_ref()),
            9,
            &RuntimeConfig::default(),
        )
        .unwrap();
        for _ in 0..5 {
            let again = run(
                &graph,
                nodes,
                &flows,
                Some(c.as_ref()),
                9,
                &RuntimeConfig::default(),
            )
            .unwrap();
            for (a, b) in first.flows.iter().zip(&again.flows) {
                assert_eq!(a.per_node, b.per_node, "{strategy:?} nondeterministic");
            }
        }
    }
}

//! The chaos property harness — the correctness gate for the
//! fault-tolerant engine.
//!
//! Three properties, checked across the full algorithm × strategy
//! matrix and many fault-plan seeds:
//!
//! 1. **Recoverable plans are invisible.** Any plan whose fault cap
//!    is below the retry budget (drops, duplicates, reorders, delays,
//!    corruption — no crashes) yields bit-for-bit the fault-free
//!    result.
//! 2. **Corruption is always caught.** A flipped payload bit never
//!    reaches a gradient: the checksum rejects it, the nack recovers
//!    it.
//! 3. **Unrecoverable plans fail clean.** Crashes and black holes
//!    produce a structured `SyncFailure` naming the diagnosing node
//!    (and peer/task where known) within the deadline bound — no
//!    deadlocks, no panics, no hangs.

use hipress_chaos::FaultPlan;
use hipress_compress::Algorithm;
use hipress_core::interp::gradient_flows;
use hipress_core::plan::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
use hipress_core::{ClusterConfig, Strategy};
use hipress_runtime::{
    run, run_chaos, DegradeAction, DegradePolicy, FaultTolerance, Instruments, RunOutcome,
    RuntimeConfig, RuntimeReport,
};
use hipress_tensor::synth::{generate, GradientShape};
use hipress_tensor::Tensor;
use hipress_trace::Tracer;
use hipress_util::{Error, SyncFailureKind};
use std::time::{Duration, Instant};

fn worker_grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
    (0..nodes)
        .map(|w| {
            sizes
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::HeavyTailed {
                            std_dev: 1.0,
                            outlier_frac: 0.01,
                            outlier_scale: 20.0,
                        },
                        (w * 37 + g) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

fn iter_spec(sizes: &[usize], alg: Algorithm, partitions: usize) -> IterationSpec {
    IterationSpec {
        gradients: sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| SyncGradient {
                name: format!("g{i}"),
                bytes: (n * 4) as u64,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: !matches!(alg, Algorithm::None),
                    partitions,
                },
            })
            .collect(),
        compression: alg.build().map(|c| CompressionSpec::of(c.as_ref())),
    }
}

/// Test-sized protocol tuning: tight backoffs so unrecoverable plans
/// fail fast, a straggler detector that trips within a few hundred
/// milliseconds of genuine silence.
fn ft(policy: DegradePolicy) -> FaultTolerance {
    FaultTolerance {
        recv_deadline: Duration::from_secs(8),
        retry_budget: 8,
        base_backoff: Duration::from_millis(3),
        max_backoff: Duration::from_millis(100),
        straggler_factor: 4.0,
        straggler_floor: Duration::from_millis(50),
        policy,
    }
}

fn chaos_run(
    strategy: Strategy,
    alg: Algorithm,
    nodes: usize,
    sizes: &[usize],
    seed: u64,
    tolerance: &FaultTolerance,
    plan: &FaultPlan,
) -> hipress_util::Result<RunOutcome> {
    let grads = worker_grads(nodes, sizes);
    let flows = gradient_flows(&grads);
    let iter = iter_spec(sizes, alg, 2);
    let graph = strategy.build(&ClusterConfig::ec2(nodes), &iter).unwrap();
    let c = alg.build();
    run_chaos(
        &graph,
        nodes,
        &flows,
        c.as_deref(),
        seed,
        &RuntimeConfig::default(),
        tolerance,
        plan,
        Instruments::default(),
    )
}

fn fault_free(
    strategy: Strategy,
    alg: Algorithm,
    nodes: usize,
    sizes: &[usize],
    seed: u64,
) -> RunOutcome {
    let grads = worker_grads(nodes, sizes);
    let flows = gradient_flows(&grads);
    let iter = iter_spec(sizes, alg, 2);
    let graph = strategy.build(&ClusterConfig::ec2(nodes), &iter).unwrap();
    let c = alg.build();
    run(
        &graph,
        nodes,
        &flows,
        c.as_deref(),
        seed,
        &RuntimeConfig::default(),
    )
    .unwrap()
}

fn assert_same_params(
    strategy: Strategy,
    alg: Algorithm,
    tag: &str,
    a: &RunOutcome,
    b: &RunOutcome,
) {
    assert_eq!(a.flows.len(), b.flows.len());
    for (x, y) in a.flows.iter().zip(&b.flows) {
        assert_eq!(
            x.per_node, y.per_node,
            "{strategy:?} × {alg:?} × {tag}: chaos run diverged from fault-free"
        );
    }
}

/// Property 1: the full matrix — five algorithms, both strategies,
/// sixteen fault-plan seeds each — survives the lively recoverable
/// preset (drops + duplicates + reorders + delays + corruption)
/// bit-for-bit.
#[test]
fn recoverable_plans_are_bit_identical_across_matrix() {
    let nodes = 3;
    let sizes = [192usize, 96];
    let tolerance = ft(DegradePolicy::Wait);
    let algorithms = [
        Algorithm::OneBit,
        Algorithm::Tbq { tau: 0.05 },
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::Dgc { rate: 0.01 },
        Algorithm::GradDrop { rate: 0.05 },
    ];
    let mut injected = 0u64;
    let mut retried = 0u64;
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for alg in algorithms {
            let clean = fault_free(strategy, alg, nodes, &sizes, 41);
            for plan_seed in 0..16u64 {
                let plan = FaultPlan::recoverable(plan_seed);
                assert!(plan.is_recoverable(tolerance.retry_budget));
                let out = chaos_run(strategy, alg, nodes, &sizes, 41, &tolerance, &plan)
                    .unwrap_or_else(|e| {
                        panic!("{strategy:?} × {alg:?} × seed {plan_seed} failed: {e}")
                    });
                injected += out.report.faults.total_injected();
                retried += out.report.faults.retries;
                assert_same_params(strategy, alg, &format!("seed {plan_seed}"), &clean, &out);
            }
        }
    }
    // The matrix must actually have been lively: faults were injected
    // and the protocol actually recovered some of them.
    assert!(injected > 0, "recoverable preset injected nothing");
    assert!(retried > 0, "no retransmission ever happened");
}

/// Property 1, loss-focused: ~60% first-attempt drop on every link
/// still converges to the exact fault-free bits.
#[test]
fn drop_storm_recovers_exactly() {
    let tolerance = ft(DegradePolicy::Wait);
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        let clean = fault_free(strategy, Algorithm::OneBit, 3, &[256], 7);
        for plan_seed in [1u64, 2, 3, 4] {
            let plan = FaultPlan::drop_storm(plan_seed);
            let out =
                chaos_run(strategy, Algorithm::OneBit, 3, &[256], 7, &tolerance, &plan).unwrap();
            assert!(out.report.faults.injected_drops > 0);
            assert!(out.report.faults.retries > 0);
            assert_same_params(strategy, Algorithm::OneBit, "drop storm", &clean, &out);
        }
    }
}

/// Property 2: heavy payload corruption is always detected by the
/// checksum, nacked, and healed by retransmission — never silently
/// installed.
#[test]
fn corruption_is_always_detected_and_healed() {
    let tolerance = ft(DegradePolicy::Wait);
    let mut detected = 0u64;
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for alg in [Algorithm::None, Algorithm::TernGrad { bitwidth: 2 }] {
            let clean = fault_free(strategy, alg, 3, &[200, 80], 23);
            for plan_seed in [5u64, 6, 7, 8] {
                let plan = FaultPlan::corruption_storm(plan_seed);
                let out = chaos_run(strategy, alg, 3, &[200, 80], 23, &tolerance, &plan).unwrap();
                assert_eq!(
                    out.report.faults.injected_corruptions, out.report.faults.corruptions_detected,
                    "{strategy:?} × {alg:?}: a corrupted payload slipped past the checksum"
                );
                detected += out.report.faults.corruptions_detected;
                assert_same_params(strategy, alg, "corruption storm", &clean, &out);
            }
        }
    }
    assert!(detected > 0, "corruption storm never corrupted anything");
}

/// Property 3: a crashed node produces a structured failure naming a
/// node, well within the deadline bound — never a hang.
#[test]
fn crash_fails_fast_with_structured_error() {
    let tolerance = FaultTolerance {
        recv_deadline: Duration::from_millis(1500),
        ..ft(DegradePolicy::Wait)
    };
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        let plan = FaultPlan::crash(3, 1, 1);
        assert!(!plan.is_recoverable(tolerance.retry_budget));
        let started = Instant::now();
        let err = chaos_run(
            strategy,
            Algorithm::OneBit,
            3,
            &[256],
            11,
            &tolerance,
            &plan,
        )
        .expect_err("a crashed node cannot yield a result");
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(6),
            "{strategy:?}: diagnosis took {elapsed:?}"
        );
        let sync = err.as_sync().unwrap_or_else(|| {
            panic!("{strategy:?}: expected a structured sync failure, got {err}")
        });
        assert!(
            matches!(
                sync.kind,
                SyncFailureKind::RecvTimeout | SyncFailureKind::LinkDead
            ),
            "{strategy:?}: peers should diagnose the silence, got {:?}",
            sync.kind
        );
        // The message names who diagnosed it.
        assert!(err.to_string().contains("node"), "unstructured: {err}");
    }
}

/// Property 3: a black-holed link exhausts the sender's retry budget
/// into a dead-link error (or the receiver's deadline), cleanly.
#[test]
fn blackhole_reports_dead_link() {
    let tolerance = FaultTolerance {
        recv_deadline: Duration::from_millis(1500),
        ..ft(DegradePolicy::Wait)
    };
    let plan = FaultPlan::blackhole(9, 1, 0);
    let started = Instant::now();
    let err = chaos_run(
        Strategy::CaSyncPs,
        Algorithm::OneBit,
        3,
        &[256],
        11,
        &tolerance,
        &plan,
    )
    .expect_err("a black-holed link cannot yield a result");
    assert!(started.elapsed() < Duration::from_secs(6));
    let sync = err.as_sync().expect("structured failure");
    assert!(
        matches!(
            sync.kind,
            SyncFailureKind::LinkDead | SyncFailureKind::RecvTimeout
        ),
        "got {:?}",
        sync.kind
    );
    // Abort echoes must never win root-cause selection.
    assert_ne!(sync.kind, SyncFailureKind::Aborted);
}

/// Straggler policy `Wait`: a stalled node is diagnosed (verdict
/// recorded) but waited out — the result stays bit-exact.
#[test]
fn stall_waited_out_is_bit_exact() {
    let tolerance = ft(DegradePolicy::Wait);
    let clean = fault_free(Strategy::CaSyncPs, Algorithm::OneBit, 3, &[256], 19);
    let plan = FaultPlan::stall(1, 1, Duration::from_millis(400));
    let out = chaos_run(
        Strategy::CaSyncPs,
        Algorithm::OneBit,
        3,
        &[256],
        19,
        &tolerance,
        &plan,
    )
    .unwrap();
    assert_eq!(out.report.faults.injected_stalls, 1);
    assert_same_params(
        Strategy::CaSyncPs,
        Algorithm::OneBit,
        "stall+wait",
        &clean,
        &out,
    );
    assert!(
        out.report
            .faults
            .verdicts
            .iter()
            .any(|v| v.peer == 1 && v.action == DegradeAction::Waited),
        "nobody diagnosed the straggler: {:?}",
        out.report.faults.verdicts
    );
    assert_eq!(out.report.faults.degraded_chunks, 0);
}

/// Straggler policy `Partial`: peers skip the straggler's outstanding
/// contributions, rescale, and complete degraded — fast, no error.
#[test]
fn stall_partial_degrades_and_completes() {
    let tolerance = ft(DegradePolicy::Partial);
    let plan = FaultPlan::stall(2, 1, Duration::from_millis(400));
    let started = Instant::now();
    let out = chaos_run(
        Strategy::CaSyncPs,
        Algorithm::None,
        3,
        &[256],
        19,
        &tolerance,
        &plan,
    )
    .unwrap();
    assert!(started.elapsed() < Duration::from_secs(6));
    assert!(
        out.report.faults.degraded_chunks > 0,
        "partial policy skipped nothing: {:?}",
        out.report.faults
    );
    assert!(out
        .report
        .faults
        .verdicts
        .iter()
        .any(|v| v.peer == 1 && v.action == DegradeAction::Skipped));
}

/// Straggler policy `Abort`: the diagnosis becomes a structured
/// error naming the straggler.
#[test]
fn stall_abort_names_the_straggler() {
    let tolerance = ft(DegradePolicy::Abort);
    let plan = FaultPlan::stall(4, 1, Duration::from_millis(700));
    let err = chaos_run(
        Strategy::CaSyncPs,
        Algorithm::OneBit,
        3,
        &[256],
        19,
        &tolerance,
        &plan,
    )
    .expect_err("abort policy must fail the run");
    let sync = err.as_sync().expect("structured failure");
    assert_eq!(sync.kind, SyncFailureKind::Straggler);
    assert_eq!(sync.peer, Some(1), "wrong straggler named: {err}");
}

/// The fault-free envelope path (a `none` plan) matches the fast path
/// bit-for-bit and injects nothing — the overhead bench's premise.
#[test]
fn envelope_path_with_no_faults_matches_fast_path() {
    let tolerance = ft(DegradePolicy::Wait);
    for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for alg in [Algorithm::None, Algorithm::Dgc { rate: 0.01 }] {
            let clean = fault_free(strategy, alg, 4, &[300, 64], 29);
            let out = chaos_run(
                strategy,
                alg,
                4,
                &[300, 64],
                29,
                &tolerance,
                &FaultPlan::none(0),
            )
            .unwrap();
            // Nothing injected, nothing corrupted, nothing degraded.
            // Retries stay legal: a busy receiver acking late may
            // trigger a (harmless) spurious retransmission.
            assert_eq!(out.report.faults.total_injected(), 0);
            assert_eq!(out.report.faults.corruptions_detected, 0);
            assert_eq!(out.report.faults.degraded_chunks, 0);
            assert_same_params(strategy, alg, "no faults", &clean, &out);
        }
    }
}

/// Chaos runs are observable end to end: the trace carries the
/// injection/recovery instants and `RuntimeReport::from_trace`
/// rebuilds the same fault section the engine accumulated.
#[test]
fn fault_events_round_trip_through_the_trace() {
    let grads = worker_grads(3, &[200, 80]);
    let flows = gradient_flows(&grads);
    let iter = iter_spec(&[200, 80], Algorithm::OneBit, 2);
    let graph = Strategy::CaSyncPs
        .build(&ClusterConfig::ec2(3), &iter)
        .unwrap();
    let c = Algorithm::OneBit.build().unwrap();
    let tracer = Tracer::new("casync-chaos");
    let out = run_chaos(
        &graph,
        3,
        &flows,
        Some(c.as_ref()),
        31,
        &RuntimeConfig::default(),
        &ft(DegradePolicy::Wait),
        &FaultPlan::recoverable(12),
        Instruments {
            tracer: Some(&tracer),
            metrics: None,
            progress: None,
        },
    )
    .unwrap();
    let trace = tracer.finish();
    assert!(out.report.faults.total_injected() > 0);
    assert!(trace.events_of("chaos").count() > 0, "no chaos instants");
    let derived = RuntimeReport::from_trace(&trace);
    assert_eq!(
        derived.faults, out.report.faults,
        "trace-derived fault section diverged"
    );
}

/// Sanity for the facade's error surface: a non-sync error (malformed
/// input) is reported as-is, not wrapped into a sync failure.
#[test]
fn malformed_input_errors_are_not_sync_failures() {
    let grads = worker_grads(2, &[64]);
    let flows = gradient_flows(&grads);
    let iter = iter_spec(&[64], Algorithm::None, 1);
    let graph = Strategy::CaSyncPs
        .build(&ClusterConfig::ec2(2), &iter)
        .unwrap();
    // Wrong node count for the graph: rejected before any thread runs.
    let err = run_chaos(
        &graph,
        3,
        &flows,
        None,
        0,
        &RuntimeConfig::default(),
        &ft(DegradePolicy::Wait),
        &FaultPlan::none(0),
        Instruments::default(),
    )
    .expect_err("mismatched node count must be rejected");
    assert!(err.as_sync().is_none(), "wrongly classified: {err}");
    let _ = Error::sim("type-check that Error is in scope");
}

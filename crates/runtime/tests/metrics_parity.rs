//! Metrics/report parity for the instrumented thread engine.
//!
//! For every compression algorithm on both CaSync strategies, an
//! instrumented run must produce a metrics snapshot that agrees with
//! the independently accumulated [`RuntimeReport`] *exactly*: the
//! engine feeds each task's single measured duration to both the
//! report counters and the metric histograms, so every shared
//! quantity — per-primitive counts and busy times, wire volume,
//! messages, batch launches, wall time, compression savings — must
//! match. A trace recorded in the same run, lowered through
//! `hipress_metrics::bridge`, must land on the same per-primitive
//! totals (the three-way check: report == live metrics == trace
//! lowering).

use hipress_compress::Algorithm;
use hipress_core::interp::gradient_flows;
use hipress_core::plan::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
use hipress_core::{ClusterConfig, Strategy};
use hipress_metrics::{bridge, names, MetricValue, MetricsSnapshot, Registry};
use hipress_runtime::{run_instrumented, Instruments, RuntimeConfig, RuntimeReport};
use hipress_tensor::synth::{generate, GradientShape};
use hipress_tensor::Tensor;
use hipress_trace::Tracer;

fn worker_grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
    (0..nodes)
        .map(|w| {
            sizes
                .iter()
                .enumerate()
                .map(|(g, &n)| {
                    generate(
                        n,
                        GradientShape::Gaussian { std_dev: 1.0 },
                        (w * 1000 + g) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

fn iter_spec(sizes: &[usize], alg: Algorithm, partitions: usize) -> IterationSpec {
    IterationSpec {
        gradients: sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| SyncGradient {
                name: format!("g{i}"),
                bytes: (n * 4) as u64,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: !matches!(alg, Algorithm::None),
                    partitions,
                },
            })
            .collect(),
        compression: alg.build().map(|c| CompressionSpec::of(c.as_ref())),
    }
}

fn gauge(snap: &MetricsSnapshot, name: &str) -> f64 {
    snap.iter()
        .find(|(k, _)| k.name == name)
        .map(|(_, v)| v.scalar())
        .unwrap_or_else(|| panic!("gauge {name} missing from snapshot"))
}

fn assert_snapshot_matches_report(snap: &MetricsSnapshot, report: &RuntimeReport, ctx: &str) {
    use hipress_core::Primitive;
    let prims = [
        Primitive::Source,
        Primitive::Encode,
        Primitive::Decode,
        Primitive::Merge,
        Primitive::Send,
        Primitive::Recv,
        Primitive::Update,
        Primitive::Barrier,
    ];
    for (i, p) in prims.into_iter().enumerate() {
        let stat = report.prim(p);
        let (count, sum) = snap.hist_totals(names::PRIM_NS[i]);
        assert_eq!(count, stat.count, "{ctx}: {} count", names::PRIM_NS[i]);
        assert_eq!(sum, stat.busy_ns, "{ctx}: {} busy", names::PRIM_NS[i]);
    }
    let (_, local_agg) = snap.hist_totals(names::LOCAL_AGG_NS);
    assert_eq!(local_agg, report.local_agg_ns, "{ctx}: local_agg");
    assert_eq!(
        snap.total_counter(names::BYTES_WIRE),
        report.bytes_wire,
        "{ctx}: bytes_wire"
    );
    assert_eq!(
        snap.total_counter(names::BYTES_RAW),
        report.bytes_raw,
        "{ctx}: bytes_raw"
    );
    assert_eq!(
        snap.total_counter(names::MESSAGES),
        report.messages,
        "{ctx}: messages"
    );
    assert_eq!(
        snap.total_counter(names::COMP_BATCH_LAUNCHES),
        report.comp_batch_launches,
        "{ctx}: batch launches"
    );
}

#[test]
fn instrumented_matrix_metrics_match_report() {
    let nodes = 3;
    let sizes = [768usize, 96];
    let grads = worker_grads(nodes, &sizes);
    let flows = gradient_flows(&grads);
    let cluster = ClusterConfig::ec2(nodes);
    let algorithms = [
        Algorithm::OneBit,
        Algorithm::Tbq { tau: 0.05 },
        Algorithm::TernGrad { bitwidth: 2 },
        Algorithm::Dgc { rate: 0.05 },
        Algorithm::GradDrop { rate: 0.05 },
    ];
    for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
        for alg in algorithms {
            let ctx = format!("{strat:?}/{}", alg.label());
            let iter = iter_spec(&sizes, alg, 2);
            let graph = strat.build(&cluster, &iter).unwrap();
            let c = alg.build().unwrap();

            let registry = Registry::new();
            let scope = registry.scope(&[("strategy", "casync"), ("algorithm", &alg.label())]);
            let tracer = Tracer::new("casync-rt");
            let out = run_instrumented(
                &graph,
                nodes,
                &flows,
                Some(c.as_ref()),
                7,
                &RuntimeConfig::default(),
                Instruments {
                    tracer: Some(&tracer),
                    metrics: Some(&scope),
                    progress: None,
                },
            )
            .unwrap();
            let snap = registry.snapshot();
            assert_snapshot_matches_report(&snap, &out.report, &ctx);

            // Run-level gauges agree with the report's own figures.
            assert_eq!(
                gauge(&snap, names::WALL_NS),
                out.report.wall_ns as f64,
                "{ctx}"
            );
            assert_eq!(gauge(&snap, names::NODES), nodes as f64, "{ctx}");
            let savings = gauge(&snap, names::COMPRESSION_SAVINGS);
            assert!(
                (savings - out.report.compression_savings()).abs() < 1e-9,
                "{ctx}: savings {savings} vs {}",
                out.report.compression_savings()
            );
            let iter_series = snap
                .iter()
                .find(|(k, _)| k.name == names::ITERATION_NS)
                .map(|(_, v)| v.clone())
                .unwrap();
            match iter_series {
                MetricValue::Series(pts) => {
                    assert_eq!(pts.len(), 1, "{ctx}: one iteration, one sample");
                    assert_eq!(pts[0].1, out.report.wall_ns as f64, "{ctx}");
                }
                other => panic!("{ctx}: iteration_ns should be a series, got {other:?}"),
            }

            // Third leg: lowering the trace recorded in the very same
            // run reproduces the same totals.
            let lowered = Registry::new();
            bridge::record_trace(&tracer.finish(), &lowered.root());
            assert_snapshot_matches_report(&lowered.snapshot(), &out.report, &ctx);
        }
    }
}

/// Every metric the engine records carries the scope's run labels, and
/// per-node quantities carry `node` on top.
#[test]
fn engine_metrics_carry_scope_and_node_labels() {
    let nodes = 2;
    let sizes = [256usize];
    let grads = worker_grads(nodes, &sizes);
    let flows = gradient_flows(&grads);
    let cluster = ClusterConfig::ec2(nodes);
    let iter = iter_spec(&sizes, Algorithm::OneBit, 1);
    let graph = Strategy::CaSyncPs.build(&cluster, &iter).unwrap();
    let c = Algorithm::OneBit.build().unwrap();
    let registry = Registry::new();
    let scope = registry.scope(&[("algorithm", "onebit"), ("model", "unit")]);
    run_instrumented(
        &graph,
        nodes,
        &flows,
        Some(c.as_ref()),
        3,
        &RuntimeConfig::default(),
        Instruments {
            tracer: None,
            metrics: Some(&scope),
            progress: None,
        },
    )
    .unwrap();
    let snap = registry.snapshot();
    assert!(!snap.is_empty());
    for key in snap.keys() {
        assert_eq!(key.labels.get("algorithm"), Some("onebit"), "{key}");
        assert_eq!(key.labels.get("model"), Some("unit"), "{key}");
    }
    let encode_nodes: Vec<&str> = snap
        .keys()
        .filter(|k| k.name == names::PRIM_NS[1])
        .filter_map(|k| k.labels.get("node"))
        .collect();
    assert_eq!(encode_nodes, vec!["0", "1"]);
    // Queue occupancy was observed on both queues.
    assert!(snap.hist_totals(names::Q_COMP_DEPTH).0 > 0);
    assert!(snap.hist_totals(names::Q_COMMU_DEPTH).0 > 0);
}

//! Wall-clock execution reports for the thread runtime.
//!
//! Unlike [`hipress_core::ExecStats`] — which reports *simulated*
//! nanoseconds derived from cost models — everything in a
//! [`RuntimeReport`] is measured with `std::time::Instant` on real
//! hardware: how long the eight primitives actually took, how many
//! bytes actually crossed the channel fabric, and how that compares
//! to an uncompressed run.
//!
//! When tracing is enabled the engine records every one of these
//! measurements into a [`hipress_trace::Trace`] as well, and
//! [`RuntimeReport::from_trace`] re-derives the full report from the
//! trace alone. The two paths share each task's single measured
//! duration, so the derived report is *equal* to the accumulated one —
//! the cross-check that keeps the trace honest.

use hipress_core::Primitive;
use hipress_trace::Trace;
use hipress_util::table::{Align, Table};
use hipress_util::units::fmt_duration_ns;
use std::fmt;

/// Count and cumulative busy time for one primitive kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimStat {
    /// Number of task executions.
    pub count: u64,
    /// Total wall-clock busy nanoseconds across all nodes.
    pub busy_ns: u64,
}

impl PrimStat {
    /// Accumulates another stat into this one.
    pub fn absorb(&mut self, other: PrimStat) {
        self.count += other.count;
        self.busy_ns += other.busy_ns;
    }

    /// Records one execution of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.busy_ns += ns;
    }
}

/// The primitive kinds in report/display order, paired with the span
/// category names the tracing engine uses for them.
const PRIMS: [(Primitive, &str); 8] = [
    (Primitive::Source, "source"),
    (Primitive::Encode, "encode"),
    (Primitive::Decode, "decode"),
    (Primitive::Merge, "merge"),
    (Primitive::Send, "send"),
    (Primitive::Recv, "recv"),
    (Primitive::Update, "update"),
    (Primitive::Barrier, "barrier"),
];

/// What a degradation policy did about one diagnosed straggler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// The policy kept waiting (the verdict is informational).
    Waited,
    /// The peer's outstanding contributions were skipped and the
    /// aggregates rescaled (bounded-staleness partial aggregation).
    Skipped,
    /// The run was aborted with a structured straggler error.
    Aborted,
}

impl fmt::Display for DegradeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradeAction::Waited => "waited",
            DegradeAction::Skipped => "skipped",
            DegradeAction::Aborted => "aborted",
        })
    }
}

/// One straggler diagnosis: `node` waited `waited_ns` on `peer`
/// before the policy acted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StragglerVerdict {
    /// The node that diagnosed the straggler.
    pub node: usize,
    /// The peer diagnosed as straggling.
    pub peer: usize,
    /// How long `node` had been waiting when the detector tripped.
    pub waited_ns: u64,
    /// What the degradation policy did.
    pub action: DegradeAction,
}

/// Fault-injection and recovery accounting for one run: what the
/// chaos layer injected, what the protocol detected and repaired, and
/// what the degradation policy decided. All-zero (and displayed as
/// nothing) for fast-path runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Messages the fault plan silently dropped.
    pub injected_drops: u64,
    /// Messages the fault plan delivered twice.
    pub injected_dups: u64,
    /// Messages the fault plan held back for reordering.
    pub injected_reorders: u64,
    /// Messages the fault plan delayed.
    pub injected_delays: u64,
    /// Payloads the fault plan flipped a bit in.
    pub injected_corruptions: u64,
    /// Node stalls the fault plan triggered.
    pub injected_stalls: u64,
    /// Timer-driven retransmissions (dropped data or dropped acks).
    pub retries: u64,
    /// Nacks sent for corrupt arrivals (each triggers a fast
    /// retransmission at the sender).
    pub nacks: u64,
    /// Intact arrivals discarded by receiver-side dedup (injected
    /// duplicates, redundant retransmissions, late post-skip data).
    pub duplicates_ignored: u64,
    /// Corrupt arrivals caught by checksum verification. Every
    /// injected corruption that reaches a receiver lands here.
    pub corruptions_detected: u64,
    /// Chunk contributions skipped by the degradation policy.
    pub degraded_chunks: u64,
    /// Per-node straggler diagnoses and what was done about them.
    pub verdicts: Vec<StragglerVerdict>,
}

impl FaultReport {
    /// True when nothing was injected, detected, or degraded — the
    /// report of every fast-path run.
    pub fn is_empty(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Merges a per-node fault report into this aggregate.
    pub fn absorb(&mut self, other: &FaultReport) {
        self.injected_drops += other.injected_drops;
        self.injected_dups += other.injected_dups;
        self.injected_reorders += other.injected_reorders;
        self.injected_delays += other.injected_delays;
        self.injected_corruptions += other.injected_corruptions;
        self.injected_stalls += other.injected_stalls;
        self.retries += other.retries;
        self.nacks += other.nacks;
        self.duplicates_ignored += other.duplicates_ignored;
        self.corruptions_detected += other.corruptions_detected;
        self.degraded_chunks += other.degraded_chunks;
        self.verdicts.extend(other.verdicts.iter().copied());
    }

    /// Total faults the plan injected on this run's links and nodes.
    pub fn total_injected(&self) -> u64 {
        self.injected_drops
            + self.injected_dups
            + self.injected_reorders
            + self.injected_delays
            + self.injected_corruptions
            + self.injected_stalls
    }
}

/// One entry in an elastic run's membership timeline: epoch `epoch`
/// began at global iteration `from_iter` over exactly `members`.
/// Epoch 0 (the initial membership) is always present on elastic
/// runs; every later entry is a bump — an eviction or a re-admission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochRecord {
    /// The membership epoch number (0 = initial).
    pub epoch: u64,
    /// The first global iteration executed under this epoch.
    pub from_iter: u64,
    /// The global ranks that were members during this epoch,
    /// ascending.
    pub members: Vec<u32>,
}

/// Measured wall-clock statistics for one runtime execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeReport {
    /// Number of node threads that executed the graph.
    pub nodes: usize,
    /// End-to-end wall-clock time (spawn to last join), ns.
    pub wall_ns: u64,
    /// Per-primitive execution statistics, summed across nodes.
    pub source: PrimStat,
    /// Encode (compression kernel) statistics.
    pub encode: PrimStat,
    /// Decode (decompression kernel) statistics.
    pub decode: PrimStat,
    /// Merge (aggregation) statistics.
    pub merge: PrimStat,
    /// Send statistics (payload extraction + channel push).
    pub send: PrimStat,
    /// Recv statistics (payload hand-off).
    pub recv: PrimStat,
    /// Update (parameter install) statistics.
    pub update: PrimStat,
    /// Barrier statistics (dependency joins; near-zero cost but
    /// counted in their own bucket so plan structure is visible).
    pub barrier: PrimStat,
    /// Time spent summing local replica gradients (local aggregation,
    /// §3.1); zero when every node holds a single replica.
    pub local_agg_ns: u64,
    /// Bytes actually moved through the channel fabric.
    pub bytes_wire: u64,
    /// Bytes the same sends would have moved uncompressed.
    pub bytes_raw: u64,
    /// Messages delivered between node threads.
    pub messages: u64,
    /// Batched codec launches performed (batch compression, §3.2).
    pub comp_batch_launches: u64,
    /// Per-node total busy ns (all primitives).
    pub per_node_busy_ns: Vec<u64>,
    /// Fault injection and recovery accounting; all-zero on the fast
    /// path (no plan, no envelopes, nothing to report).
    pub faults: FaultReport,
    /// Data frames the transport fabric sent. Zero when the run moved
    /// messages by value (the in-process channel fabric).
    pub fabric_frames: u64,
    /// Bytes of encoded frames the fabric sent, headers included.
    pub fabric_bytes_framed: u64,
    /// Bytes of application payload inside those frames (the framing
    /// overhead is the difference to `fabric_bytes_framed`).
    pub fabric_bytes_payload: u64,
    /// Frame retransmissions the fabric's reliability layer performed.
    pub fabric_retransmits: u64,
    /// Synchronization iterations this run executed; zero outside the
    /// pipelined path (the fast path is always one iteration and does
    /// not count it).
    pub iterations: u64,
    /// Bound on concurrently in-flight iterations (1 = serial).
    pub pipeline_window: u64,
    /// Summed per-node spans from each node's first task of any
    /// iteration to its last, ns. With pipelining, overlapping
    /// iterations make this exceed `nodes × wall_ns` — see
    /// [`RuntimeReport::pipeline_overlap`]. Zero outside the
    /// pipelined path.
    pub iter_span_ns_total: u64,
    /// Elastic membership timeline, one record per epoch (coordinator
    /// owned, like `nodes` and `wall_ns`; `absorb` ignores it). Empty
    /// on fixed-membership runs; `membership.len() - 1` is the number
    /// of epoch bumps the run survived.
    pub membership: Vec<EpochRecord>,
    /// Global ranks evicted by an epoch bump, in eviction order
    /// (coordinator owned). A rank that died, rejoined, and died
    /// again appears twice.
    pub evicted: Vec<u32>,
}

impl RuntimeReport {
    /// The stat bucket for a primitive kind.
    pub fn prim(&self, p: Primitive) -> &PrimStat {
        match p {
            Primitive::Source => &self.source,
            Primitive::Encode => &self.encode,
            Primitive::Decode => &self.decode,
            Primitive::Merge => &self.merge,
            Primitive::Send => &self.send,
            Primitive::Recv => &self.recv,
            Primitive::Update => &self.update,
            Primitive::Barrier => &self.barrier,
        }
    }

    /// Mutable access to the stat bucket for a primitive kind.
    pub(crate) fn prim_mut(&mut self, p: Primitive) -> &mut PrimStat {
        match p {
            Primitive::Source => &mut self.source,
            Primitive::Encode => &mut self.encode,
            Primitive::Decode => &mut self.decode,
            Primitive::Merge => &mut self.merge,
            Primitive::Send => &mut self.send,
            Primitive::Recv => &mut self.recv,
            Primitive::Update => &mut self.update,
            Primitive::Barrier => &mut self.barrier,
        }
    }

    /// Merges a per-node report into this aggregate.
    pub fn absorb(&mut self, other: &RuntimeReport) {
        for (p, _) in PRIMS {
            self.prim_mut(p).absorb(*other.prim(p));
        }
        self.local_agg_ns += other.local_agg_ns;
        self.bytes_wire += other.bytes_wire;
        self.bytes_raw += other.bytes_raw;
        self.messages += other.messages;
        self.comp_batch_launches += other.comp_batch_launches;
        self.faults.absorb(&other.faults);
        self.fabric_frames += other.fabric_frames;
        self.fabric_bytes_framed += other.fabric_bytes_framed;
        self.fabric_bytes_payload += other.fabric_bytes_payload;
        self.fabric_retransmits += other.fabric_retransmits;
        self.iter_span_ns_total += other.iter_span_ns_total;
    }

    /// Re-derives a full report from a trace recorded by the engine.
    ///
    /// Every quantity maps to trace structure: primitive buckets from
    /// span categories, wire volume from `send` span arguments,
    /// messages from `fabric` instants, batched launches from `batch`
    /// instants, wall time and node count from the `run` span, and
    /// per-node busy time from each `node{i}` track's primitive spans.
    /// Because the engine feeds each task's single measured duration
    /// to both the counters and the trace, the derived report equals
    /// the accumulated one exactly.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut r = RuntimeReport::default();
        for (p, cat) in PRIMS {
            let s = r.prim_mut(p);
            for e in trace.events_of(cat) {
                s.record(e.dur_ns);
            }
        }
        for e in trace.events_of("local_agg") {
            r.local_agg_ns += e.dur_ns;
        }
        for e in trace.events_of("send") {
            r.bytes_wire += e.arg("bytes_wire").unwrap_or(0);
            r.bytes_raw += e.arg("bytes_raw").unwrap_or(0);
        }
        r.messages = trace.events_of("fabric").count() as u64;
        r.comp_batch_launches = trace.events_of("batch").count() as u64;
        for e in trace.events_of("link") {
            r.fabric_frames += e.arg("frames").unwrap_or(0);
            r.fabric_bytes_framed += e.arg("bytes_framed").unwrap_or(0);
            r.fabric_bytes_payload += e.arg("bytes_payload").unwrap_or(0);
            r.fabric_retransmits += e.arg("retransmits").unwrap_or(0);
        }
        for e in trace.events_of("iter_span") {
            r.iter_span_ns_total += e.dur_ns;
        }
        for e in trace.events_of("chaos") {
            match e.name.as_str() {
                "drop" => r.faults.injected_drops += 1,
                "dup" => r.faults.injected_dups += 1,
                "reorder" => r.faults.injected_reorders += 1,
                "delay" => r.faults.injected_delays += 1,
                "corrupt" => r.faults.injected_corruptions += 1,
                "stall" => r.faults.injected_stalls += 1,
                _ => {}
            }
        }
        for e in trace.events_of("ft") {
            match e.name.as_str() {
                "retry" => r.faults.retries += 1,
                "nack" => r.faults.nacks += 1,
                "dup_ignored" => r.faults.duplicates_ignored += 1,
                "corrupt_detected" => r.faults.corruptions_detected += 1,
                "skip" => r.faults.degraded_chunks += 1,
                _ => {}
            }
        }
        for e in trace.events_of("straggler") {
            let action = match e.name.as_str() {
                "waited" => DegradeAction::Waited,
                "skipped" => DegradeAction::Skipped,
                "aborted" => DegradeAction::Aborted,
                _ => continue,
            };
            r.faults.verdicts.push(StragglerVerdict {
                node: e.arg("node").unwrap_or(0) as usize,
                peer: e.arg("peer").unwrap_or(0) as usize,
                waited_ns: e.arg("waited_ns").unwrap_or(0),
                action,
            });
        }
        for e in trace.events_of("membership") {
            match e.name.as_str() {
                "epoch" => {
                    // Member sets travel as a rank bitmask (one u64
                    // arg), which caps trace-carried membership at 64
                    // ranks — far beyond the loopback mesh's scale.
                    let mask = e.arg("members_mask").unwrap_or(0);
                    r.membership.push(EpochRecord {
                        epoch: e.arg("epoch").unwrap_or(0),
                        from_iter: e.arg("from_iter").unwrap_or(0),
                        members: (0..64u32).filter(|b| (mask >> b) & 1 == 1).collect(),
                    });
                }
                "evict" => r.evicted.push(e.arg("rank").unwrap_or(0) as u32),
                _ => {}
            }
        }
        if let Some(run) = trace.events_of("run").next() {
            r.wall_ns = run.dur_ns;
            r.nodes = run.arg("nodes").unwrap_or(0) as usize;
            r.iterations = run.arg("iterations").unwrap_or(0);
            r.pipeline_window = run.arg("window").unwrap_or(0);
        }
        if r.nodes == 0 {
            // No run span (foreign trace): count node tracks instead.
            r.nodes = trace
                .tracks()
                .iter()
                .filter(|t| t.name.starts_with("node") && !t.name.contains('/'))
                .count();
        }
        r.per_node_busy_ns = (0..r.nodes)
            .map(|node| {
                trace
                    .find_track(&format!("node{node}"))
                    .map(|id| {
                        trace
                            .track(id)
                            .events
                            .iter()
                            .filter(|e| PRIMS.iter().any(|(_, c)| e.category == *c))
                            .map(|e| e.dur_ns)
                            .sum()
                    })
                    .unwrap_or(0)
            })
            .collect();
        r
    }

    /// Renders the full report as one JSON object — the payload the
    /// live telemetry server's `/report.json` endpoint serves. The
    /// exhaustive destructuring (no `..`) makes adding a report field
    /// without extending this rendering a *compile* error, exactly
    /// like the process backend's control-channel codec. Two derived
    /// ratios (`compression_savings`, `pipeline_overlap`) ride along
    /// so scrapers don't have to re-implement them.
    pub fn to_json(&self) -> String {
        let RuntimeReport {
            nodes,
            wall_ns,
            source,
            encode,
            decode,
            merge,
            send,
            recv,
            update,
            barrier,
            local_agg_ns,
            bytes_wire,
            bytes_raw,
            messages,
            comp_batch_launches,
            per_node_busy_ns,
            faults,
            fabric_frames,
            fabric_bytes_framed,
            fabric_bytes_payload,
            fabric_retransmits,
            iterations,
            pipeline_window,
            iter_span_ns_total,
            membership,
            evicted,
        } = self;
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!("\"nodes\":{nodes},\"wall_ns\":{wall_ns}"));
        for ((p, name), s) in PRIMS
            .iter()
            .zip([source, encode, decode, merge, send, recv, update, barrier])
        {
            debug_assert_eq!(self.prim(*p), s, "PRIMS order drifted from fields");
            out.push_str(&format!(
                ",\"{name}\":{{\"count\":{},\"busy_ns\":{}}}",
                s.count, s.busy_ns
            ));
        }
        for (name, v) in [
            ("local_agg_ns", local_agg_ns),
            ("bytes_wire", bytes_wire),
            ("bytes_raw", bytes_raw),
            ("messages", messages),
            ("comp_batch_launches", comp_batch_launches),
        ] {
            out.push_str(&format!(",\"{name}\":{v}"));
        }
        out.push_str(",\"per_node_busy_ns\":[");
        for (i, b) in per_node_busy_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push(']');
        let FaultReport {
            injected_drops,
            injected_dups,
            injected_reorders,
            injected_delays,
            injected_corruptions,
            injected_stalls,
            retries,
            nacks,
            duplicates_ignored,
            corruptions_detected,
            degraded_chunks,
            verdicts,
        } = faults;
        out.push_str(",\"faults\":{");
        for (i, (name, v)) in [
            ("injected_drops", injected_drops),
            ("injected_dups", injected_dups),
            ("injected_reorders", injected_reorders),
            ("injected_delays", injected_delays),
            ("injected_corruptions", injected_corruptions),
            ("injected_stalls", injected_stalls),
            ("retries", retries),
            ("nacks", nacks),
            ("duplicates_ignored", duplicates_ignored),
            ("corruptions_detected", corruptions_detected),
            ("degraded_chunks", degraded_chunks),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str(",\"verdicts\":[");
        for (i, v) in verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"peer\":{},\"waited_ns\":{},\"action\":\"{}\"}}",
                v.node, v.peer, v.waited_ns, v.action
            ));
        }
        out.push_str("]}");
        for (name, v) in [
            ("fabric_frames", fabric_frames),
            ("fabric_bytes_framed", fabric_bytes_framed),
            ("fabric_bytes_payload", fabric_bytes_payload),
            ("fabric_retransmits", fabric_retransmits),
            ("iterations", iterations),
            ("pipeline_window", pipeline_window),
            ("iter_span_ns_total", iter_span_ns_total),
        ] {
            out.push_str(&format!(",\"{name}\":{v}"));
        }
        out.push_str(",\"membership\":[");
        for (i, m) in membership.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"epoch\":{},\"from_iter\":{},\"members\":[{}]}}",
                m.epoch,
                m.from_iter,
                m.members
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out.push_str("],\"evicted\":[");
        for (i, rk) in evicted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&rk.to_string());
        }
        out.push(']');
        out.push_str(&format!(
            ",\"compression_savings\":{:.6},\"pipeline_overlap\":{:.6}}}",
            self.compression_savings(),
            self.pipeline_overlap()
        ));
        out
    }

    /// Wire-volume reduction factor: raw bytes divided by bytes
    /// actually moved (1.0 when nothing was compressed).
    pub fn compression_savings(&self) -> f64 {
        if self.bytes_wire == 0 {
            return 1.0;
        }
        self.bytes_raw as f64 / self.bytes_wire as f64
    }

    /// Wall-clock speedup of this run relative to `baseline`
    /// (> 1.0 means this run was faster).
    pub fn speedup_vs(&self, baseline: &RuntimeReport) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        baseline.wall_ns as f64 / self.wall_ns as f64
    }

    /// Total busy time across primitives and nodes.
    pub fn total_busy_ns(&self) -> u64 {
        PRIMS.iter().map(|&(p, _)| self.prim(p).busy_ns).sum()
    }

    /// How much iteration time the pipeline hid, in `[0, 1)`: the
    /// fraction by which the summed per-node iteration spans exceed
    /// the elapsed node-time `nodes × wall_ns`. Serial execution
    /// (window 1, or no pipelining at all) yields ~0 because
    /// iteration spans tile the wall clock; an overlapping window
    /// stacks spans on top of each other and pushes the ratio up.
    pub fn pipeline_overlap(&self) -> f64 {
        if self.iter_span_ns_total == 0 {
            return 0.0;
        }
        let elapsed = self.nodes as f64 * self.wall_ns as f64;
        (1.0 - elapsed / self.iter_span_ns_total as f64).max(0.0)
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RuntimeReport: {} node threads, wall {}",
            self.nodes,
            fmt_duration_ns(self.wall_ns)
        )?;
        let mut table = Table::new(&[
            ("primitive", Align::Left),
            ("count", Align::Right),
            ("busy", Align::Right),
        ]);
        for (p, name) in PRIMS {
            let s = self.prim(p);
            if s.count > 0 {
                table.row(vec![
                    name.to_string(),
                    s.count.to_string(),
                    fmt_duration_ns(s.busy_ns),
                ]);
            }
        }
        f.write_str(&table.render_indented("  "))?;
        if self.local_agg_ns > 0 {
            writeln!(
                f,
                "  local aggregation: {}",
                fmt_duration_ns(self.local_agg_ns)
            )?;
        }
        writeln!(
            f,
            "  wire: {} moved ({} raw equivalent, {:.1}x reduction), {} messages",
            fmt_bytes(self.bytes_wire),
            fmt_bytes(self.bytes_raw),
            self.compression_savings(),
            self.messages
        )?;
        if self.comp_batch_launches > 0 {
            writeln!(f, "  batched codec launches: {}", self.comp_batch_launches)?;
        }
        if self.fabric_frames > 0 {
            writeln!(f, "  fabric:")?;
            let mut table = Table::new(&[("counter", Align::Left), ("value", Align::Right)]);
            table.row(vec!["frames sent".into(), self.fabric_frames.to_string()]);
            if self.fabric_bytes_framed > 0 {
                table.row(vec![
                    "bytes framed".into(),
                    fmt_bytes(self.fabric_bytes_framed),
                ]);
                table.row(vec![
                    "bytes payload".into(),
                    fmt_bytes(self.fabric_bytes_payload),
                ]);
            }
            if self.fabric_retransmits > 0 {
                table.row(vec![
                    "retransmissions".into(),
                    self.fabric_retransmits.to_string(),
                ]);
            }
            f.write_str(&table.render_indented("    "))?;
        }
        if self.iterations > 1 {
            writeln!(
                f,
                "  pipeline: {} iterations, window {}, overlap {:.0}%",
                self.iterations,
                self.pipeline_window,
                self.pipeline_overlap() * 100.0
            )?;
        }
        if !self.membership.is_empty() {
            writeln!(
                f,
                "  membership: {} epoch(s), {} eviction(s){}",
                self.membership.len(),
                self.evicted.len(),
                if self.evicted.is_empty() {
                    String::new()
                } else {
                    format!(
                        " (rank(s) {})",
                        self.evicted
                            .iter()
                            .map(u32::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            )?;
            let mut table = Table::new(&[
                ("epoch", Align::Right),
                ("from iter", Align::Right),
                ("members", Align::Left),
            ]);
            for m in &self.membership {
                table.row(vec![
                    m.epoch.to_string(),
                    m.from_iter.to_string(),
                    m.members
                        .iter()
                        .map(u32::to_string)
                        .collect::<Vec<_>>()
                        .join(" "),
                ]);
            }
            f.write_str(&table.render_indented("    "))?;
        }
        if !self.faults.is_empty() {
            let fr = &self.faults;
            writeln!(f, "  faults:")?;
            let mut table = Table::new(&[("event", Align::Left), ("count", Align::Right)]);
            for (name, count) in [
                ("injected drops", fr.injected_drops),
                ("injected duplicates", fr.injected_dups),
                ("injected reorders", fr.injected_reorders),
                ("injected delays", fr.injected_delays),
                ("injected corruptions", fr.injected_corruptions),
                ("injected stalls", fr.injected_stalls),
                ("retransmissions", fr.retries),
                ("nacks sent", fr.nacks),
                ("duplicates ignored", fr.duplicates_ignored),
                ("corruptions detected", fr.corruptions_detected),
                ("chunks degraded", fr.degraded_chunks),
            ] {
                if count > 0 {
                    table.row(vec![name.to_string(), count.to_string()]);
                }
            }
            f.write_str(&table.render_indented("    "))?;
            if !fr.verdicts.is_empty() {
                let mut table = Table::new(&[
                    ("node", Align::Right),
                    ("straggler", Align::Right),
                    ("waited", Align::Right),
                    ("action", Align::Left),
                ]);
                for v in &fr.verdicts {
                    table.row(vec![
                        v.node.to_string(),
                        v.peer.to_string(),
                        fmt_duration_ns(v.waited_ns),
                        v.action.to_string(),
                    ]);
                }
                f.write_str(&table.render_indented("    "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = RuntimeReport::default();
        let mut b = RuntimeReport::default();
        b.encode.record(100);
        b.encode.record(50);
        b.barrier.record(5);
        b.bytes_wire = 10;
        b.bytes_raw = 100;
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.encode.count, 4);
        assert_eq!(a.encode.busy_ns, 300);
        assert_eq!(a.barrier.count, 2);
        assert_eq!(a.bytes_wire, 20);
        assert!((a.compression_savings() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_has_its_own_bucket() {
        let mut r = RuntimeReport::default();
        r.prim_mut(Primitive::Barrier).record(40);
        assert_eq!(r.barrier.count, 1);
        assert_eq!(r.source.count, 0, "barriers must not pollute source");
        assert_eq!(r.prim(Primitive::Barrier).busy_ns, 40);
        assert_eq!(r.total_busy_ns(), 40);
    }

    #[test]
    fn speedup_ratio() {
        let fast = RuntimeReport {
            wall_ns: 100,
            ..Default::default()
        };
        let slow = RuntimeReport {
            wall_ns: 300,
            ..Default::default()
        };
        assert!((fast.speedup_vs(&slow) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_edge_cases() {
        let zero = RuntimeReport::default();
        let real = RuntimeReport {
            wall_ns: 100,
            ..Default::default()
        };
        // A zero-wall report defines its speedup as 1.0 (no division).
        assert!((zero.speedup_vs(&real) - 1.0).abs() < 1e-9);
        assert!((zero.speedup_vs(&zero) - 1.0).abs() < 1e-9);
        // A zero-wall baseline yields 0.0: "infinitely slower" is
        // reported as no speedup at all rather than infinity.
        assert!((real.speedup_vs(&zero) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders() {
        let mut r = RuntimeReport {
            nodes: 4,
            wall_ns: 1_500_000,
            ..Default::default()
        };
        r.encode.record(10_000);
        r.barrier.record(100);
        r.bytes_wire = 4096;
        r.bytes_raw = 65536;
        let s = r.to_string();
        assert!(s.contains("4 node threads"));
        assert!(s.contains("wall 1.50ms"));
        assert!(s.contains("encode"));
        assert!(s.contains("barrier"));
        for line in s.lines() {
            assert_eq!(line, line.trim_end(), "trailing whitespace in {line:?}");
        }
    }

    #[test]
    fn from_trace_rebuilds_every_field() {
        let mut t = Trace::new("casync-rt");
        let engine = t.thread_track("engine");
        let n0 = t.thread_track("node0");
        let n1 = t.thread_track("node1");
        t.push_span(
            engine,
            "run",
            "run",
            0,
            10_000,
            &[("nodes", 2), ("iterations", 3), ("window", 2)],
        );
        t.push_span(n0, "source", "source", 10, 100, &[("grad", 0), ("part", 0)]);
        t.push_span(n0, "local_agg", "local_agg", 20, 30, &[]);
        t.push_span(
            n0,
            "send",
            "send",
            200,
            50,
            &[("bytes_wire", 64), ("bytes_raw", 512)],
        );
        t.push_span(n1, "recv", "recv", 300, 5, &[]);
        t.push_span(n1, "barrier", "barrier", 400, 2, &[]);
        t.push_instant(n1, "msg", "fabric", 250, &[("bytes", 64)]);
        t.push_instant(n0, "batch", "batch", 50, &[("size", 3)]);
        t.push_instant(
            n0,
            "link",
            "link",
            9_000,
            &[
                ("frames", 6),
                ("bytes_framed", 900),
                ("bytes_payload", 640),
                ("retransmits", 1),
            ],
        );
        t.push_instant(
            n1,
            "link",
            "link",
            9_100,
            &[
                ("frames", 4),
                ("bytes_framed", 500),
                ("bytes_payload", 320),
                ("retransmits", 0),
            ],
        );
        t.push_span(n0, "iter_span", "iter_span", 10, 4_000, &[("iter", 0)]);
        t.push_span(n0, "iter_span", "iter_span", 3_000, 2_500, &[("iter", 1)]);
        let mem = t.thread_track("membership");
        t.push_instant(
            mem,
            "epoch",
            "membership",
            5,
            &[("epoch", 0), ("from_iter", 0), ("members_mask", 0b11)],
        );
        t.push_instant(mem, "evict", "membership", 4_500, &[("rank", 1)]);
        t.push_instant(
            mem,
            "epoch",
            "membership",
            4_600,
            &[("epoch", 1), ("from_iter", 2), ("members_mask", 0b01)],
        );
        let r = RuntimeReport::from_trace(&t);
        assert_eq!(r.nodes, 2);
        assert_eq!(r.wall_ns, 10_000);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.pipeline_window, 2);
        assert_eq!(r.fabric_frames, 10);
        assert_eq!(r.fabric_bytes_framed, 1_400);
        assert_eq!(r.fabric_bytes_payload, 960);
        assert_eq!(r.fabric_retransmits, 1);
        assert_eq!(r.iter_span_ns_total, 6_500);
        assert_eq!(
            r.source,
            PrimStat {
                count: 1,
                busy_ns: 100
            }
        );
        assert_eq!(
            r.send,
            PrimStat {
                count: 1,
                busy_ns: 50
            }
        );
        assert_eq!(
            r.recv,
            PrimStat {
                count: 1,
                busy_ns: 5
            }
        );
        assert_eq!(
            r.barrier,
            PrimStat {
                count: 1,
                busy_ns: 2
            }
        );
        assert_eq!(r.local_agg_ns, 30);
        assert_eq!(r.bytes_wire, 64);
        assert_eq!(r.bytes_raw, 512);
        assert_eq!(r.messages, 1);
        assert_eq!(r.comp_batch_launches, 1);
        // local_agg is nested inside source and excluded from busy.
        assert_eq!(r.per_node_busy_ns, vec![150, 7]);
        assert!(r.faults.is_empty(), "no fault events, no fault report");
        assert_eq!(
            r.membership,
            vec![
                EpochRecord {
                    epoch: 0,
                    from_iter: 0,
                    members: vec![0, 1],
                },
                EpochRecord {
                    epoch: 1,
                    from_iter: 2,
                    members: vec![0],
                },
            ]
        );
        assert_eq!(r.evicted, vec![1]);
    }

    /// Watchdog alerts are exported into the trace as instants on a
    /// dedicated `watchdog` track under the `alert` category. That
    /// category is deliberately foreign to `from_trace`: re-deriving a
    /// report from an alert-bearing trace must yield the same report
    /// as from the alert-free trace, or the CLI's trace→report parity
    /// check would fail whenever a run latched an alert (including the
    /// `membership_change` alert every epoch bump fires).
    #[test]
    fn alert_instants_stay_foreign_to_from_trace() {
        let mut clean = Trace::new("casync-rt");
        let engine = clean.thread_track("engine");
        clean.push_span(
            engine,
            "run",
            "run",
            0,
            5_000,
            &[("nodes", 2), ("iterations", 4), ("window", 2)],
        );
        let mem = clean.thread_track("membership");
        clean.push_instant(
            mem,
            "epoch",
            "membership",
            1,
            &[("epoch", 0), ("from_iter", 0), ("members_mask", 0b11)],
        );
        let baseline = RuntimeReport::from_trace(&clean);

        let wd = clean.thread_track("watchdog");
        for label in ["membership_change", "iteration_stall", "fault_burst"] {
            clean.push_instant(
                wd,
                label,
                "alert",
                2_000,
                &[("node", 0), ("iter", 1), ("observed", 9), ("threshold", 3)],
            );
        }
        let with_alerts = RuntimeReport::from_trace(&clean);
        assert_eq!(with_alerts, baseline);
        assert_eq!(with_alerts.to_json(), baseline.to_json());
    }

    /// The `/report.json` rendering parses as JSON and carries every
    /// field with its value intact — checked field by field against a
    /// report where every field is distinct.
    #[test]
    fn to_json_round_trips_every_field() {
        let mut rep = RuntimeReport {
            nodes: 3,
            wall_ns: 123_456,
            local_agg_ns: 777,
            bytes_wire: 2048,
            bytes_raw: 8192,
            messages: 55,
            comp_batch_launches: 4,
            per_node_busy_ns: vec![11, 22, 33],
            fabric_frames: 60,
            fabric_bytes_framed: 61,
            fabric_bytes_payload: 62,
            fabric_retransmits: 63,
            iterations: 16,
            pipeline_window: 5,
            iter_span_ns_total: 424_242,
            membership: vec![
                EpochRecord {
                    epoch: 0,
                    from_iter: 0,
                    members: vec![0, 1, 2],
                },
                EpochRecord {
                    epoch: 1,
                    from_iter: 7,
                    members: vec![0, 2],
                },
            ],
            evicted: vec![1],
            ..Default::default()
        };
        for (i, p) in [
            Primitive::Source,
            Primitive::Encode,
            Primitive::Decode,
            Primitive::Merge,
            Primitive::Send,
            Primitive::Recv,
            Primitive::Update,
            Primitive::Barrier,
        ]
        .into_iter()
        .enumerate()
        {
            let s = rep.prim_mut(p);
            s.count = 10 + i as u64;
            s.busy_ns = 1000 + i as u64;
        }
        rep.faults.retries = 7;
        rep.faults.corruptions_detected = 10;
        rep.faults.verdicts.push(StragglerVerdict {
            node: 1,
            peer: 2,
            waited_ns: 999,
            action: DegradeAction::Skipped,
        });
        let j = hipress_trace::json::parse(&rep.to_json()).expect("report json parses");
        let num = |j: &hipress_trace::json::Json, k: &str| {
            j.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
        };
        assert_eq!(num(&j, "nodes"), 3.0);
        assert_eq!(num(&j, "wall_ns"), 123_456.0);
        for (i, name) in PRIMS.iter().map(|(_, n)| n).enumerate() {
            let p = j.get(name).expect("primitive object");
            assert_eq!(num(p, "count"), 10.0 + i as f64, "{name}");
            assert_eq!(num(p, "busy_ns"), 1000.0 + i as f64, "{name}");
        }
        assert_eq!(num(&j, "local_agg_ns"), 777.0);
        assert_eq!(num(&j, "bytes_wire"), 2048.0);
        assert_eq!(num(&j, "bytes_raw"), 8192.0);
        assert_eq!(num(&j, "messages"), 55.0);
        assert_eq!(num(&j, "comp_batch_launches"), 4.0);
        let busy = j.get("per_node_busy_ns").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(
            busy.iter().map(|v| v.as_f64().unwrap()).collect::<Vec<_>>(),
            vec![11.0, 22.0, 33.0]
        );
        let f = j.get("faults").expect("faults object");
        assert_eq!(num(f, "retries"), 7.0);
        assert_eq!(num(f, "corruptions_detected"), 10.0);
        let v = &f.get("verdicts").and_then(|v| v.as_arr()).unwrap()[0];
        assert_eq!(num(v, "waited_ns"), 999.0);
        assert_eq!(v.get("action").and_then(|a| a.as_str()), Some("skipped"));
        assert_eq!(num(&j, "fabric_retransmits"), 63.0);
        assert_eq!(num(&j, "iterations"), 16.0);
        assert_eq!(num(&j, "pipeline_window"), 5.0);
        assert_eq!(num(&j, "iter_span_ns_total"), 424_242.0);
        let ms = j.get("membership").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(ms.len(), 2);
        assert_eq!(num(&ms[1], "epoch"), 1.0);
        assert_eq!(num(&ms[1], "from_iter"), 7.0);
        let members = ms[1].get("members").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(
            members
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect::<Vec<_>>(),
            vec![0.0, 2.0]
        );
        let ev = j.get("evicted").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(
            ev.iter().map(|v| v.as_f64().unwrap()).collect::<Vec<_>>(),
            vec![1.0]
        );
        assert!((num(&j, "compression_savings") - 4.0).abs() < 1e-6);
        assert!((num(&j, "pipeline_overlap") - rep.pipeline_overlap()).abs() < 1e-6);
    }

    #[test]
    fn fault_report_absorbs_and_displays() {
        let mut a = RuntimeReport::default();
        let mut b = RuntimeReport::default();
        b.faults.injected_drops = 3;
        b.faults.injected_corruptions = 2;
        b.faults.retries = 4;
        b.faults.corruptions_detected = 2;
        b.faults.degraded_chunks = 1;
        b.faults.verdicts.push(StragglerVerdict {
            node: 0,
            peer: 2,
            waited_ns: 250_000_000,
            action: DegradeAction::Skipped,
        });
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.faults.injected_drops, 6);
        assert_eq!(a.faults.total_injected(), 10);
        assert_eq!(a.faults.verdicts.len(), 2);
        assert!(!a.faults.is_empty());
        let s = a.to_string();
        assert!(s.contains("faults:"), "{s}");
        assert!(s.contains("injected drops"));
        assert!(s.contains("corruptions detected"));
        assert!(s.contains("straggler"));
        assert!(s.contains("skipped"));
        for line in s.lines() {
            assert_eq!(line, line.trim_end(), "trailing whitespace in {line:?}");
        }
        // Fast-path reports show no fault section at all.
        assert!(!RuntimeReport::default().to_string().contains("faults:"));
    }

    #[test]
    fn fabric_and_pipeline_sections_render_when_present() {
        // Fast-path reports show neither section.
        let plain = RuntimeReport::default().to_string();
        assert!(!plain.contains("fabric:"));
        assert!(!plain.contains("pipeline:"));
        let mut r = RuntimeReport {
            nodes: 2,
            wall_ns: 1_000,
            fabric_frames: 10,
            fabric_bytes_framed: 2048,
            fabric_bytes_payload: 1500,
            fabric_retransmits: 1,
            iterations: 4,
            pipeline_window: 2,
            iter_span_ns_total: 4_000,
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("fabric:"), "{s}");
        assert!(s.contains("frames sent"));
        assert!(s.contains("retransmissions"));
        assert!(s.contains("pipeline: 4 iterations, window 2"));
        // Spans 4000 vs elapsed 2×1000 → half the span time was
        // hidden by overlap.
        assert!((r.pipeline_overlap() - 0.5).abs() < 1e-9);
        // Serial-ish spans (≤ nodes × wall) clamp to zero overlap.
        r.iter_span_ns_total = 1_900;
        assert_eq!(r.pipeline_overlap(), 0.0);
        // Absorb accumulates the fabric counters and spans.
        let mut a = RuntimeReport::default();
        a.absorb(&r);
        a.absorb(&r);
        assert_eq!(a.fabric_frames, 20);
        assert_eq!(a.fabric_bytes_framed, 4096);
        assert_eq!(a.fabric_retransmits, 2);
        assert_eq!(a.iter_span_ns_total, 3_800);
    }

    #[test]
    fn from_trace_rebuilds_fault_events() {
        let mut t = Trace::new("casync-rt");
        let n0 = t.thread_track("node0");
        t.push_instant(n0, "drop", "chaos", 10, &[]);
        t.push_instant(n0, "drop", "chaos", 11, &[]);
        t.push_instant(n0, "corrupt", "chaos", 12, &[]);
        t.push_instant(n0, "stall", "chaos", 13, &[]);
        t.push_instant(n0, "retry", "ft", 20, &[]);
        t.push_instant(n0, "nack", "ft", 21, &[]);
        t.push_instant(n0, "dup_ignored", "ft", 22, &[]);
        t.push_instant(n0, "corrupt_detected", "ft", 23, &[]);
        t.push_instant(n0, "skip", "ft", 24, &[]);
        t.push_instant(
            n0,
            "skipped",
            "straggler",
            30,
            &[("node", 0), ("peer", 1), ("waited_ns", 5_000)],
        );
        let r = RuntimeReport::from_trace(&t);
        assert_eq!(r.faults.injected_drops, 2);
        assert_eq!(r.faults.injected_corruptions, 1);
        assert_eq!(r.faults.injected_stalls, 1);
        assert_eq!(r.faults.retries, 1);
        assert_eq!(r.faults.nacks, 1);
        assert_eq!(r.faults.duplicates_ignored, 1);
        assert_eq!(r.faults.corruptions_detected, 1);
        assert_eq!(r.faults.degraded_chunks, 1);
        assert_eq!(
            r.faults.verdicts,
            vec![StragglerVerdict {
                node: 0,
                peer: 1,
                waited_ns: 5_000,
                action: DegradeAction::Skipped,
            }]
        );
    }
}

//! Wall-clock execution reports for the thread runtime.
//!
//! Unlike [`hipress_core::ExecStats`] — which reports *simulated*
//! nanoseconds derived from cost models — everything in a
//! [`RuntimeReport`] is measured with `std::time::Instant` on real
//! hardware: how long the five primitives actually took, how many
//! bytes actually crossed the channel fabric, and how that compares
//! to an uncompressed run.

use hipress_core::Primitive;
use std::fmt;

/// Count and cumulative busy time for one primitive kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimStat {
    /// Number of task executions.
    pub count: u64,
    /// Total wall-clock busy nanoseconds across all nodes.
    pub busy_ns: u64,
}

impl PrimStat {
    /// Accumulates another stat into this one.
    pub fn absorb(&mut self, other: PrimStat) {
        self.count += other.count;
        self.busy_ns += other.busy_ns;
    }

    /// Records one execution of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.busy_ns += ns;
    }
}

/// Measured wall-clock statistics for one runtime execution.
#[derive(Debug, Clone, Default)]
pub struct RuntimeReport {
    /// Number of node threads that executed the graph.
    pub nodes: usize,
    /// End-to-end wall-clock time (spawn to last join), ns.
    pub wall_ns: u64,
    /// Per-primitive execution statistics, summed across nodes.
    pub source: PrimStat,
    /// Encode (compression kernel) statistics.
    pub encode: PrimStat,
    /// Decode (decompression kernel) statistics.
    pub decode: PrimStat,
    /// Merge (aggregation) statistics.
    pub merge: PrimStat,
    /// Send statistics (payload extraction + channel push).
    pub send: PrimStat,
    /// Recv statistics (payload hand-off).
    pub recv: PrimStat,
    /// Update (parameter install) statistics.
    pub update: PrimStat,
    /// Time spent summing local replica gradients (local aggregation,
    /// §3.1); zero when every node holds a single replica.
    pub local_agg_ns: u64,
    /// Bytes actually moved through the channel fabric.
    pub bytes_wire: u64,
    /// Bytes the same sends would have moved uncompressed.
    pub bytes_raw: u64,
    /// Messages delivered between node threads.
    pub messages: u64,
    /// Batched codec launches performed (batch compression, §3.2).
    pub comp_batch_launches: u64,
    /// Per-node total busy ns (all primitives).
    pub per_node_busy_ns: Vec<u64>,
}

impl RuntimeReport {
    /// The stat bucket for a primitive kind (Barrier maps to `source`,
    /// whose cost is ~zero, to keep the accessor total).
    pub fn prim(&self, p: Primitive) -> &PrimStat {
        match p {
            Primitive::Source | Primitive::Barrier => &self.source,
            Primitive::Encode => &self.encode,
            Primitive::Decode => &self.decode,
            Primitive::Merge => &self.merge,
            Primitive::Send => &self.send,
            Primitive::Recv => &self.recv,
            Primitive::Update => &self.update,
        }
    }

    /// Mutable access to the stat bucket for a primitive kind.
    pub(crate) fn prim_mut(&mut self, p: Primitive) -> &mut PrimStat {
        match p {
            Primitive::Source | Primitive::Barrier => &mut self.source,
            Primitive::Encode => &mut self.encode,
            Primitive::Decode => &mut self.decode,
            Primitive::Merge => &mut self.merge,
            Primitive::Send => &mut self.send,
            Primitive::Recv => &mut self.recv,
            Primitive::Update => &mut self.update,
        }
    }

    /// Merges a per-node report into this aggregate.
    pub fn absorb(&mut self, other: &RuntimeReport) {
        self.source.absorb(other.source);
        self.encode.absorb(other.encode);
        self.decode.absorb(other.decode);
        self.merge.absorb(other.merge);
        self.send.absorb(other.send);
        self.recv.absorb(other.recv);
        self.update.absorb(other.update);
        self.local_agg_ns += other.local_agg_ns;
        self.bytes_wire += other.bytes_wire;
        self.bytes_raw += other.bytes_raw;
        self.messages += other.messages;
        self.comp_batch_launches += other.comp_batch_launches;
    }

    /// Wire-volume reduction factor: raw bytes divided by bytes
    /// actually moved (1.0 when nothing was compressed).
    pub fn compression_savings(&self) -> f64 {
        if self.bytes_wire == 0 {
            return 1.0;
        }
        self.bytes_raw as f64 / self.bytes_wire as f64
    }

    /// Wall-clock speedup of this run relative to `baseline`
    /// (> 1.0 means this run was faster).
    pub fn speedup_vs(&self, baseline: &RuntimeReport) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        baseline.wall_ns as f64 / self.wall_ns as f64
    }

    /// Total busy time across primitives and nodes.
    pub fn total_busy_ns(&self) -> u64 {
        self.source.busy_ns
            + self.encode.busy_ns
            + self.decode.busy_ns
            + self.merge.busy_ns
            + self.send.busy_ns
            + self.recv.busy_ns
            + self.update.busy_ns
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RuntimeReport: {} node threads, wall {}",
            self.nodes,
            fmt_ns(self.wall_ns)
        )?;
        writeln!(f, "  {:<10} {:>8} {:>12}", "primitive", "count", "busy")?;
        for (name, s) in [
            ("source", self.source),
            ("encode", self.encode),
            ("decode", self.decode),
            ("merge", self.merge),
            ("send", self.send),
            ("recv", self.recv),
            ("update", self.update),
        ] {
            if s.count > 0 {
                writeln!(f, "  {:<10} {:>8} {:>12}", name, s.count, fmt_ns(s.busy_ns))?;
            }
        }
        if self.local_agg_ns > 0 {
            writeln!(f, "  local aggregation: {}", fmt_ns(self.local_agg_ns))?;
        }
        writeln!(
            f,
            "  wire: {} moved ({} raw equivalent, {:.1}x reduction), {} messages",
            fmt_bytes(self.bytes_wire),
            fmt_bytes(self.bytes_raw),
            self.compression_savings(),
            self.messages
        )?;
        if self.comp_batch_launches > 0 {
            writeln!(f, "  batched codec launches: {}", self.comp_batch_launches)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = RuntimeReport::default();
        let mut b = RuntimeReport::default();
        b.encode.record(100);
        b.encode.record(50);
        b.bytes_wire = 10;
        b.bytes_raw = 100;
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.encode.count, 4);
        assert_eq!(a.encode.busy_ns, 300);
        assert_eq!(a.bytes_wire, 20);
        assert!((a.compression_savings() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_ratio() {
        let fast = RuntimeReport {
            wall_ns: 100,
            ..Default::default()
        };
        let slow = RuntimeReport {
            wall_ns: 300,
            ..Default::default()
        };
        assert!((fast.speedup_vs(&slow) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders() {
        let mut r = RuntimeReport {
            nodes: 4,
            wall_ns: 1_500_000,
            ..Default::default()
        };
        r.encode.record(10_000);
        r.bytes_wire = 4096;
        r.bytes_raw = 65536;
        let s = r.to_string();
        assert!(s.contains("4 node threads"));
        assert!(s.contains("encode"));
    }
}

//! Multi-process CaSync-RT: one OS process per node over a loopback
//! TCP mesh.
//!
//! [`run_processes`] is the coordinator. It binds a rendezvous
//! socket, spawns one worker process per node (`hipress node
//! --connect ADDR --rank R --nodes N` — the binary re-executes
//! itself), and speaks a small length-prefixed control protocol with
//! each child:
//!
//! 1. Child binds its mesh listener, dials the coordinator, and sends
//!    [`Ctl::Hello`] with its rank and mesh port.
//! 2. Once every rank has checked in, the coordinator sends each a
//!    [`Ctl::Job`]: the full synchronization spec (strategy,
//!    algorithm, partitions, seed, runtime knobs, pipeline shape),
//!    every rank's mesh port, and *that rank's* gradient tensors
//!    only — each worker owns its own data, exactly as real data
//!    parallel training does.
//! 3. Children build the identical task graph from the spec, connect
//!    the full TCP mesh ([`hipress_fabric::tcp::connect_mesh`]), and
//!    run the pipelined driver ([`crate::pipeline`]) over it.
//! 4. Each child reports [`Ctl::Outcome`] (its updated chunks and
//!    measured report) or [`Ctl::Failed`], then *holds its mesh link
//!    open* until the coordinator's [`Ctl::Shutdown`] — reader
//!    threads keep servicing peers' acks, so a fast finisher never
//!    tears the sockets down under a slow one.
//!
//! The child rebuilds its graph from the same inputs the in-process
//! backends use, and every node's flow lengths are known from the
//! spec (ranks zero-fill the tensors they do not own; the dataflow
//! only ever reads a node's own flows at `Source`). Together with the
//! per-task codec seeding this makes the process backend bit-for-bit
//! identical to [`Backend::Threads`][crate::Backend::Threads] and the
//! interpreter.
//!
//! A worker that dies mid-protocol (crash, kill, [`ProcessConfig::
//! kill_node`] fault injection) surfaces twice: survivors diagnose
//! the dead mesh link and report a structured failure naming the dead
//! rank, and the coordinator sees the child's control stream close
//! without an outcome. Either way [`run_processes`] returns a
//! [`SyncFailure`] naming the dead node — never a hang.

use crate::engine::{
    record_run_metrics, record_run_span, replicate, single_node_trace, Cell, FlowLayout,
    Instruments, Msg, NodeMetrics, NodePlan, RunOutcome, RuntimeConfig,
};
use crate::observe::{
    get_trace, put_trace, record_clock_meta, replay_into, ClockSync, PostmortemDump, RankFlight,
    UNKNOWN_NODE,
};
use crate::pipeline::{drive_node, fabric_err, validate, ElasticHooks, PipelineConfig};
use crate::report::{DegradeAction, FaultReport, PrimStat, RuntimeReport, StragglerVerdict};
use hipress_compress::Algorithm;
use hipress_core::{
    ClusterConfig, CompressionSpec, GradPlan, IterationSpec, Strategy, SyncGradient,
};
use hipress_fabric::tcp::{connect_mesh, MeshConfig};
use hipress_fabric::{
    DecodeError, FlightEvent, FlightRecorder, LinkTuning, Reader, WireMsg, Writer,
};
use hipress_metrics::MetricsSnapshot;
use hipress_obs::{IterRecord, ProgressSink};
use hipress_tensor::Tensor;
use hipress_trace::{Trace, Tracer};
use hipress_util::{Error, Result, SyncFailure, SyncFailureKind};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Inherited marker that a process *is* a spawned worker. A worker
/// binary that fails to dispatch the `node` subcommand re-runs its
/// caller's `main` instead; if that path reaches [`run_processes`]
/// again, the guard turns what would be a process fork-bomb into an
/// immediate configuration error.
const SPAWN_GUARD_ENV: &str = "HIPRESS_SPAWNED_WORKER";

pub mod elastic;

/// How the coordinator launches and supervises worker processes.
#[derive(Debug, Clone, Default)]
pub struct ProcessConfig {
    /// The worker binary to execute with `node --connect ...`. When
    /// unset, `HIPRESS_NODE_BIN` is consulted, then the current
    /// executable (the `hipress` CLI re-executes itself).
    pub binary: Option<PathBuf>,
    /// Fault injection: this rank exits mid-protocol right after mesh
    /// setup, exercising the dead-link diagnosis end to end.
    pub kill_node: Option<usize>,
    /// How long workers may take to check in at rendezvous.
    /// `Duration::ZERO` means the 10 s default.
    pub connect_timeout: Duration,
    /// How long each worker may take to report its outcome.
    /// `Duration::ZERO` means the 60 s default.
    pub run_timeout: Duration,
    /// Where to write a serialized [`PostmortemDump`] when the run
    /// fails: every surviving rank's flight-recorder ring plus the
    /// diagnosed root cause, rendered later by `hipress postmortem`.
    /// `None` skips the dump.
    pub flight_dump: Option<PathBuf>,
}

impl ProcessConfig {
    fn connect_deadline(&self) -> Duration {
        if self.connect_timeout.is_zero() {
            Duration::from_secs(10)
        } else {
            self.connect_timeout
        }
    }

    fn run_deadline(&self) -> Duration {
        if self.run_timeout.is_zero() {
            Duration::from_secs(60)
        } else {
            self.run_timeout
        }
    }
}

/// Everything a worker needs to run its share of one synchronization
/// job: the spec to rebuild the graph from, the runtime knobs, the
/// mesh topology, and this rank's own gradients.
struct Job {
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: u32,
    seed: u64,
    nodes: u32,
    rank: u32,
    config: RuntimeConfig,
    iterations: u32,
    window: u32,
    /// Exit mid-protocol after mesh setup (fault injection).
    kill: bool,
    /// Record a per-rank trace and ship it with the outcome.
    want_trace: bool,
    /// Record per-rank metrics and ship a snapshot with the outcome.
    want_metrics: bool,
    /// Stream per-iteration [`Ctl::Progress`] frames back over the
    /// control channel as iterations retire (live telemetry).
    want_progress: bool,
    /// Element count of every gradient (identical across ranks).
    grad_lens: Vec<u32>,
    /// This rank's gradient values, parallel to `grad_lens`.
    grads: Vec<Vec<f32>>,
    /// Every rank's mesh listener port, indexed by rank.
    mesh_ports: Vec<u16>,
    /// This job is one segment of an elastic run: after it ends the
    /// worker must hold its control link and wait for an
    /// [`Msg::EpochBump`] (next segment) or `Shutdown` instead of
    /// exiting, and `rank` is a per-segment *slot*, not the worker's
    /// global rank.
    elastic: bool,
    /// Membership epoch this segment runs under (0 on fixed runs).
    epoch: u64,
    /// Global iteration number of this segment's first iteration —
    /// workers stamp it onto progress records so the coordinator's
    /// timeline is globally numbered across segments.
    base_iter: u32,
    /// Crash injection: exit hard (no abort broadcast) once this many
    /// segment-local iterations have retired.
    die_at_iter: Option<u32>,
}

/// The coordinator-worker control protocol.
enum Ctl {
    /// Worker → coordinator: `rank` is listening for mesh peers on
    /// `mesh_port`.
    Hello { rank: u32, mesh_port: u16 },
    /// Coordinator → worker: the job to run.
    Job(Box<Job>),
    /// Worker → coordinator: the protocol completed; here are the
    /// updated chunk values `(flow, part, elements)`, the measured
    /// report, the optional per-rank trace and metrics snapshot
    /// (JSON), and the flight-recorder ring.
    Outcome {
        cells: Vec<(u32, u32, Vec<f32>)>,
        report: RuntimeReport,
        trace: Option<Trace>,
        metrics: Option<String>,
        flight: Vec<FlightEvent>,
    },
    /// Worker → coordinator: the protocol failed; the flight ring
    /// rides along so the postmortem sees the failing rank's view.
    Failed {
        error: Error,
        flight: Vec<FlightEvent>,
    },
    /// Coordinator → worker: all outcomes collected; tear the mesh
    /// down and exit.
    Shutdown,
    /// Coordinator → worker: clock probe carrying the coordinator's
    /// clock reading `t1` (NTP-style offset estimation during
    /// rendezvous).
    ClockPing { t1: u64 },
    /// Worker → coordinator: `t1` echoed back plus the worker's own
    /// clock reading `t2` at the moment of the answer.
    ClockPong { t1: u64, t2: u64 },
    /// Worker → coordinator: one iteration retired (live telemetry).
    /// Sent between `Job` and `Outcome`/`Failed` when the job asked
    /// for progress; the coordinator restamps `ts_ns` on arrival so
    /// every rank's records share its one clock.
    Progress { rec: IterRecord },
    /// Rendezvous-plane frame in either direction, reusing the
    /// [`Msg`] wire codec: `Join` (joiner → coordinator),
    /// `Welcome` (coordinator → joiner), `EpochBump` (coordinator →
    /// surviving workers between segments).
    Member(Msg),
    /// Worker → coordinator: an elastic segment died under this
    /// worker (a peer vanished, or this worker was the crash victim's
    /// neighbour). `completed` is how many segment-local iterations
    /// had fully retired here; `dead` is the *slot* this worker blames
    /// (`u32::MAX` when it cannot tell).
    Halted { completed: u32, dead: u32 },
}

const CTL_HELLO: u8 = 1;
const CTL_JOB: u8 = 2;
const CTL_OUTCOME: u8 = 3;
const CTL_FAILED: u8 = 4;
const CTL_SHUTDOWN: u8 = 5;
const CTL_CLOCK_PING: u8 = 6;
const CTL_CLOCK_PONG: u8 = 7;
const CTL_PROGRESS: u8 = 8;
const CTL_MEMBER: u8 = 9;
const CTL_HALT: u8 = 10;

fn put_strategy(w: &mut Writer, s: Strategy) {
    w.put_u8(match s {
        Strategy::CaSyncPs => 1,
        Strategy::CaSyncRing => 2,
        Strategy::BytePs => 3,
        Strategy::HorovodRing => 4,
    });
}

fn get_strategy(r: &mut Reader<'_>) -> std::result::Result<Strategy, DecodeError> {
    match r.u8()? {
        1 => Ok(Strategy::CaSyncPs),
        2 => Ok(Strategy::CaSyncRing),
        3 => Ok(Strategy::BytePs),
        4 => Ok(Strategy::HorovodRing),
        t => Err(DecodeError::BadTag {
            what: "strategy",
            tag: u64::from(t),
        }),
    }
}

fn put_algorithm(w: &mut Writer, a: Algorithm) {
    match a {
        Algorithm::None => w.put_u8(0),
        Algorithm::OneBit => w.put_u8(1),
        Algorithm::Tbq { tau } => {
            w.put_u8(2);
            w.put_f32(tau);
        }
        Algorithm::TernGrad { bitwidth } => {
            w.put_u8(3);
            w.put_u8(bitwidth);
        }
        Algorithm::Dgc { rate } => {
            w.put_u8(4);
            w.put_f64(rate);
        }
        Algorithm::GradDrop { rate } => {
            w.put_u8(5);
            w.put_f64(rate);
        }
    }
}

fn get_algorithm(r: &mut Reader<'_>) -> std::result::Result<Algorithm, DecodeError> {
    match r.u8()? {
        0 => Ok(Algorithm::None),
        1 => Ok(Algorithm::OneBit),
        2 => Ok(Algorithm::Tbq { tau: r.f32()? }),
        3 => Ok(Algorithm::TernGrad { bitwidth: r.u8()? }),
        4 => Ok(Algorithm::Dgc { rate: r.f64()? }),
        5 => Ok(Algorithm::GradDrop { rate: r.f64()? }),
        t => Err(DecodeError::BadTag {
            what: "algorithm",
            tag: u64::from(t),
        }),
    }
}

fn put_prim(w: &mut Writer, s: PrimStat) {
    w.put_u64(s.count);
    w.put_u64(s.busy_ns);
}

fn get_prim(r: &mut Reader<'_>) -> std::result::Result<PrimStat, DecodeError> {
    Ok(PrimStat {
        count: r.u64()?,
        busy_ns: r.u64()?,
    })
}

fn put_verdict(w: &mut Writer, v: &StragglerVerdict) {
    let StragglerVerdict {
        node,
        peer,
        waited_ns,
        action,
    } = v;
    w.put_u64(*node as u64);
    w.put_u64(*peer as u64);
    w.put_u64(*waited_ns);
    w.put_u8(match action {
        DegradeAction::Waited => 1,
        DegradeAction::Skipped => 2,
        DegradeAction::Aborted => 3,
    });
}

fn get_verdict(r: &mut Reader<'_>) -> std::result::Result<StragglerVerdict, DecodeError> {
    Ok(StragglerVerdict {
        node: r.u64()? as usize,
        peer: r.u64()? as usize,
        waited_ns: r.u64()?,
        action: match r.u8()? {
            1 => DegradeAction::Waited,
            2 => DegradeAction::Skipped,
            3 => DegradeAction::Aborted,
            t => {
                return Err(DecodeError::BadTag {
                    what: "degrade action",
                    tag: u64::from(t),
                })
            }
        },
    })
}

fn put_faults(w: &mut Writer, f: &FaultReport) {
    // Exhaustive destructuring: adding a FaultReport field without
    // extending this codec is a compile error, not a silent drop.
    let FaultReport {
        injected_drops,
        injected_dups,
        injected_reorders,
        injected_delays,
        injected_corruptions,
        injected_stalls,
        retries,
        nacks,
        duplicates_ignored,
        corruptions_detected,
        degraded_chunks,
        verdicts,
    } = f;
    for v in [
        injected_drops,
        injected_dups,
        injected_reorders,
        injected_delays,
        injected_corruptions,
        injected_stalls,
        retries,
        nacks,
        duplicates_ignored,
        corruptions_detected,
        degraded_chunks,
    ] {
        w.put_u64(*v);
    }
    w.put_u32(verdicts.len() as u32);
    for v in verdicts {
        put_verdict(w, v);
    }
}

fn get_faults(r: &mut Reader<'_>) -> std::result::Result<FaultReport, DecodeError> {
    let mut f = FaultReport::default();
    for v in [
        &mut f.injected_drops,
        &mut f.injected_dups,
        &mut f.injected_reorders,
        &mut f.injected_delays,
        &mut f.injected_corruptions,
        &mut f.injected_stalls,
        &mut f.retries,
        &mut f.nacks,
        &mut f.duplicates_ignored,
        &mut f.corruptions_detected,
        &mut f.degraded_chunks,
    ] {
        *v = r.u64()?;
    }
    for _ in 0..r.u32()? {
        f.verdicts.push(get_verdict(r)?);
    }
    Ok(f)
}

/// Encodes every field of a [`RuntimeReport`]. The exhaustive
/// destructuring (no `..`) makes adding a report field without
/// extending this codec a *compile* error — a field can never
/// silently vanish crossing the process boundary. Run-level fields
/// the coordinator owns (`nodes`, `wall_ns`, `iterations`,
/// `pipeline_window`, `per_node_busy_ns`) still travel; the
/// coordinator's `absorb` simply ignores them.
fn put_report(w: &mut Writer, rep: &RuntimeReport) {
    let RuntimeReport {
        nodes,
        wall_ns,
        source,
        encode,
        decode,
        merge,
        send,
        recv,
        update,
        barrier,
        local_agg_ns,
        bytes_wire,
        bytes_raw,
        messages,
        comp_batch_launches,
        per_node_busy_ns,
        faults,
        fabric_frames,
        fabric_bytes_framed,
        fabric_bytes_payload,
        fabric_retransmits,
        iterations,
        pipeline_window,
        iter_span_ns_total,
        membership,
        evicted,
    } = rep;
    w.put_u64(*nodes as u64);
    w.put_u64(*wall_ns);
    for s in [source, encode, decode, merge, send, recv, update, barrier] {
        put_prim(w, *s);
    }
    for v in [
        local_agg_ns,
        bytes_wire,
        bytes_raw,
        messages,
        comp_batch_launches,
    ] {
        w.put_u64(*v);
    }
    w.put_u32(per_node_busy_ns.len() as u32);
    for &b in per_node_busy_ns {
        w.put_u64(b);
    }
    put_faults(w, faults);
    for v in [
        fabric_frames,
        fabric_bytes_framed,
        fabric_bytes_payload,
        fabric_retransmits,
        iterations,
        pipeline_window,
        iter_span_ns_total,
    ] {
        w.put_u64(*v);
    }
    w.put_u32(membership.len() as u32);
    for m in membership {
        w.put_u64(m.epoch);
        w.put_u64(m.from_iter);
        w.put_u32(m.members.len() as u32);
        for &rk in &m.members {
            w.put_u32(rk);
        }
    }
    w.put_u32(evicted.len() as u32);
    for &rk in evicted {
        w.put_u32(rk);
    }
}

fn get_report(r: &mut Reader<'_>) -> std::result::Result<RuntimeReport, DecodeError> {
    let mut rep = RuntimeReport {
        nodes: r.u64()? as usize,
        wall_ns: r.u64()?,
        ..RuntimeReport::default()
    };
    for s in [
        &mut rep.source,
        &mut rep.encode,
        &mut rep.decode,
        &mut rep.merge,
        &mut rep.send,
        &mut rep.recv,
        &mut rep.update,
        &mut rep.barrier,
    ] {
        *s = get_prim(r)?;
    }
    rep.local_agg_ns = r.u64()?;
    rep.bytes_wire = r.u64()?;
    rep.bytes_raw = r.u64()?;
    rep.messages = r.u64()?;
    rep.comp_batch_launches = r.u64()?;
    for _ in 0..r.u32()? {
        rep.per_node_busy_ns.push(r.u64()?);
    }
    rep.faults = get_faults(r)?;
    rep.fabric_frames = r.u64()?;
    rep.fabric_bytes_framed = r.u64()?;
    rep.fabric_bytes_payload = r.u64()?;
    rep.fabric_retransmits = r.u64()?;
    rep.iterations = r.u64()?;
    rep.pipeline_window = r.u64()?;
    rep.iter_span_ns_total = r.u64()?;
    for _ in 0..r.u32()? {
        let mut m = crate::report::EpochRecord {
            epoch: r.u64()?,
            from_iter: r.u64()?,
            ..Default::default()
        };
        for _ in 0..r.u32()? {
            m.members.push(r.u32()?);
        }
        rep.membership.push(m);
    }
    for _ in 0..r.u32()? {
        rep.evicted.push(r.u32()?);
    }
    Ok(rep)
}

/// Encodes every field of an [`IterRecord`]; exhaustive destructuring
/// keeps the codec honest the same way [`put_report`] does.
fn put_iter_record(w: &mut Writer, rec: &IterRecord) {
    let IterRecord {
        node,
        iter,
        ts_ns,
        span_ns,
        comp_ns,
        commu_ns,
        bytes_wire,
        messages,
        retransmits,
        faults,
        window,
        epoch,
    } = rec;
    w.put_u32(*node);
    w.put_u32(*iter);
    for v in [
        ts_ns,
        span_ns,
        comp_ns,
        commu_ns,
        bytes_wire,
        messages,
        retransmits,
        faults,
    ] {
        w.put_u64(*v);
    }
    w.put_u32(*window);
    w.put_u64(*epoch);
}

fn get_iter_record(r: &mut Reader<'_>) -> std::result::Result<IterRecord, DecodeError> {
    let mut rec = IterRecord {
        node: r.u32()?,
        iter: r.u32()?,
        ..IterRecord::default()
    };
    for v in [
        &mut rec.ts_ns,
        &mut rec.span_ns,
        &mut rec.comp_ns,
        &mut rec.commu_ns,
        &mut rec.bytes_wire,
        &mut rec.messages,
        &mut rec.retransmits,
        &mut rec.faults,
    ] {
        *v = r.u64()?;
    }
    rec.window = r.u32()?;
    rec.epoch = r.u64()?;
    Ok(rec)
}

fn put_error(w: &mut Writer, e: &Error) {
    if let Error::Sync(f) = e {
        w.put_u8(1);
        w.put_u8(match f.kind {
            SyncFailureKind::RecvTimeout => 0,
            SyncFailureKind::LinkDead => 1,
            SyncFailureKind::Straggler => 2,
            SyncFailureKind::InjectedCrash => 3,
            SyncFailureKind::Aborted => 4,
        });
        w.put_u64(f.node as u64);
        match f.peer {
            Some(p) => {
                w.put_u8(1);
                w.put_u64(p as u64);
            }
            None => w.put_u8(0),
        }
        match f.task {
            Some(t) => {
                w.put_u8(1);
                w.put_u32(t);
            }
            None => w.put_u8(0),
        }
        w.put_str(&f.detail);
    } else {
        // Other categories travel as their message; "aborted" echoes
        // keep their exact text so root-cause preference still works.
        w.put_u8(0);
        w.put_str(&e.to_string());
        w.put_u8(matches!(e, Error::Sim(m) if m == "aborted") as u8);
    }
}

fn get_error(r: &mut Reader<'_>) -> std::result::Result<Error, DecodeError> {
    if r.u8()? == 1 {
        let kind = match r.u8()? {
            0 => SyncFailureKind::RecvTimeout,
            1 => SyncFailureKind::LinkDead,
            2 => SyncFailureKind::Straggler,
            3 => SyncFailureKind::InjectedCrash,
            4 => SyncFailureKind::Aborted,
            t => {
                return Err(DecodeError::BadTag {
                    what: "failure kind",
                    tag: u64::from(t),
                })
            }
        };
        let node = r.u64()? as usize;
        let peer = if r.u8()? == 1 {
            Some(r.u64()? as usize)
        } else {
            None
        };
        let task = if r.u8()? == 1 { Some(r.u32()?) } else { None };
        let detail = r.str()?.to_string();
        Ok(Error::sync(SyncFailure {
            kind,
            node,
            peer,
            task,
            detail,
        }))
    } else {
        let msg = r.str()?.to_string();
        let aborted = r.u8()? == 1;
        Ok(if aborted {
            Error::sim("aborted")
        } else {
            Error::sim(msg)
        })
    }
}

impl WireMsg for Ctl {
    fn encode(&self, w: &mut Writer) {
        match self {
            Ctl::Hello { rank, mesh_port } => {
                w.put_u8(CTL_HELLO);
                w.put_u32(*rank);
                w.put_u16(*mesh_port);
            }
            Ctl::Job(j) => {
                w.put_u8(CTL_JOB);
                put_strategy(w, j.strategy);
                put_algorithm(w, j.algorithm);
                w.put_u32(j.partitions);
                w.put_u64(j.seed);
                w.put_u32(j.nodes);
                w.put_u32(j.rank);
                w.put_u8(u8::from(j.config.batch_compression));
                w.put_u64(j.config.comp_batch_max_task_bytes);
                w.put_u64(j.config.inbox_timeout.as_nanos() as u64);
                w.put_u64(j.config.ft_min_wait.as_nanos() as u64);
                w.put_u64(j.config.ft_max_wait.as_nanos() as u64);
                w.put_u64(j.config.ft_heartbeat.as_nanos() as u64);
                w.put_u32(j.iterations);
                w.put_u32(j.window);
                w.put_u8(u8::from(j.kill));
                w.put_u8(u8::from(j.want_trace));
                w.put_u8(u8::from(j.want_metrics));
                w.put_u8(u8::from(j.want_progress));
                w.put_u32(j.grad_lens.len() as u32);
                for &n in &j.grad_lens {
                    w.put_u32(n);
                }
                w.put_u32(j.grads.len() as u32);
                for g in &j.grads {
                    w.put_f32s(g);
                }
                w.put_u32(j.mesh_ports.len() as u32);
                for &p in &j.mesh_ports {
                    w.put_u16(p);
                }
                w.put_u8(u8::from(j.elastic));
                w.put_u64(j.epoch);
                w.put_u32(j.base_iter);
                match j.die_at_iter {
                    Some(d) => {
                        w.put_u8(1);
                        w.put_u32(d);
                    }
                    None => w.put_u8(0),
                }
            }
            Ctl::Outcome {
                cells,
                report,
                trace,
                metrics,
                flight,
            } => {
                w.put_u8(CTL_OUTCOME);
                w.put_u32(cells.len() as u32);
                for (f, p, v) in cells {
                    w.put_u32(*f);
                    w.put_u32(*p);
                    w.put_f32s(v);
                }
                put_report(w, report);
                match trace {
                    Some(t) => {
                        w.put_u8(1);
                        put_trace(w, t);
                    }
                    None => w.put_u8(0),
                }
                match metrics {
                    Some(m) => {
                        w.put_u8(1);
                        w.put_str(m);
                    }
                    None => w.put_u8(0),
                }
                w.put_u32(flight.len() as u32);
                for e in flight {
                    e.encode(w);
                }
            }
            Ctl::Failed { error, flight } => {
                w.put_u8(CTL_FAILED);
                put_error(w, error);
                w.put_u32(flight.len() as u32);
                for e in flight {
                    e.encode(w);
                }
            }
            Ctl::Shutdown => w.put_u8(CTL_SHUTDOWN),
            Ctl::ClockPing { t1 } => {
                w.put_u8(CTL_CLOCK_PING);
                w.put_u64(*t1);
            }
            Ctl::ClockPong { t1, t2 } => {
                w.put_u8(CTL_CLOCK_PONG);
                w.put_u64(*t1);
                w.put_u64(*t2);
            }
            Ctl::Progress { rec } => {
                w.put_u8(CTL_PROGRESS);
                put_iter_record(w, rec);
            }
            Ctl::Member(m) => {
                w.put_u8(CTL_MEMBER);
                m.encode(w);
            }
            Ctl::Halted { completed, dead } => {
                w.put_u8(CTL_HALT);
                w.put_u32(*completed);
                w.put_u32(*dead);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, DecodeError> {
        match r.u8()? {
            CTL_HELLO => Ok(Ctl::Hello {
                rank: r.u32()?,
                mesh_port: r.u16()?,
            }),
            CTL_JOB => {
                let strategy = get_strategy(r)?;
                let algorithm = get_algorithm(r)?;
                let partitions = r.u32()?;
                let seed = r.u64()?;
                let nodes = r.u32()?;
                let rank = r.u32()?;
                let config = RuntimeConfig {
                    batch_compression: r.u8()? != 0,
                    comp_batch_max_task_bytes: r.u64()?,
                    inbox_timeout: Duration::from_nanos(r.u64()?),
                    ft_min_wait: Duration::from_nanos(r.u64()?),
                    ft_max_wait: Duration::from_nanos(r.u64()?),
                    ft_heartbeat: Duration::from_nanos(r.u64()?),
                };
                let iterations = r.u32()?;
                let window = r.u32()?;
                let kill = r.u8()? != 0;
                let want_trace = r.u8()? != 0;
                let want_metrics = r.u8()? != 0;
                let want_progress = r.u8()? != 0;
                let mut grad_lens = Vec::new();
                for _ in 0..r.u32()? {
                    grad_lens.push(r.u32()?);
                }
                let mut grads = Vec::new();
                for _ in 0..r.u32()? {
                    grads.push(r.f32s()?);
                }
                let mut mesh_ports = Vec::new();
                for _ in 0..r.u32()? {
                    mesh_ports.push(r.u16()?);
                }
                let elastic = r.u8()? != 0;
                let epoch = r.u64()?;
                let base_iter = r.u32()?;
                let die_at_iter = match r.u8()? {
                    0 => None,
                    1 => Some(r.u32()?),
                    t => {
                        return Err(DecodeError::BadTag {
                            what: "die_at_iter",
                            tag: u64::from(t),
                        })
                    }
                };
                Ok(Ctl::Job(Box::new(Job {
                    strategy,
                    algorithm,
                    partitions,
                    seed,
                    nodes,
                    rank,
                    config,
                    iterations,
                    window,
                    kill,
                    want_trace,
                    want_metrics,
                    want_progress,
                    grad_lens,
                    grads,
                    mesh_ports,
                    elastic,
                    epoch,
                    base_iter,
                    die_at_iter,
                })))
            }
            CTL_OUTCOME => {
                let mut cells = Vec::new();
                for _ in 0..r.u32()? {
                    cells.push((r.u32()?, r.u32()?, r.f32s()?));
                }
                let report = get_report(r)?;
                let trace = if r.u8()? == 1 {
                    Some(get_trace(r)?)
                } else {
                    None
                };
                let metrics = if r.u8()? == 1 {
                    Some(r.str()?.to_string())
                } else {
                    None
                };
                let mut flight = Vec::new();
                for _ in 0..r.u32()? {
                    flight.push(FlightEvent::decode(r)?);
                }
                Ok(Ctl::Outcome {
                    cells,
                    report,
                    trace,
                    metrics,
                    flight,
                })
            }
            CTL_FAILED => {
                let error = get_error(r)?;
                let mut flight = Vec::new();
                for _ in 0..r.u32()? {
                    flight.push(FlightEvent::decode(r)?);
                }
                Ok(Ctl::Failed { error, flight })
            }
            CTL_SHUTDOWN => Ok(Ctl::Shutdown),
            CTL_CLOCK_PING => Ok(Ctl::ClockPing { t1: r.u64()? }),
            CTL_CLOCK_PONG => Ok(Ctl::ClockPong {
                t1: r.u64()?,
                t2: r.u64()?,
            }),
            CTL_PROGRESS => Ok(Ctl::Progress {
                rec: get_iter_record(r)?,
            }),
            CTL_MEMBER => Ok(Ctl::Member(Msg::decode(r)?)),
            CTL_HALT => Ok(Ctl::Halted {
                completed: r.u32()?,
                dead: r.u32()?,
            }),
            t => Err(DecodeError::BadTag {
                what: "ctl",
                tag: u64::from(t),
            }),
        }
    }
}

/// Control frames are a plain u32 length prefix + [`WireMsg`] body —
/// the rendezvous channel is point-to-point and short-lived, so the
/// mesh's checksummed reliability discipline would be dead weight.
const CTL_MAX_BYTES: u32 = 1 << 30;

fn ctl_io(detail: impl std::fmt::Display) -> Error {
    Error::sim(format!("process control channel: {detail}"))
}

fn write_ctl(stream: &mut TcpStream, msg: &Ctl) -> Result<()> {
    let body = msg.to_bytes();
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&body);
    stream.write_all(&buf).map_err(ctl_io)
}

fn read_ctl(stream: &mut TcpStream) -> Result<Ctl> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).map_err(ctl_io)?;
    let len = u32::from_le_bytes(len);
    if len > CTL_MAX_BYTES {
        return Err(ctl_io(format!("oversized control frame ({len} bytes)")));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body).map_err(ctl_io)?;
    Ctl::from_bytes(&body).map_err(|e| ctl_io(format!("bad control frame: {e}")))
}

/// Rebuilds the synchronization graph every backend agrees on from a
/// job spec — byte counts and plan flags exactly as the facade derives
/// them from the tensors themselves.
fn build_graph(
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    grad_lens: &[u32],
    nodes: usize,
) -> Result<hipress_core::graph::TaskGraph> {
    let compressor = algorithm.build();
    let spec = IterationSpec {
        gradients: grad_lens
            .iter()
            .enumerate()
            .map(|(g, &n)| SyncGradient {
                name: format!("g{g}"),
                bytes: u64::from(n) * 4,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: compressor.is_some(),
                    partitions,
                },
            })
            .collect(),
        compression: compressor.as_deref().map(CompressionSpec::of),
    };
    strategy.build(&ClusterConfig::ec2(nodes), &spec)
}

/// How root-cause-like an error is, for picking which of several
/// worker failures to surface: structured diagnoses first (by their
/// own severity rank), then other errors, then "aborted" echoes.
fn error_rank(e: &Error) -> u8 {
    match e {
        Error::Sync(f) => f.kind.rank(),
        Error::Sim(m) if m == "aborted" => u8::MAX,
        _ => 3,
    }
}

/// Executes the job as `nodes` real OS processes synchronizing over a
/// loopback TCP mesh, returning the same [`RunOutcome`] shape as the
/// in-process backends — and bit-identical flows.
///
/// `worker_grads[w][g]` is worker `w`'s gradient `g`, as in the
/// facade. The report aggregates every worker's measurements and the
/// fabric's framing counters; `wall_ns` covers rendezvous through the
/// last outcome (process spawn cost excluded, mesh setup included).
///
/// With a tracer in `instruments`, every worker records its own
/// timeline against its private monotonic epoch, ships it back over
/// the control channel, and the coordinator merges all of them —
/// clock-corrected by the rendezvous ping exchange — into one global
/// trace (one track per rank, plus per-rank offset metadata on the
/// `clock` track). With a metrics scope, per-rank snapshots are
/// absorbed into the coordinator's registry under the scope's labels.
///
/// # Errors
///
/// Configuration errors for bad shapes or an unresolvable worker
/// binary; a structured [`SyncFailure`] naming the dead node when a
/// worker dies mid-protocol; transport errors from the control
/// channel.
#[allow(clippy::too_many_arguments)]
pub fn run_processes(
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    worker_grads: &[Vec<Tensor>],
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    pconf: &ProcessConfig,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    let nodes = worker_grads.len();
    validate_grads(worker_grads)?;
    validate(pcfg)?;
    if let Some(k) = pconf.kill_node {
        if k >= nodes {
            return Err(Error::config(format!(
                "kill_node {k} out of range for {nodes} workers"
            )));
        }
    }

    // Recursion guard: if the resolved worker binary does not handle
    // the `node` subcommand (a library consumer's own executable, via
    // current_exe), each spawned child would re-run its caller's main
    // and fork-bomb. Workers inherit this marker; a worker that winds
    // up back here is such a re-run and must die, not spawn.
    if std::env::var_os(SPAWN_GUARD_ENV).is_some() {
        return Err(Error::config(
            "recursive worker spawn: the worker binary re-entered run_processes instead of \
             handling the `node` subcommand — point ProcessConfig.binary (or HIPRESS_NODE_BIN) \
             at a binary that dispatches `node` to node_main",
        ));
    }

    let listener = TcpListener::bind("127.0.0.1:0").map_err(ctl_io)?;
    let addr = listener.local_addr().map_err(ctl_io)?;
    let binary = resolve_binary(pconf)?;

    let mut children = Vec::with_capacity(nodes);
    for rank in 0..nodes {
        let child = std::process::Command::new(&binary)
            .env(SPAWN_GUARD_ENV, "1")
            .arg("node")
            .arg("--connect")
            .arg(addr.to_string())
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--nodes")
            .arg(nodes.to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| {
                Error::config(format!(
                    "failed to spawn worker {rank} ({}): {e}",
                    binary.display()
                ))
            })?;
        children.push(child);
    }

    let result = coordinate(
        &listener,
        strategy,
        algorithm,
        partitions,
        worker_grads,
        seed,
        config,
        pcfg,
        pconf,
        &mut children,
        instruments,
    );
    reap(&mut children);
    result
}

fn validate_grads(worker_grads: &[Vec<Tensor>]) -> Result<()> {
    if worker_grads.len() < 2 {
        return Err(Error::config("synchronization needs at least 2 workers"));
    }
    let first = &worker_grads[0];
    for (w, g) in worker_grads.iter().enumerate() {
        if g.len() != first.len() || g.iter().zip(first).any(|(a, b)| a.len() != b.len()) {
            return Err(Error::config(format!(
                "worker {w} gradient shapes differ from worker 0"
            )));
        }
    }
    Ok(())
}

fn resolve_binary(pconf: &ProcessConfig) -> Result<PathBuf> {
    if let Some(b) = &pconf.binary {
        return Ok(b.clone());
    }
    if let Ok(b) = std::env::var("HIPRESS_NODE_BIN") {
        return Ok(PathBuf::from(b));
    }
    std::env::current_exe().map_err(|e| Error::config(format!("cannot resolve worker binary: {e}")))
}

/// How many ping probes the coordinator sends each rank at
/// rendezvous. The minimum-RTT sample wins, so a handful of probes
/// suffices to dodge scheduler noise on loopback.
const CLOCK_PROBES: usize = 8;

/// Runs the NTP-style offset exchange with one checked-in worker:
/// `CLOCK_PROBES` ping/pong round trips, each stamped `t1` (send) and
/// `t3` (receive) on the coordinator's `clock_epoch` clock with the
/// worker's own reading `t2` in between.
fn probe_clock(stream: &mut TcpStream, clock_epoch: Instant) -> Result<ClockSync> {
    let mut samples = Vec::with_capacity(CLOCK_PROBES);
    for _ in 0..CLOCK_PROBES {
        let t1 = clock_epoch.elapsed().as_nanos() as u64;
        write_ctl(stream, &Ctl::ClockPing { t1 })?;
        let Ctl::ClockPong { t1: echoed, t2 } = read_ctl(stream)? else {
            return Err(ctl_io("worker answered a clock probe with a non-pong"));
        };
        let t3 = clock_epoch.elapsed().as_nanos() as u64;
        if echoed != t1 {
            return Err(ctl_io(format!(
                "clock pong echoed t1 {echoed}, expected {t1}"
            )));
        }
        samples.push((t1, t2, t3));
    }
    Ok(ClockSync::estimate(&samples))
}

/// The coordinator's post-spawn protocol: rendezvous, job dispatch,
/// outcome collection, shutdown, assembly. Factored from
/// [`run_processes`] so tests can drive it with in-process worker
/// threads (`children` may be empty — liveness checks then skip).
#[allow(clippy::too_many_arguments)]
fn coordinate(
    listener: &TcpListener,
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    worker_grads: &[Vec<Tensor>],
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    pconf: &ProcessConfig,
    children: &mut [std::process::Child],
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    let nodes = worker_grads.len();
    let grad_lens: Vec<u32> = worker_grads[0].iter().map(|t| t.len() as u32).collect();
    let graph = build_graph(strategy, algorithm, partitions, &grad_lens, nodes)?;
    let flows = hipress_core::interp::gradient_flows(worker_grads);
    let replicated = replicate(&flows);
    let layout = FlowLayout::derive(&graph, nodes, &replicated)?;

    // The coordinator's clock for offset probes. With a tracer it is
    // the tracer's epoch, so corrected worker timestamps land
    // directly on the merged trace's timeline.
    let clock_epoch = instruments
        .tracer
        .map(Tracer::epoch)
        .unwrap_or_else(Instant::now);
    let run_start_ns = instruments.tracer.map(Tracer::now_ns);
    let started = Instant::now();

    // Rendezvous: every rank dials in and names its mesh port, then
    // answers a burst of clock probes so its epoch offset is known.
    listener.set_nonblocking(true).map_err(ctl_io)?;
    let deadline = Instant::now() + pconf.connect_deadline();
    let mut streams: Vec<Option<(TcpStream, u16)>> = (0..nodes).map(|_| None).collect();
    let mut syncs: Vec<ClockSync> = vec![ClockSync::default(); nodes];
    let mut checked_in = 0;
    while checked_in < nodes {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false).map_err(ctl_io)?;
                stream.set_nodelay(true).map_err(ctl_io)?;
                stream
                    .set_read_timeout(Some(pconf.connect_deadline()))
                    .map_err(ctl_io)?;
                let Ctl::Hello { rank, mesh_port } = read_ctl(&mut stream)? else {
                    return Err(ctl_io("worker spoke before saying Hello"));
                };
                let slot = streams
                    .get_mut(rank as usize)
                    .ok_or_else(|| ctl_io(format!("Hello from out-of-range rank {rank}")))?;
                if slot.is_some() {
                    return Err(ctl_io(format!("two workers claimed rank {rank}")));
                }
                syncs[rank as usize] = probe_clock(&mut stream, clock_epoch)?;
                *slot = Some((stream, mesh_port));
                checked_in += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                for (rank, child) in children.iter_mut().enumerate() {
                    if let Ok(Some(status)) = child.try_wait() {
                        if streams[rank].is_none() {
                            return Err(Error::sim(format!(
                                "worker {rank} exited during rendezvous ({status})"
                            )));
                        }
                    }
                }
                if Instant::now() >= deadline {
                    return Err(ctl_io(format!(
                        "rendezvous timed out with {checked_in} of {nodes} workers"
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(ctl_io(e)),
        }
    }
    let mut streams: Vec<(TcpStream, u16)> = streams
        .into_iter()
        .map(|s| s.expect("all ranks in"))
        .collect();
    let mesh_ports: Vec<u16> = streams.iter().map(|&(_, p)| p).collect();

    // Dispatch: each rank gets the spec plus its own tensors only.
    for (rank, (stream, _)) in streams.iter_mut().enumerate() {
        let job = Job {
            strategy,
            algorithm,
            partitions: partitions as u32,
            seed,
            nodes: nodes as u32,
            rank: rank as u32,
            config: *config,
            iterations: pcfg.iterations,
            window: pcfg.window,
            kill: pconf.kill_node == Some(rank),
            want_trace: instruments.tracer.is_some(),
            want_metrics: instruments.metrics.is_some(),
            want_progress: instruments.progress.is_some(),
            grad_lens: grad_lens.clone(),
            grads: worker_grads[rank]
                .iter()
                .map(|t| t.as_slice().to_vec())
                .collect(),
            mesh_ports: mesh_ports.clone(),
            elastic: false,
            epoch: 0,
            base_iter: 0,
            die_at_iter: None,
        };
        write_ctl(stream, &Ctl::Job(Box::new(job)))?;
    }
    if let Some(t) = instruments.progress {
        // Every rank just took a job; seed its heartbeat so /healthz
        // shows it before its first iteration retires.
        for rank in 0..nodes {
            t.beat(rank as u32);
        }
    }

    // Collect one outcome per rank, draining any interleaved
    // Progress frames (live telemetry, republished into the hub under
    // the coordinator's clock) along the way.
    type RankOutcome = (
        HashMap<(u32, u32), Cell>,
        RuntimeReport,
        Option<Trace>,
        Option<String>,
    );
    let collect_one =
        |rank: usize, stream: &mut TcpStream| -> (Result<RankOutcome>, Option<Vec<FlightEvent>>) {
            if let Err(e) = stream.set_read_timeout(Some(pconf.run_deadline())) {
                return (Err(ctl_io(e)), None);
            }
            loop {
                match read_ctl(stream) {
                    Ok(Ctl::Progress { rec }) => {
                        if let Some(t) = instruments.progress {
                            t.publish(rec);
                        }
                    }
                    Ok(Ctl::Outcome {
                        cells,
                        report,
                        trace,
                        metrics,
                        flight,
                    }) => {
                        return (
                            Ok((
                                cells
                                    .into_iter()
                                    .map(|(f, p, v)| {
                                        (
                                            (f, p),
                                            Cell {
                                                updated: Some(v),
                                                ..Cell::default()
                                            },
                                        )
                                    })
                                    .collect(),
                                report,
                                trace,
                                metrics,
                            )),
                            Some(flight),
                        )
                    }
                    Ok(Ctl::Failed { error, flight }) => return (Err(error), Some(flight)),
                    Ok(_) => {
                        return (
                            Err(ctl_io(format!("worker {rank} sent an unexpected message"))),
                            None,
                        )
                    }
                    // EOF or timeout without an outcome: the worker died
                    // mid-protocol — its ring died with it. Name it; the
                    // survivors' rings will show its silence.
                    Err(_) => {
                        return (
                            Err(Error::sync(SyncFailure {
                                kind: SyncFailureKind::LinkDead,
                                node: rank,
                                peer: None,
                                task: None,
                                detail: "worker process exited without reporting an outcome".into(),
                            })),
                            None,
                        )
                    }
                }
            }
        };
    let collected: Vec<(Result<RankOutcome>, Option<Vec<FlightEvent>>)> =
        if instruments.progress.is_some() {
            // One collector thread per rank: progress frames must keep
            // draining while slower ranks still run — a sequential
            // reader would let a fast rank's frames back up in kernel
            // buffers. Without a progress sink (no frames before the
            // outcome) the sequential path below stays byte-identical
            // to the pre-telemetry protocol.
            let collect_one = &collect_one;
            std::thread::scope(|s| {
                let handles: Vec<_> = streams
                    .iter_mut()
                    .enumerate()
                    .map(|(rank, (stream, _))| s.spawn(move || collect_one(rank, stream)))
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(rank, h)| {
                        h.join().unwrap_or_else(|_| {
                            (
                                Err(Error::sim(format!("rank {rank} collector panicked"))),
                                None,
                            )
                        })
                    })
                    .collect()
            })
        } else {
            streams
                .iter_mut()
                .enumerate()
                .map(|(rank, (stream, _))| collect_one(rank, stream))
                .collect()
        };
    let mut per_rank: Vec<Result<RankOutcome>> = Vec::with_capacity(nodes);
    let mut flights: Vec<RankFlight> = Vec::new();
    for (rank, (res, flight)) in collected.into_iter().enumerate() {
        if let Some(events) = flight {
            flights.push(RankFlight {
                rank: rank as u32,
                sync: syncs[rank],
                events,
            });
        }
        per_rank.push(res);
    }
    let wall_ns = started.elapsed().as_nanos() as u64;

    // Release the mesh: only now may workers drop their links.
    for (stream, _) in &mut streams {
        let _ = write_ctl(stream, &Ctl::Shutdown);
    }

    // Surface the most root-cause-like failure, if any — after
    // writing the flight dump, which wants exactly that diagnosis.
    if per_rank.iter().any(Result::is_err) {
        let worst = per_rank
            .into_iter()
            .filter_map(Result::err)
            .min_by_key(error_rank)
            .expect("at least one error");
        if let Some(path) = &pconf.flight_dump {
            let dump = PostmortemDump {
                nodes: nodes as u32,
                failed_node: worst
                    .as_sync()
                    .map(|f| f.node as u32)
                    .unwrap_or(UNKNOWN_NODE),
                detail: worst.to_string(),
                ranks: flights,
            };
            if let Err(e) = std::fs::write(path, dump.to_bytes()) {
                eprintln!(
                    "hipress: could not write flight dump {}: {e}",
                    path.display()
                );
            }
        }
        return Err(worst);
    }

    let mut report = RuntimeReport {
        nodes,
        wall_ns,
        per_node_busy_ns: vec![0; nodes],
        iterations: u64::from(pcfg.iterations),
        pipeline_window: u64::from(pcfg.window),
        ..Default::default()
    };
    let mut cells_per_node = Vec::with_capacity(nodes);
    for (rank, r) in per_rank.into_iter().enumerate() {
        let (cells, node_report, wtrace, wmetrics) = r.expect("errors handled above");
        report.absorb(&node_report);
        report.per_node_busy_ns[rank] = node_report.total_busy_ns();
        cells_per_node.push(cells);
        if let Some(tracer) = instruments.tracer {
            if let Some(t) = &wtrace {
                // Stitch this rank's timeline into the global trace,
                // shifted by its measured epoch offset, and record
                // the alignment so validators can honor its
                // uncertainty.
                replay_into(tracer, t, &syncs[rank]);
                record_clock_meta(tracer, rank, &syncs[rank]);
            }
        }
        if let Some(scope) = instruments.metrics {
            if let Some(json) = &wmetrics {
                let snap = MetricsSnapshot::from_json(json)
                    .map_err(|e| ctl_io(format!("worker {rank} metrics snapshot: {e}")))?;
                scope.absorb_snapshot(&snap);
            }
        }
    }
    record_run_span(
        instruments.tracer,
        run_start_ns,
        wall_ns,
        nodes,
        u64::from(pcfg.iterations),
        u64::from(pcfg.window),
        0,
    );
    if let Some(scope) = instruments.metrics {
        record_run_metrics(scope, &report);
    }
    let flows_out = layout.assemble(&cells_per_node)?;
    Ok(RunOutcome {
        flows: flows_out,
        report,
    })
}

/// Waits briefly for children to exit on their own (they just got
/// Shutdown), then kills stragglers — the coordinator never leaks
/// processes, even on error paths.
fn reap(children: &mut [std::process::Child]) {
    let deadline = Instant::now() + Duration::from_secs(5);
    for child in children.iter_mut() {
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
    }
}

/// What one worker's protocol run concluded.
enum NodeRun {
    /// Protocol complete, outcome reported, shutdown received.
    Completed,
    /// The injected kill fired; the process should exit nonzero.
    Killed,
}

/// Entry point for the `hipress node` subcommand: dial the
/// coordinator at `connect`, run rank `rank` of `nodes`, exit.
/// Re-executed by [`run_processes`]; never useful interactively.
///
/// # Errors
///
/// Transport or protocol failures talking to the coordinator or the
/// mesh. Exits the process with code 13 when the job injects a kill.
pub fn node_main(connect: &str, rank: usize, nodes: usize) -> Result<()> {
    let ctl = TcpStream::connect(connect)
        .map_err(|e| ctl_io(format!("node {rank}: dial coordinator {connect}: {e}")))?;
    match run_node(ctl, rank, nodes)? {
        NodeRun::Completed => Ok(()),
        NodeRun::Killed => {
            eprintln!("node {rank}: injected kill after mesh setup");
            std::process::exit(13);
        }
    }
}

/// Worker-side progress forwarder: ships each retired iteration as a
/// [`Ctl::Progress`] frame on a clone of the control stream. The
/// worker writes nothing else on the control channel between `Job`
/// and `Outcome`, so the frames never interleave with another
/// message; the mutex only serializes the (single) driver thread
/// against itself and satisfies the sink's `Sync` bound. Send errors
/// are swallowed — a torn control stream surfaces on the outcome
/// write, and losing live progress must never fail the job.
///
/// Records leave the pipeline stamped with the per-segment *slot* and
/// segment-local iteration number; the sink rewrites both to the
/// worker's stable global rank and the run-global iteration, and
/// stamps the membership epoch, so the coordinator's timeline reads
/// the same whether or not the run is elastic.
#[derive(Debug)]
struct CtlSink {
    stream: Mutex<TcpStream>,
    /// This worker's global rank (equals the slot on fixed runs).
    global_rank: u32,
    /// Membership epoch of the segment being driven.
    epoch: u64,
    /// Global iteration number of the segment's iteration 0.
    base_iter: u32,
}

impl ProgressSink for CtlSink {
    fn publish(&self, mut rec: IterRecord) {
        rec.node = self.global_rank;
        rec.iter += self.base_iter;
        rec.epoch = self.epoch;
        let mut s = self.stream.lock().expect("ctl sink lock");
        let _ = write_ctl(&mut s, &Ctl::Progress { rec });
    }
}

/// How one job segment ended on the worker side.
enum SegmentEnd {
    /// `Outcome`, `Failed`, or `Halted` was written; the worker now
    /// waits for the coordinator's verdict on the control channel.
    Reported,
    /// The injected kill or elastic crash fired; the process must
    /// exit nonzero without another word to anyone.
    Killed,
}

/// One worker's full protocol over an established control stream.
/// Factored from [`node_main`] so tests can run workers as threads.
///
/// A fixed-membership run passes through the segment loop exactly
/// once: Hello → Job → drive → Outcome → Shutdown. An elastic run
/// loops: after each segment the coordinator answers with either
/// [`Msg::EpochBump`] (membership changed — re-announce on a fresh
/// mesh listener and take the next segment's Job) or `Shutdown`. The
/// worker keeps one control stream and one clock epoch for its whole
/// lifetime, so the rendezvous clock sync stays valid across every
/// segment.
fn run_node(mut ctl: TcpStream, rank: usize, nodes: usize) -> Result<NodeRun> {
    // One epoch anchors everything this worker timestamps: the
    // tracer, the flight recorder, and the clock-probe pongs. The
    // coordinator's measured offset therefore aligns all three at
    // once.
    let epoch = Instant::now();
    let recorder = Arc::new(FlightRecorder::new(epoch));
    ctl.set_nodelay(true).map_err(ctl_io)?;
    ctl.set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(ctl_io)?;
    loop {
        // A fresh mesh listener per segment: every epoch rebuilds the
        // data mesh from scratch over the current member set.
        let mesh_listener = TcpListener::bind("127.0.0.1:0").map_err(ctl_io)?;
        let mesh_port = mesh_listener.local_addr().map_err(ctl_io)?.port();
        write_ctl(
            &mut ctl,
            &Ctl::Hello {
                rank: rank as u32,
                mesh_port,
            },
        )?;
        // The coordinator interleaves clock probes between Hello and
        // Job; answer each with our epoch-relative receive time.
        let job = loop {
            match read_ctl(&mut ctl)? {
                Ctl::ClockPing { t1 } => write_ctl(
                    &mut ctl,
                    &Ctl::ClockPong {
                        t1,
                        t2: epoch.elapsed().as_nanos() as u64,
                    },
                )?,
                Ctl::Job(job) => break job,
                _ => return Err(ctl_io(format!("node {rank}: expected a Job"))),
            }
        };
        if !job.elastic && (job.rank as usize != rank || job.nodes as usize != nodes) {
            return Err(ctl_io(format!(
                "node {rank}: job addressed to rank {} of {}",
                job.rank, job.nodes
            )));
        }
        let elastic = job.elastic;
        let (end, link) = run_job(&mut ctl, *job, rank, mesh_listener, epoch, &recorder)?;
        if matches!(end, SegmentEnd::Killed) {
            return Ok(NodeRun::Killed);
        }
        // Hold the mesh link until the coordinator has everyone's
        // report: our reader threads keep acking peers that are still
        // draining. EOF or timeout counts as permission to leave.
        let next = read_ctl(&mut ctl);
        drop(link);
        if !elastic {
            return Ok(NodeRun::Completed);
        }
        match next {
            // Membership changed: loop around, re-announce, and take
            // the next segment's job at the new epoch.
            Ok(Ctl::Member(Msg::EpochBump { .. })) => continue,
            // Shutdown, a torn control stream, or anything else: the
            // run is over for this worker.
            _ => return Ok(NodeRun::Completed),
        }
    }
}

/// Drives a single job segment: build the graph, connect the mesh
/// over the job's slot numbering, run the pipelined protocol, and
/// report back. Returns the mesh link (if one survived) so the caller
/// can hold it open through the post-segment control read.
fn run_job(
    ctl: &mut TcpStream,
    job: Job,
    global_rank: usize,
    mesh_listener: TcpListener,
    epoch: Instant,
    recorder: &Arc<FlightRecorder>,
) -> Result<(SegmentEnd, Option<hipress_fabric::tcp::TcpLink<Msg>>)> {
    // In an elastic segment `job.rank` is this worker's *slot* in the
    // segment's dense 0..nodes numbering; the global rank is only
    // used for labels the coordinator sees.
    let slot = job.rank as usize;
    let nodes = job.nodes as usize;

    let compressor = job.algorithm.build();
    let graph = build_graph(
        job.strategy,
        job.algorithm,
        job.partitions as usize,
        &job.grad_lens,
        nodes,
    )?;
    #[cfg(debug_assertions)]
    hipress_lint::plan::verify(&graph, nodes).into_result()?;

    // This rank holds only its own gradients; every other rank's slot
    // is zero-filled at the spec'd length. The dataflow only reads a
    // node's own flows (at `Source`), so the zeros are never observed —
    // they exist to satisfy the layout's shape validation.
    let mut flows: crate::engine::Flows = HashMap::new();
    for (g, &len) in job.grad_lens.iter().enumerate() {
        let per_node = (0..nodes)
            .map(|w| {
                if w == slot {
                    Tensor::from_vec(job.grads[g].clone())
                } else {
                    Tensor::zeros(len as usize)
                }
            })
            .collect();
        flows.insert(g as u32, per_node);
    }
    let replicated = replicate(&flows);
    let layout = FlowLayout::derive(&graph, nodes, &replicated)?;
    let plan = NodePlan::derive(&graph, nodes);

    // Per-worker instrumentation, built only when the coordinator
    // asked: the trace rides home inside `Outcome`, the metrics as a
    // JSON snapshot. Both share `epoch` so clock alignment is uniform.
    let tracer = job
        .want_trace
        .then(|| Tracer::at_epoch(&format!("casync-rt/node{global_rank}"), epoch));
    let trace = tracer.as_ref().map(|t| single_node_trace(t, global_rank));
    let registry = job.want_metrics.then(hipress_metrics::Registry::new);
    let metrics = registry
        .as_ref()
        .map(|reg| NodeMetrics::new(&reg.root(), global_rank));

    let mesh = MeshConfig {
        tuning: LinkTuning {
            heartbeat: job.config.ft_heartbeat,
            ..LinkTuning::default()
        },
        connect_timeout: Duration::from_secs(10),
        poll_floor: job.config.ft_min_wait,
        poll_ceiling: job.config.ft_max_wait,
        recorder: Some(Arc::clone(recorder)),
        // Each elastic segment's mesh is stamped with its epoch so a
        // zombie segment's late dial can never splice into the
        // rebuilt mesh.
        epoch: job.epoch,
    };
    let peers: Vec<SocketAddr> = job
        .mesh_ports
        .iter()
        .map(|&p| SocketAddr::from(([127, 0, 0, 1], p)))
        .collect();
    let mut link = connect_mesh::<Msg>(slot, nodes, mesh_listener, &peers, &mesh)
        .map_err(|e| fabric_err(slot, e))?;

    if job.kill {
        // Dropping the link shuts the mesh sockets down; peers
        // diagnose the dead rank on their receive paths.
        return Ok((SegmentEnd::Killed, None));
    }

    let pcfg = PipelineConfig {
        iterations: job.iterations,
        window: job.window,
    };
    let progress_sink = if job.want_progress {
        Some(CtlSink {
            stream: Mutex::new(ctl.try_clone().map_err(ctl_io)?),
            global_rank: global_rank as u32,
            epoch: job.epoch,
            base_iter: job.base_iter,
        })
    } else {
        None
    };
    // Elastic segments carry hooks even without a crash injection:
    // survivors read the retirement counter out of them when a peer
    // dies mid-segment.
    let hooks = job.elastic.then(|| ElasticHooks {
        die_at_iter: job.die_at_iter,
        ..ElasticHooks::default()
    });
    let outcome = drive_node(
        &mut link,
        &graph,
        &replicated,
        &layout,
        &plan,
        compressor.as_deref(),
        job.seed,
        &job.config,
        &pcfg,
        trace,
        metrics,
        progress_sink.as_ref().map(|s| s as &dyn ProgressSink),
        hooks.as_ref(),
    );
    match outcome {
        Ok((cells, report)) => {
            let cells = cells
                .into_iter()
                .filter_map(|((f, p), c)| c.updated.map(|v| (f, p, v)))
                .collect();
            write_ctl(
                ctl,
                &Ctl::Outcome {
                    cells,
                    report,
                    trace: tracer.map(Tracer::finish),
                    metrics: registry.map(|r| r.snapshot().to_json()),
                    flight: recorder.dump(),
                },
            )?;
        }
        Err(e) => {
            let f = e.as_sync();
            if job.elastic {
                // Our own injected crash: die hard, no goodbye on any
                // channel — peers must discover the loss through the
                // transport exactly as they would a real `kill -9`.
                if f.is_some_and(|f| f.kind == SyncFailureKind::InjectedCrash && f.node == slot) {
                    return Ok((SegmentEnd::Killed, None));
                }
                // A peer vanished under an elastic segment: report how
                // far we got and whom we blame, then stand by for the
                // epoch bump. Anything that is not a sync failure is a
                // real error and still aborts the run below.
                if let Some(f) = f {
                    // Blame extraction: the fabric names a lost peer as
                    // the failure's `node` (observer as `peer`); the FT
                    // layer names itself as `node` and the unresponsive
                    // peer as `peer`.
                    let dead = if f.node != slot {
                        f.node as u32
                    } else {
                        f.peer.map(|p| p as u32).unwrap_or(u32::MAX)
                    };
                    write_ctl(
                        ctl,
                        &Ctl::Halted {
                            completed: hooks.as_ref().map(ElasticHooks::completed).unwrap_or(0),
                            dead,
                        },
                    )?;
                    return Ok((SegmentEnd::Reported, Some(link)));
                }
            }
            write_ctl(
                ctl,
                &Ctl::Failed {
                    error: e,
                    flight: recorder.dump(),
                },
            )?;
        }
    }
    Ok((SegmentEnd::Reported, Some(link)))
}

/// Runs the full coordinator protocol with worker *threads* standing
/// in for worker processes — same control channel, same TCP mesh,
/// same clock probes, same pipelined driver; only `fork/exec` is
/// skipped. Deterministic like [`run_processes`], minus process
/// isolation, so tests and benches can exercise the distributed
/// observability path without spawn overhead.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_workers(
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    worker_grads: &[Vec<Tensor>],
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    pconf: &ProcessConfig,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    let nodes = worker_grads.len();
    validate_grads(worker_grads)?;
    validate(pcfg)?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(ctl_io)?;
    let addr = listener.local_addr().map_err(ctl_io)?;
    let workers: Vec<_> = (0..nodes)
        .map(|rank| {
            std::thread::spawn(move || {
                let ctl = TcpStream::connect(addr)
                    .map_err(|e| ctl_io(format!("node {rank}: dial coordinator {addr}: {e}")))?;
                run_node(ctl, rank, nodes)
            })
        })
        .collect();
    let out = coordinate(
        &listener,
        strategy,
        algorithm,
        partitions,
        worker_grads,
        seed,
        config,
        pcfg,
        pconf,
        &mut [],
        instruments,
    );
    for w in workers {
        // Worker errors already surfaced through the coordinator.
        let _ = w.join().expect("worker thread panicked");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use hipress_core::interp::gradient_flows;
    use hipress_tensor::synth::{generate, GradientShape};

    fn worker_grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
        (0..nodes)
            .map(|w| {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(g, &n)| {
                        generate(
                            n,
                            GradientShape::Gaussian { std_dev: 1.0 },
                            (w * 1000 + g) as u64,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// Thin wrapper over [`run_threaded_workers`] with the defaults
    /// most tests want: two partitions, no instrumentation.
    fn run_threaded(
        strategy: Strategy,
        algorithm: Algorithm,
        grads: &[Vec<Tensor>],
        seed: u64,
        pcfg: PipelineConfig,
        kill_node: Option<usize>,
    ) -> Result<RunOutcome> {
        let pconf = ProcessConfig {
            kill_node,
            ..ProcessConfig::default()
        };
        run_threaded_workers(
            strategy,
            algorithm,
            2,
            grads,
            seed,
            &RuntimeConfig::default(),
            &pcfg,
            &pconf,
            Instruments::default(),
        )
    }

    /// A worker binary that re-enters `run_processes` (its main
    /// ignores the `node` subcommand) must die with a config error on
    /// the spot — not recursively spawn its own workers.
    #[test]
    fn spawn_guard_stops_recursive_workers() {
        let grads = worker_grads(2, &[16]);
        std::env::set_var(SPAWN_GUARD_ENV, "1");
        let err = run_processes(
            Strategy::CaSyncPs,
            Algorithm::None,
            1,
            &grads,
            1,
            &RuntimeConfig::default(),
            &PipelineConfig::default(),
            &ProcessConfig::default(),
            Instruments::default(),
        )
        .expect_err("guard must trip");
        std::env::remove_var(SPAWN_GUARD_ENV);
        assert!(err.to_string().contains("recursive worker spawn"), "{err}");
    }

    #[test]
    fn socket_mesh_matches_threads_bit_for_bit() {
        let nodes = 3;
        let grads = worker_grads(nodes, &[256, 64]);
        let flows = gradient_flows(&grads);
        let algorithm = Algorithm::OneBit;
        let c = algorithm.build().unwrap();
        let grad_lens: Vec<u32> = grads[0].iter().map(|t| t.len() as u32).collect();
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let graph = build_graph(strategy, algorithm, 2, &grad_lens, nodes).unwrap();
            let threads = run(
                &graph,
                nodes,
                &flows,
                Some(c.as_ref()),
                7,
                &RuntimeConfig::default(),
            )
            .unwrap();
            let sockets = run_threaded(
                strategy,
                algorithm,
                &grads,
                7,
                PipelineConfig {
                    iterations: 2,
                    window: 2,
                },
                None,
            )
            .unwrap();
            assert_eq!(threads.flows.len(), sockets.flows.len());
            for (a, b) in threads.flows.iter().zip(&sockets.flows) {
                assert_eq!(a.flow, b.flow);
                assert_eq!(a.per_node, b.per_node, "{strategy:?} diverged over TCP");
            }
            // A serializing fabric measures real framed traffic.
            assert!(sockets.report.fabric_frames > 0);
            assert!(sockets.report.fabric_bytes_framed > sockets.report.fabric_bytes_payload);
            assert_eq!(sockets.report.iterations, 2);
        }
    }

    #[test]
    fn killed_worker_yields_a_failure_naming_it() {
        let nodes = 3;
        let grads = worker_grads(nodes, &[128]);
        let err = run_threaded(
            Strategy::CaSyncPs,
            Algorithm::OneBit,
            &grads,
            3,
            PipelineConfig {
                iterations: 2,
                window: 2,
            },
            Some(1),
        )
        .unwrap_err();
        let f = err.as_sync().expect("structured failure");
        assert_eq!(f.node, 1, "failure must name the dead rank: {err}");
        assert!(err.to_string().contains("node 1"), "{err}");
    }

    #[test]
    fn ctl_messages_round_trip() {
        let job = Job {
            strategy: Strategy::CaSyncRing,
            algorithm: Algorithm::Tbq { tau: 0.25 },
            partitions: 3,
            seed: 99,
            nodes: 4,
            rank: 2,
            config: RuntimeConfig::default(),
            iterations: 8,
            window: 4,
            kill: true,
            want_trace: true,
            want_metrics: false,
            want_progress: true,
            grad_lens: vec![16, 32],
            grads: vec![vec![1.0, -2.5], vec![f32::NAN]],
            mesh_ports: vec![4000, 4001, 4002, 4003],
            elastic: true,
            epoch: 6,
            base_iter: 5,
            die_at_iter: Some(7),
        };
        let bytes = Ctl::Job(Box::new(job)).to_bytes();
        let Ctl::Job(back) = Ctl::from_bytes(&bytes).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(back.strategy, Strategy::CaSyncRing);
        assert_eq!(back.algorithm, Algorithm::Tbq { tau: 0.25 });
        assert_eq!(back.partitions, 3);
        assert_eq!(back.rank, 2);
        assert!(back.kill);
        assert!(back.want_trace);
        assert!(!back.want_metrics);
        assert!(back.want_progress);
        assert_eq!(back.grad_lens, vec![16, 32]);
        assert_eq!(back.grads[0], vec![1.0, -2.5]);
        assert!(back.grads[1][0].is_nan());
        assert_eq!(back.mesh_ports.len(), 4);
        assert!(back.elastic);
        assert_eq!(back.epoch, 6);
        assert_eq!(back.base_iter, 5);
        assert_eq!(back.die_at_iter, Some(7));
        assert_eq!(
            back.config.ft_heartbeat,
            RuntimeConfig::default().ft_heartbeat
        );

        let mut rep = RuntimeReport::default();
        rep.update.record(123);
        rep.fabric_frames = 7;
        rep.iter_span_ns_total = 5555;
        let mut trace_in = Trace::new("casync-rt/node0");
        let t = trace_in.thread_track("node0");
        trace_in.push_span(t, "send", "send", 10, 5, &[("task", 3)]);
        let epoch = Instant::now();
        let rec = FlightRecorder::new(epoch);
        rec.record(hipress_fabric::FlightKind::SendData, 1, 9, 64);
        let out = Ctl::Outcome {
            cells: vec![(0, 1, vec![3.5, -0.0])],
            report: rep.clone(),
            trace: Some(trace_in.clone()),
            metrics: Some("{}".into()),
            flight: rec.dump(),
        };
        let Ctl::Outcome {
            cells,
            report,
            trace,
            metrics,
            flight,
        } = Ctl::from_bytes(&out.to_bytes()).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(cells[0].0, 0);
        assert_eq!(cells[0].2[0], 3.5);
        assert_eq!(report, rep);
        assert_eq!(trace.unwrap(), trace_in);
        assert_eq!(metrics.as_deref(), Some("{}"));
        assert_eq!(flight.len(), 1);
        assert_eq!(flight[0].peer, 1);
        assert_eq!(flight[0].seq, 9);

        let fail = Ctl::Failed {
            error: Error::sync(SyncFailure {
                kind: SyncFailureKind::LinkDead,
                node: 1,
                peer: Some(0),
                task: Some(42),
                detail: "seq 9 unacknowledged".into(),
            }),
            flight: rec.dump(),
        };
        let Ctl::Failed { error: e, flight } = Ctl::from_bytes(&fail.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(e.as_sync().unwrap().node, 1);
        assert_eq!(e.as_sync().unwrap().task, Some(42));
        assert_eq!(flight.len(), 1);

        let echo = Ctl::Failed {
            error: Error::sim("aborted"),
            flight: Vec::new(),
        };
        let Ctl::Failed { error: e, .. } = Ctl::from_bytes(&echo.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert!(matches!(&e, Error::Sim(m) if m == "aborted"));

        let ping = Ctl::ClockPing { t1: 77 };
        let Ctl::ClockPing { t1 } = Ctl::from_bytes(&ping.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(t1, 77);
        let pong = Ctl::ClockPong { t1: 77, t2: 99 };
        let Ctl::ClockPong { t1, t2 } = Ctl::from_bytes(&pong.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!((t1, t2), (77, 99));

        // Every IterRecord field gets a distinct value, so a field the
        // codec skips shows up as an equality failure here.
        let rec_in = IterRecord {
            node: 1,
            iter: 2,
            ts_ns: 3,
            span_ns: 4,
            comp_ns: 5,
            commu_ns: 6,
            bytes_wire: 7,
            messages: 8,
            retransmits: 9,
            faults: 10,
            window: 11,
            epoch: 12,
        };
        let Ctl::Progress { rec } =
            Ctl::from_bytes(&Ctl::Progress { rec: rec_in }.to_bytes()).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(rec, rec_in);

        // The rendezvous-plane frames ride the control channel by
        // delegating to the Msg wire codec.
        let member = Ctl::Member(Msg::Welcome {
            epoch: 2,
            from_iter: 9,
            members: vec![0, 2, 3],
        });
        let Ctl::Member(Msg::Welcome {
            epoch,
            from_iter,
            members,
        }) = Ctl::from_bytes(&member.to_bytes()).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!((epoch, from_iter), (2, 9));
        assert_eq!(members, vec![0, 2, 3]);

        let halted = Ctl::Halted {
            completed: 4,
            dead: 1,
        };
        let Ctl::Halted { completed, dead } = Ctl::from_bytes(&halted.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!((completed, dead), (4, 1));
    }

    /// Every [`RuntimeReport`] field must survive the control-channel
    /// codec. Each field carries a distinct value and is asserted via
    /// whole-struct equality, so a new field that the codec forgets
    /// shows up here (and the exhaustive destructuring in
    /// `put_report` makes forgetting a compile error first).
    #[test]
    fn report_codec_covers_every_field() {
        let mut prims = Vec::new();
        for i in 0..8u64 {
            let mut p = PrimStat::default();
            p.count = 10 + i;
            p.busy_ns = 1000 + i;
            prims.push(p);
        }
        let rep = RuntimeReport {
            nodes: 3,
            wall_ns: 123_456,
            source: prims[0],
            encode: prims[1],
            decode: prims[2],
            merge: prims[3],
            send: prims[4],
            recv: prims[5],
            update: prims[6],
            barrier: prims[7],
            local_agg_ns: 777,
            bytes_wire: 2048,
            bytes_raw: 8192,
            messages: 55,
            comp_batch_launches: 4,
            per_node_busy_ns: vec![11, 22, 33],
            faults: FaultReport {
                injected_drops: 1,
                injected_dups: 2,
                injected_reorders: 3,
                injected_delays: 4,
                injected_corruptions: 5,
                injected_stalls: 6,
                retries: 7,
                nacks: 8,
                duplicates_ignored: 9,
                corruptions_detected: 10,
                degraded_chunks: 11,
                verdicts: vec![StragglerVerdict {
                    node: 1,
                    peer: 2,
                    waited_ns: 999,
                    action: DegradeAction::Skipped,
                }],
            },
            fabric_frames: 60,
            fabric_bytes_framed: 61,
            fabric_bytes_payload: 62,
            fabric_retransmits: 63,
            iterations: 16,
            pipeline_window: 5,
            iter_span_ns_total: 424_242,
            membership: vec![
                crate::report::EpochRecord {
                    epoch: 0,
                    from_iter: 0,
                    members: vec![0, 1, 2],
                },
                crate::report::EpochRecord {
                    epoch: 1,
                    from_iter: 9,
                    members: vec![0, 2],
                },
            ],
            evicted: vec![1],
        };
        let mut w = Writer::new();
        put_report(&mut w, &rep);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let back = get_report(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, rep);
    }

    /// The pipeline edge configs — a single iteration, a serial
    /// window, and a window wider than the whole run — produce the
    /// same bitstream over the TCP mesh as the single-iteration
    /// thread engine. `window = 1` degenerates to serial execution;
    /// `window > iterations` admits everything up front; both must be
    /// behavioral no-ops for the result.
    #[test]
    fn edge_pipeline_configs_match_serial_over_tcp() {
        let nodes = 2;
        let grads = worker_grads(nodes, &[96]);
        let flows = gradient_flows(&grads);
        let algorithm = Algorithm::OneBit;
        let c = algorithm.build().unwrap();
        let grad_lens: Vec<u32> = grads[0].iter().map(|t| t.len() as u32).collect();
        let graph = build_graph(Strategy::CaSyncPs, algorithm, 2, &grad_lens, nodes).unwrap();
        let serial = run(
            &graph,
            nodes,
            &flows,
            Some(c.as_ref()),
            5,
            &RuntimeConfig::default(),
        )
        .unwrap();
        for (iterations, window) in [(1, 1), (3, 1), (2, 5)] {
            let sockets = run_threaded(
                Strategy::CaSyncPs,
                algorithm,
                &grads,
                5,
                PipelineConfig { iterations, window },
                None,
            )
            .unwrap();
            assert_eq!(serial.flows.len(), sockets.flows.len());
            for (a, b) in serial.flows.iter().zip(&sockets.flows) {
                assert_eq!(a.flow, b.flow);
                assert_eq!(
                    a.per_node, b.per_node,
                    "TCP diverged at {iterations}x window {window}"
                );
            }
            assert_eq!(sockets.report.iterations, u64::from(iterations));
            assert_eq!(sockets.report.pipeline_window, u64::from(window));
        }
    }

    /// Degenerate pipeline configs are rejected by the coordinator
    /// before any worker is spawned — the same `validate` gate the
    /// thread path applies.
    #[test]
    fn bad_pipeline_configs_rejected_before_spawn() {
        let grads = worker_grads(2, &[16]);
        for pcfg in [
            PipelineConfig {
                iterations: 0,
                window: 1,
            },
            PipelineConfig {
                iterations: 1,
                window: 0,
            },
        ] {
            let err = run_processes(
                Strategy::CaSyncPs,
                Algorithm::None,
                1,
                &grads,
                1,
                &RuntimeConfig::default(),
                &pcfg,
                &ProcessConfig::default(),
                Instruments::default(),
            )
            .expect_err("validation must reject the config");
            assert!(
                matches!(err, Error::Config(_)),
                "want a config error, got {err}"
            );
        }
    }

    /// With a telemetry hub attached, workers stream `Ctl::Progress`
    /// frames over the control channel and the coordinator republishes
    /// every one: the hub ends the run holding one record per rank per
    /// iteration, restamped on the coordinator's clock.
    #[test]
    fn progress_frames_reach_the_coordinator_hub() {
        let nodes = 2;
        let grads = worker_grads(nodes, &[96]);
        let hub = hipress_obs::Telemetry::new(
            hipress_metrics::Registry::new(),
            hipress_obs::WatchConfig::default(),
        );
        let iterations = 3u32;
        run_threaded_workers(
            Strategy::CaSyncPs,
            Algorithm::OneBit,
            2,
            &grads,
            5,
            &RuntimeConfig::default(),
            &PipelineConfig {
                iterations,
                window: 2,
            },
            &ProcessConfig::default(),
            Instruments {
                tracer: None,
                metrics: None,
                progress: Some(&hub),
            },
        )
        .unwrap();
        assert_eq!(
            hub.records_published(),
            u64::from(iterations) * nodes as u64
        );
        let (recs, _) = hub.read_events(0);
        let mut last_ts = 0;
        for r in &recs {
            assert!(r.span_ns > 0);
            assert!(r.ts_ns >= last_ts, "hub stamps arrivals monotonically");
            last_ts = r.ts_ns;
        }
        for rank in 0..nodes as u32 {
            assert_eq!(
                recs.iter().filter(|r| r.node == rank).count(),
                iterations as usize
            );
        }
        // Dispatch seeded a heartbeat for every rank.
        assert_eq!(hub.heartbeat_ages_ns().len(), nodes);
    }

    #[test]
    fn error_rank_prefers_diagnoses_over_echoes() {
        let dead = Error::sync(SyncFailure {
            kind: SyncFailureKind::LinkDead,
            node: 1,
            peer: Some(0),
            task: None,
            detail: String::new(),
        });
        let echo = Error::sim("aborted");
        let other = Error::sim("node 2 wedged");
        assert!(error_rank(&dead) < error_rank(&other));
        assert!(error_rank(&other) < error_rank(&echo));
    }
}

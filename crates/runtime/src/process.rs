//! Multi-process CaSync-RT: one OS process per node over a loopback
//! TCP mesh.
//!
//! [`run_processes`] is the coordinator. It binds a rendezvous
//! socket, spawns one worker process per node (`hipress node
//! --connect ADDR --rank R --nodes N` — the binary re-executes
//! itself), and speaks a small length-prefixed control protocol with
//! each child:
//!
//! 1. Child binds its mesh listener, dials the coordinator, and sends
//!    [`Ctl::Hello`] with its rank and mesh port.
//! 2. Once every rank has checked in, the coordinator sends each a
//!    [`Ctl::Job`]: the full synchronization spec (strategy,
//!    algorithm, partitions, seed, runtime knobs, pipeline shape),
//!    every rank's mesh port, and *that rank's* gradient tensors
//!    only — each worker owns its own data, exactly as real data
//!    parallel training does.
//! 3. Children build the identical task graph from the spec, connect
//!    the full TCP mesh ([`hipress_fabric::tcp::connect_mesh`]), and
//!    run the pipelined driver ([`crate::pipeline`]) over it.
//! 4. Each child reports [`Ctl::Outcome`] (its updated chunks and
//!    measured report) or [`Ctl::Failed`], then *holds its mesh link
//!    open* until the coordinator's [`Ctl::Shutdown`] — reader
//!    threads keep servicing peers' acks, so a fast finisher never
//!    tears the sockets down under a slow one.
//!
//! The child rebuilds its graph from the same inputs the in-process
//! backends use, and every node's flow lengths are known from the
//! spec (ranks zero-fill the tensors they do not own; the dataflow
//! only ever reads a node's own flows at `Source`). Together with the
//! per-task codec seeding this makes the process backend bit-for-bit
//! identical to [`Backend::Threads`][crate::Backend::Threads] and the
//! interpreter.
//!
//! A worker that dies mid-protocol (crash, kill, [`ProcessConfig::
//! kill_node`] fault injection) surfaces twice: survivors diagnose
//! the dead mesh link and report a structured failure naming the dead
//! rank, and the coordinator sees the child's control stream close
//! without an outcome. Either way [`run_processes`] returns a
//! [`SyncFailure`] naming the dead node — never a hang.

use crate::engine::{replicate, Cell, FlowLayout, Msg, NodePlan, RunOutcome, RuntimeConfig};
use crate::pipeline::{drive_node, fabric_err, validate, PipelineConfig};
use crate::report::{PrimStat, RuntimeReport};
use hipress_compress::Algorithm;
use hipress_core::{
    ClusterConfig, CompressionSpec, GradPlan, IterationSpec, Strategy, SyncGradient,
};
use hipress_fabric::tcp::{connect_mesh, MeshConfig};
use hipress_fabric::{DecodeError, LinkTuning, Reader, WireMsg, Writer};
use hipress_tensor::Tensor;
use hipress_util::{Error, Result, SyncFailure, SyncFailureKind};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Inherited marker that a process *is* a spawned worker. A worker
/// binary that fails to dispatch the `node` subcommand re-runs its
/// caller's `main` instead; if that path reaches [`run_processes`]
/// again, the guard turns what would be a process fork-bomb into an
/// immediate configuration error.
const SPAWN_GUARD_ENV: &str = "HIPRESS_SPAWNED_WORKER";

/// How the coordinator launches and supervises worker processes.
#[derive(Debug, Clone, Default)]
pub struct ProcessConfig {
    /// The worker binary to execute with `node --connect ...`. When
    /// unset, `HIPRESS_NODE_BIN` is consulted, then the current
    /// executable (the `hipress` CLI re-executes itself).
    pub binary: Option<PathBuf>,
    /// Fault injection: this rank exits mid-protocol right after mesh
    /// setup, exercising the dead-link diagnosis end to end.
    pub kill_node: Option<usize>,
    /// How long workers may take to check in at rendezvous.
    /// `Duration::ZERO` means the 10 s default.
    pub connect_timeout: Duration,
    /// How long each worker may take to report its outcome.
    /// `Duration::ZERO` means the 60 s default.
    pub run_timeout: Duration,
}

impl ProcessConfig {
    fn connect_deadline(&self) -> Duration {
        if self.connect_timeout.is_zero() {
            Duration::from_secs(10)
        } else {
            self.connect_timeout
        }
    }

    fn run_deadline(&self) -> Duration {
        if self.run_timeout.is_zero() {
            Duration::from_secs(60)
        } else {
            self.run_timeout
        }
    }
}

/// Everything a worker needs to run its share of one synchronization
/// job: the spec to rebuild the graph from, the runtime knobs, the
/// mesh topology, and this rank's own gradients.
struct Job {
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: u32,
    seed: u64,
    nodes: u32,
    rank: u32,
    config: RuntimeConfig,
    iterations: u32,
    window: u32,
    /// Exit mid-protocol after mesh setup (fault injection).
    kill: bool,
    /// Element count of every gradient (identical across ranks).
    grad_lens: Vec<u32>,
    /// This rank's gradient values, parallel to `grad_lens`.
    grads: Vec<Vec<f32>>,
    /// Every rank's mesh listener port, indexed by rank.
    mesh_ports: Vec<u16>,
}

/// The coordinator-worker control protocol.
enum Ctl {
    /// Worker → coordinator: `rank` is listening for mesh peers on
    /// `mesh_port`.
    Hello { rank: u32, mesh_port: u16 },
    /// Coordinator → worker: the job to run.
    Job(Box<Job>),
    /// Worker → coordinator: the protocol completed; here are the
    /// updated chunk values `(flow, part, elements)` and the measured
    /// report.
    Outcome {
        cells: Vec<(u32, u32, Vec<f32>)>,
        report: RuntimeReport,
    },
    /// Worker → coordinator: the protocol failed.
    Failed(Error),
    /// Coordinator → worker: all outcomes collected; tear the mesh
    /// down and exit.
    Shutdown,
}

const CTL_HELLO: u8 = 1;
const CTL_JOB: u8 = 2;
const CTL_OUTCOME: u8 = 3;
const CTL_FAILED: u8 = 4;
const CTL_SHUTDOWN: u8 = 5;

fn put_strategy(w: &mut Writer, s: Strategy) {
    w.put_u8(match s {
        Strategy::CaSyncPs => 1,
        Strategy::CaSyncRing => 2,
        Strategy::BytePs => 3,
        Strategy::HorovodRing => 4,
    });
}

fn get_strategy(r: &mut Reader<'_>) -> std::result::Result<Strategy, DecodeError> {
    match r.u8()? {
        1 => Ok(Strategy::CaSyncPs),
        2 => Ok(Strategy::CaSyncRing),
        3 => Ok(Strategy::BytePs),
        4 => Ok(Strategy::HorovodRing),
        t => Err(DecodeError::BadTag {
            what: "strategy",
            tag: u64::from(t),
        }),
    }
}

fn put_algorithm(w: &mut Writer, a: Algorithm) {
    match a {
        Algorithm::None => w.put_u8(0),
        Algorithm::OneBit => w.put_u8(1),
        Algorithm::Tbq { tau } => {
            w.put_u8(2);
            w.put_f32(tau);
        }
        Algorithm::TernGrad { bitwidth } => {
            w.put_u8(3);
            w.put_u8(bitwidth);
        }
        Algorithm::Dgc { rate } => {
            w.put_u8(4);
            w.put_f64(rate);
        }
        Algorithm::GradDrop { rate } => {
            w.put_u8(5);
            w.put_f64(rate);
        }
    }
}

fn get_algorithm(r: &mut Reader<'_>) -> std::result::Result<Algorithm, DecodeError> {
    match r.u8()? {
        0 => Ok(Algorithm::None),
        1 => Ok(Algorithm::OneBit),
        2 => Ok(Algorithm::Tbq { tau: r.f32()? }),
        3 => Ok(Algorithm::TernGrad { bitwidth: r.u8()? }),
        4 => Ok(Algorithm::Dgc { rate: r.f64()? }),
        5 => Ok(Algorithm::GradDrop { rate: r.f64()? }),
        t => Err(DecodeError::BadTag {
            what: "algorithm",
            tag: u64::from(t),
        }),
    }
}

fn put_prim(w: &mut Writer, s: PrimStat) {
    w.put_u64(s.count);
    w.put_u64(s.busy_ns);
}

fn get_prim(r: &mut Reader<'_>) -> std::result::Result<PrimStat, DecodeError> {
    Ok(PrimStat {
        count: r.u64()?,
        busy_ns: r.u64()?,
    })
}

/// Encodes the scalar measurements a worker accumulates. Run-level
/// fields the coordinator owns (`nodes`, `wall_ns`,
/// `per_node_busy_ns`, `iterations`, `pipeline_window`) and the fault
/// report (always empty on the pipelined path — the process fabric's
/// reliability stats ride in the `fabric_*` counters) are not
/// transferred.
fn put_report(w: &mut Writer, rep: &RuntimeReport) {
    for s in [
        rep.source,
        rep.encode,
        rep.decode,
        rep.merge,
        rep.send,
        rep.recv,
        rep.update,
        rep.barrier,
    ] {
        put_prim(w, s);
    }
    w.put_u64(rep.local_agg_ns);
    w.put_u64(rep.bytes_wire);
    w.put_u64(rep.bytes_raw);
    w.put_u64(rep.messages);
    w.put_u64(rep.comp_batch_launches);
    w.put_u64(rep.fabric_frames);
    w.put_u64(rep.fabric_bytes_framed);
    w.put_u64(rep.fabric_bytes_payload);
    w.put_u64(rep.fabric_retransmits);
    w.put_u64(rep.iter_span_ns_total);
}

fn get_report(r: &mut Reader<'_>) -> std::result::Result<RuntimeReport, DecodeError> {
    let mut rep = RuntimeReport::default();
    for s in [
        &mut rep.source,
        &mut rep.encode,
        &mut rep.decode,
        &mut rep.merge,
        &mut rep.send,
        &mut rep.recv,
        &mut rep.update,
        &mut rep.barrier,
    ] {
        *s = get_prim(r)?;
    }
    rep.local_agg_ns = r.u64()?;
    rep.bytes_wire = r.u64()?;
    rep.bytes_raw = r.u64()?;
    rep.messages = r.u64()?;
    rep.comp_batch_launches = r.u64()?;
    rep.fabric_frames = r.u64()?;
    rep.fabric_bytes_framed = r.u64()?;
    rep.fabric_bytes_payload = r.u64()?;
    rep.fabric_retransmits = r.u64()?;
    rep.iter_span_ns_total = r.u64()?;
    Ok(rep)
}

fn put_error(w: &mut Writer, e: &Error) {
    if let Error::Sync(f) = e {
        w.put_u8(1);
        w.put_u8(match f.kind {
            SyncFailureKind::RecvTimeout => 0,
            SyncFailureKind::LinkDead => 1,
            SyncFailureKind::Straggler => 2,
            SyncFailureKind::InjectedCrash => 3,
            SyncFailureKind::Aborted => 4,
        });
        w.put_u64(f.node as u64);
        match f.peer {
            Some(p) => {
                w.put_u8(1);
                w.put_u64(p as u64);
            }
            None => w.put_u8(0),
        }
        match f.task {
            Some(t) => {
                w.put_u8(1);
                w.put_u32(t);
            }
            None => w.put_u8(0),
        }
        w.put_str(&f.detail);
    } else {
        // Other categories travel as their message; "aborted" echoes
        // keep their exact text so root-cause preference still works.
        w.put_u8(0);
        w.put_str(&e.to_string());
        w.put_u8(matches!(e, Error::Sim(m) if m == "aborted") as u8);
    }
}

fn get_error(r: &mut Reader<'_>) -> std::result::Result<Error, DecodeError> {
    if r.u8()? == 1 {
        let kind = match r.u8()? {
            0 => SyncFailureKind::RecvTimeout,
            1 => SyncFailureKind::LinkDead,
            2 => SyncFailureKind::Straggler,
            3 => SyncFailureKind::InjectedCrash,
            4 => SyncFailureKind::Aborted,
            t => {
                return Err(DecodeError::BadTag {
                    what: "failure kind",
                    tag: u64::from(t),
                })
            }
        };
        let node = r.u64()? as usize;
        let peer = if r.u8()? == 1 {
            Some(r.u64()? as usize)
        } else {
            None
        };
        let task = if r.u8()? == 1 { Some(r.u32()?) } else { None };
        let detail = r.str()?.to_string();
        Ok(Error::sync(SyncFailure {
            kind,
            node,
            peer,
            task,
            detail,
        }))
    } else {
        let msg = r.str()?.to_string();
        let aborted = r.u8()? == 1;
        Ok(if aborted {
            Error::sim("aborted")
        } else {
            Error::sim(msg)
        })
    }
}

impl WireMsg for Ctl {
    fn encode(&self, w: &mut Writer) {
        match self {
            Ctl::Hello { rank, mesh_port } => {
                w.put_u8(CTL_HELLO);
                w.put_u32(*rank);
                w.put_u16(*mesh_port);
            }
            Ctl::Job(j) => {
                w.put_u8(CTL_JOB);
                put_strategy(w, j.strategy);
                put_algorithm(w, j.algorithm);
                w.put_u32(j.partitions);
                w.put_u64(j.seed);
                w.put_u32(j.nodes);
                w.put_u32(j.rank);
                w.put_u8(u8::from(j.config.batch_compression));
                w.put_u64(j.config.comp_batch_max_task_bytes);
                w.put_u64(j.config.inbox_timeout.as_nanos() as u64);
                w.put_u64(j.config.ft_min_wait.as_nanos() as u64);
                w.put_u64(j.config.ft_max_wait.as_nanos() as u64);
                w.put_u64(j.config.ft_heartbeat.as_nanos() as u64);
                w.put_u32(j.iterations);
                w.put_u32(j.window);
                w.put_u8(u8::from(j.kill));
                w.put_u32(j.grad_lens.len() as u32);
                for &n in &j.grad_lens {
                    w.put_u32(n);
                }
                w.put_u32(j.grads.len() as u32);
                for g in &j.grads {
                    w.put_f32s(g);
                }
                w.put_u32(j.mesh_ports.len() as u32);
                for &p in &j.mesh_ports {
                    w.put_u16(p);
                }
            }
            Ctl::Outcome { cells, report } => {
                w.put_u8(CTL_OUTCOME);
                w.put_u32(cells.len() as u32);
                for (f, p, v) in cells {
                    w.put_u32(*f);
                    w.put_u32(*p);
                    w.put_f32s(v);
                }
                put_report(w, report);
            }
            Ctl::Failed(e) => {
                w.put_u8(CTL_FAILED);
                put_error(w, e);
            }
            Ctl::Shutdown => w.put_u8(CTL_SHUTDOWN),
        }
    }

    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, DecodeError> {
        match r.u8()? {
            CTL_HELLO => Ok(Ctl::Hello {
                rank: r.u32()?,
                mesh_port: r.u16()?,
            }),
            CTL_JOB => {
                let strategy = get_strategy(r)?;
                let algorithm = get_algorithm(r)?;
                let partitions = r.u32()?;
                let seed = r.u64()?;
                let nodes = r.u32()?;
                let rank = r.u32()?;
                let config = RuntimeConfig {
                    batch_compression: r.u8()? != 0,
                    comp_batch_max_task_bytes: r.u64()?,
                    inbox_timeout: Duration::from_nanos(r.u64()?),
                    ft_min_wait: Duration::from_nanos(r.u64()?),
                    ft_max_wait: Duration::from_nanos(r.u64()?),
                    ft_heartbeat: Duration::from_nanos(r.u64()?),
                };
                let iterations = r.u32()?;
                let window = r.u32()?;
                let kill = r.u8()? != 0;
                let mut grad_lens = Vec::new();
                for _ in 0..r.u32()? {
                    grad_lens.push(r.u32()?);
                }
                let mut grads = Vec::new();
                for _ in 0..r.u32()? {
                    grads.push(r.f32s()?);
                }
                let mut mesh_ports = Vec::new();
                for _ in 0..r.u32()? {
                    mesh_ports.push(r.u16()?);
                }
                Ok(Ctl::Job(Box::new(Job {
                    strategy,
                    algorithm,
                    partitions,
                    seed,
                    nodes,
                    rank,
                    config,
                    iterations,
                    window,
                    kill,
                    grad_lens,
                    grads,
                    mesh_ports,
                })))
            }
            CTL_OUTCOME => {
                let mut cells = Vec::new();
                for _ in 0..r.u32()? {
                    cells.push((r.u32()?, r.u32()?, r.f32s()?));
                }
                Ok(Ctl::Outcome {
                    cells,
                    report: get_report(r)?,
                })
            }
            CTL_FAILED => Ok(Ctl::Failed(get_error(r)?)),
            CTL_SHUTDOWN => Ok(Ctl::Shutdown),
            t => Err(DecodeError::BadTag {
                what: "ctl",
                tag: u64::from(t),
            }),
        }
    }
}

/// Control frames are a plain u32 length prefix + [`WireMsg`] body —
/// the rendezvous channel is point-to-point and short-lived, so the
/// mesh's checksummed reliability discipline would be dead weight.
const CTL_MAX_BYTES: u32 = 1 << 30;

fn ctl_io(detail: impl std::fmt::Display) -> Error {
    Error::sim(format!("process control channel: {detail}"))
}

fn write_ctl(stream: &mut TcpStream, msg: &Ctl) -> Result<()> {
    let body = msg.to_bytes();
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&body);
    stream.write_all(&buf).map_err(ctl_io)
}

fn read_ctl(stream: &mut TcpStream) -> Result<Ctl> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).map_err(ctl_io)?;
    let len = u32::from_le_bytes(len);
    if len > CTL_MAX_BYTES {
        return Err(ctl_io(format!("oversized control frame ({len} bytes)")));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body).map_err(ctl_io)?;
    Ctl::from_bytes(&body).map_err(|e| ctl_io(format!("bad control frame: {e}")))
}

/// Rebuilds the synchronization graph every backend agrees on from a
/// job spec — byte counts and plan flags exactly as the facade derives
/// them from the tensors themselves.
fn build_graph(
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    grad_lens: &[u32],
    nodes: usize,
) -> Result<hipress_core::graph::TaskGraph> {
    let compressor = algorithm.build();
    let spec = IterationSpec {
        gradients: grad_lens
            .iter()
            .enumerate()
            .map(|(g, &n)| SyncGradient {
                name: format!("g{g}"),
                bytes: u64::from(n) * 4,
                ready_offset_ns: 0,
                plan: GradPlan {
                    compress: compressor.is_some(),
                    partitions,
                },
            })
            .collect(),
        compression: compressor.as_deref().map(CompressionSpec::of),
    };
    strategy.build(&ClusterConfig::ec2(nodes), &spec)
}

/// How root-cause-like an error is, for picking which of several
/// worker failures to surface: structured diagnoses first (by their
/// own severity rank), then other errors, then "aborted" echoes.
fn error_rank(e: &Error) -> u8 {
    match e {
        Error::Sync(f) => f.kind.rank(),
        Error::Sim(m) if m == "aborted" => u8::MAX,
        _ => 3,
    }
}

/// Executes the job as `nodes` real OS processes synchronizing over a
/// loopback TCP mesh, returning the same [`RunOutcome`] shape as the
/// in-process backends — and bit-identical flows.
///
/// `worker_grads[w][g]` is worker `w`'s gradient `g`, as in the
/// facade. The report aggregates every worker's measurements and the
/// fabric's framing counters; `wall_ns` covers rendezvous through the
/// last outcome (process spawn cost excluded, mesh setup included).
///
/// # Errors
///
/// Configuration errors for bad shapes or an unresolvable worker
/// binary; a structured [`SyncFailure`] naming the dead node when a
/// worker dies mid-protocol; transport errors from the control
/// channel.
#[allow(clippy::too_many_arguments)]
pub fn run_processes(
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    worker_grads: &[Vec<Tensor>],
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    pconf: &ProcessConfig,
) -> Result<RunOutcome> {
    let nodes = worker_grads.len();
    validate_grads(worker_grads)?;
    validate(pcfg)?;
    if let Some(k) = pconf.kill_node {
        if k >= nodes {
            return Err(Error::config(format!(
                "kill_node {k} out of range for {nodes} workers"
            )));
        }
    }

    // Recursion guard: if the resolved worker binary does not handle
    // the `node` subcommand (a library consumer's own executable, via
    // current_exe), each spawned child would re-run its caller's main
    // and fork-bomb. Workers inherit this marker; a worker that winds
    // up back here is such a re-run and must die, not spawn.
    if std::env::var_os(SPAWN_GUARD_ENV).is_some() {
        return Err(Error::config(
            "recursive worker spawn: the worker binary re-entered run_processes instead of \
             handling the `node` subcommand — point ProcessConfig.binary (or HIPRESS_NODE_BIN) \
             at a binary that dispatches `node` to node_main",
        ));
    }

    let listener = TcpListener::bind("127.0.0.1:0").map_err(ctl_io)?;
    let addr = listener.local_addr().map_err(ctl_io)?;
    let binary = resolve_binary(pconf)?;

    let mut children = Vec::with_capacity(nodes);
    for rank in 0..nodes {
        let child = std::process::Command::new(&binary)
            .env(SPAWN_GUARD_ENV, "1")
            .arg("node")
            .arg("--connect")
            .arg(addr.to_string())
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--nodes")
            .arg(nodes.to_string())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| {
                Error::config(format!(
                    "failed to spawn worker {rank} ({}): {e}",
                    binary.display()
                ))
            })?;
        children.push(child);
    }

    let result = coordinate(
        &listener,
        strategy,
        algorithm,
        partitions,
        worker_grads,
        seed,
        config,
        pcfg,
        pconf,
        &mut children,
    );
    reap(&mut children);
    result
}

fn validate_grads(worker_grads: &[Vec<Tensor>]) -> Result<()> {
    if worker_grads.len() < 2 {
        return Err(Error::config("synchronization needs at least 2 workers"));
    }
    let first = &worker_grads[0];
    for (w, g) in worker_grads.iter().enumerate() {
        if g.len() != first.len() || g.iter().zip(first).any(|(a, b)| a.len() != b.len()) {
            return Err(Error::config(format!(
                "worker {w} gradient shapes differ from worker 0"
            )));
        }
    }
    Ok(())
}

fn resolve_binary(pconf: &ProcessConfig) -> Result<PathBuf> {
    if let Some(b) = &pconf.binary {
        return Ok(b.clone());
    }
    if let Ok(b) = std::env::var("HIPRESS_NODE_BIN") {
        return Ok(PathBuf::from(b));
    }
    std::env::current_exe().map_err(|e| Error::config(format!("cannot resolve worker binary: {e}")))
}

/// The coordinator's post-spawn protocol: rendezvous, job dispatch,
/// outcome collection, shutdown, assembly. Factored from
/// [`run_processes`] so tests can drive it with in-process worker
/// threads (`children` may be empty — liveness checks then skip).
#[allow(clippy::too_many_arguments)]
fn coordinate(
    listener: &TcpListener,
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    worker_grads: &[Vec<Tensor>],
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    pconf: &ProcessConfig,
    children: &mut [std::process::Child],
) -> Result<RunOutcome> {
    let nodes = worker_grads.len();
    let grad_lens: Vec<u32> = worker_grads[0].iter().map(|t| t.len() as u32).collect();
    let graph = build_graph(strategy, algorithm, partitions, &grad_lens, nodes)?;
    let flows = hipress_core::interp::gradient_flows(worker_grads);
    let replicated = replicate(&flows);
    let layout = FlowLayout::derive(&graph, nodes, &replicated)?;

    let started = Instant::now();

    // Rendezvous: every rank dials in and names its mesh port.
    listener.set_nonblocking(true).map_err(ctl_io)?;
    let deadline = Instant::now() + pconf.connect_deadline();
    let mut streams: Vec<Option<(TcpStream, u16)>> = (0..nodes).map(|_| None).collect();
    let mut checked_in = 0;
    while checked_in < nodes {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false).map_err(ctl_io)?;
                stream.set_nodelay(true).map_err(ctl_io)?;
                stream
                    .set_read_timeout(Some(pconf.connect_deadline()))
                    .map_err(ctl_io)?;
                let Ctl::Hello { rank, mesh_port } = read_ctl(&mut stream)? else {
                    return Err(ctl_io("worker spoke before saying Hello"));
                };
                let slot = streams
                    .get_mut(rank as usize)
                    .ok_or_else(|| ctl_io(format!("Hello from out-of-range rank {rank}")))?;
                if slot.is_some() {
                    return Err(ctl_io(format!("two workers claimed rank {rank}")));
                }
                *slot = Some((stream, mesh_port));
                checked_in += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                for (rank, child) in children.iter_mut().enumerate() {
                    if let Ok(Some(status)) = child.try_wait() {
                        if streams[rank].is_none() {
                            return Err(Error::sim(format!(
                                "worker {rank} exited during rendezvous ({status})"
                            )));
                        }
                    }
                }
                if Instant::now() >= deadline {
                    return Err(ctl_io(format!(
                        "rendezvous timed out with {checked_in} of {nodes} workers"
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(ctl_io(e)),
        }
    }
    let mut streams: Vec<(TcpStream, u16)> = streams
        .into_iter()
        .map(|s| s.expect("all ranks in"))
        .collect();
    let mesh_ports: Vec<u16> = streams.iter().map(|&(_, p)| p).collect();

    // Dispatch: each rank gets the spec plus its own tensors only.
    for (rank, (stream, _)) in streams.iter_mut().enumerate() {
        let job = Job {
            strategy,
            algorithm,
            partitions: partitions as u32,
            seed,
            nodes: nodes as u32,
            rank: rank as u32,
            config: *config,
            iterations: pcfg.iterations,
            window: pcfg.window,
            kill: pconf.kill_node == Some(rank),
            grad_lens: grad_lens.clone(),
            grads: worker_grads[rank]
                .iter()
                .map(|t| t.as_slice().to_vec())
                .collect(),
            mesh_ports: mesh_ports.clone(),
        };
        write_ctl(stream, &Ctl::Job(Box::new(job)))?;
    }

    // Collect one outcome per rank. Sequential reads are safe: every
    // worker reports independently (nobody waits on the coordinator
    // between outcome and shutdown), and each stream carries its own
    // read deadline so a dead worker costs a timeout, not a hang.
    let mut per_rank: Vec<Result<(HashMap<(u32, u32), Cell>, RuntimeReport)>> =
        Vec::with_capacity(nodes);
    for (rank, (stream, _)) in streams.iter_mut().enumerate() {
        stream
            .set_read_timeout(Some(pconf.run_deadline()))
            .map_err(ctl_io)?;
        per_rank.push(match read_ctl(stream) {
            Ok(Ctl::Outcome { cells, report }) => Ok((
                cells
                    .into_iter()
                    .map(|(f, p, v)| {
                        (
                            (f, p),
                            Cell {
                                updated: Some(v),
                                ..Cell::default()
                            },
                        )
                    })
                    .collect(),
                report,
            )),
            Ok(Ctl::Failed(e)) => Err(e),
            Ok(_) => Err(ctl_io(format!("worker {rank} sent an unexpected message"))),
            // EOF or timeout without an outcome: the worker died
            // mid-protocol. Name it.
            Err(_) => Err(Error::sync(SyncFailure {
                kind: SyncFailureKind::LinkDead,
                node: rank,
                peer: None,
                task: None,
                detail: "worker process exited without reporting an outcome".into(),
            })),
        });
    }
    let wall_ns = started.elapsed().as_nanos() as u64;

    // Release the mesh: only now may workers drop their links.
    for (stream, _) in &mut streams {
        let _ = write_ctl(stream, &Ctl::Shutdown);
    }

    // Surface the most root-cause-like failure, if any.
    if per_rank.iter().any(Result::is_err) {
        let worst = per_rank
            .into_iter()
            .filter_map(Result::err)
            .min_by_key(error_rank)
            .expect("at least one error");
        return Err(worst);
    }

    let mut report = RuntimeReport {
        nodes,
        wall_ns,
        per_node_busy_ns: vec![0; nodes],
        iterations: u64::from(pcfg.iterations),
        pipeline_window: u64::from(pcfg.window),
        ..Default::default()
    };
    let mut cells_per_node = Vec::with_capacity(nodes);
    for (rank, r) in per_rank.into_iter().enumerate() {
        let (cells, node_report) = r.expect("errors handled above");
        report.absorb(&node_report);
        report.per_node_busy_ns[rank] = node_report.total_busy_ns();
        cells_per_node.push(cells);
    }
    let flows_out = layout.assemble(&cells_per_node)?;
    Ok(RunOutcome {
        flows: flows_out,
        report,
    })
}

/// Waits briefly for children to exit on their own (they just got
/// Shutdown), then kills stragglers — the coordinator never leaks
/// processes, even on error paths.
fn reap(children: &mut [std::process::Child]) {
    let deadline = Instant::now() + Duration::from_secs(5);
    for child in children.iter_mut() {
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
    }
}

/// What one worker's protocol run concluded.
enum NodeRun {
    /// Protocol complete, outcome reported, shutdown received.
    Completed,
    /// The injected kill fired; the process should exit nonzero.
    Killed,
}

/// Entry point for the `hipress node` subcommand: dial the
/// coordinator at `connect`, run rank `rank` of `nodes`, exit.
/// Re-executed by [`run_processes`]; never useful interactively.
///
/// # Errors
///
/// Transport or protocol failures talking to the coordinator or the
/// mesh. Exits the process with code 13 when the job injects a kill.
pub fn node_main(connect: &str, rank: usize, nodes: usize) -> Result<()> {
    let ctl = TcpStream::connect(connect)
        .map_err(|e| ctl_io(format!("node {rank}: dial coordinator {connect}: {e}")))?;
    match run_node(ctl, rank, nodes)? {
        NodeRun::Completed => Ok(()),
        NodeRun::Killed => {
            eprintln!("node {rank}: injected kill after mesh setup");
            std::process::exit(13);
        }
    }
}

/// One worker's full protocol over an established control stream.
/// Factored from [`node_main`] so tests can run workers as threads.
fn run_node(mut ctl: TcpStream, rank: usize, nodes: usize) -> Result<NodeRun> {
    ctl.set_nodelay(true).map_err(ctl_io)?;
    let mesh_listener = TcpListener::bind("127.0.0.1:0").map_err(ctl_io)?;
    let mesh_port = mesh_listener.local_addr().map_err(ctl_io)?.port();
    write_ctl(
        &mut ctl,
        &Ctl::Hello {
            rank: rank as u32,
            mesh_port,
        },
    )?;
    ctl.set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(ctl_io)?;
    let Ctl::Job(job) = read_ctl(&mut ctl)? else {
        return Err(ctl_io(format!("node {rank}: expected a Job")));
    };
    if job.rank as usize != rank || job.nodes as usize != nodes {
        return Err(ctl_io(format!(
            "node {rank}: job addressed to rank {} of {}",
            job.rank, job.nodes
        )));
    }

    let compressor = job.algorithm.build();
    let graph = build_graph(
        job.strategy,
        job.algorithm,
        job.partitions as usize,
        &job.grad_lens,
        nodes,
    )?;
    #[cfg(debug_assertions)]
    hipress_lint::plan::verify(&graph, nodes).into_result()?;

    // This rank holds only its own gradients; every other rank's slot
    // is zero-filled at the spec'd length. The dataflow only reads a
    // node's own flows (at `Source`), so the zeros are never observed —
    // they exist to satisfy the layout's shape validation.
    let mut flows: crate::engine::Flows = HashMap::new();
    for (g, &len) in job.grad_lens.iter().enumerate() {
        let per_node = (0..nodes)
            .map(|w| {
                if w == rank {
                    Tensor::from_vec(job.grads[g].clone())
                } else {
                    Tensor::zeros(len as usize)
                }
            })
            .collect();
        flows.insert(g as u32, per_node);
    }
    let replicated = replicate(&flows);
    let layout = FlowLayout::derive(&graph, nodes, &replicated)?;
    let plan = NodePlan::derive(&graph, nodes);

    let mesh = MeshConfig {
        tuning: LinkTuning {
            heartbeat: job.config.ft_heartbeat,
            ..LinkTuning::default()
        },
        connect_timeout: Duration::from_secs(10),
        poll_floor: job.config.ft_min_wait,
        poll_ceiling: job.config.ft_max_wait,
    };
    let peers: Vec<SocketAddr> = job
        .mesh_ports
        .iter()
        .map(|&p| SocketAddr::from(([127, 0, 0, 1], p)))
        .collect();
    let mut link = connect_mesh::<Msg>(rank, nodes, mesh_listener, &peers, &mesh)
        .map_err(|e| fabric_err(rank, e))?;

    if job.kill {
        // Dropping the link shuts the mesh sockets down; peers
        // diagnose the dead rank on their receive paths.
        return Ok(NodeRun::Killed);
    }

    let pcfg = PipelineConfig {
        iterations: job.iterations,
        window: job.window,
    };
    let outcome = drive_node(
        &mut link,
        &graph,
        &replicated,
        &layout,
        &plan,
        compressor.as_deref(),
        job.seed,
        &job.config,
        &pcfg,
    );
    match outcome {
        Ok((cells, report)) => {
            let cells = cells
                .into_iter()
                .filter_map(|((f, p), c)| c.updated.map(|v| (f, p, v)))
                .collect();
            write_ctl(&mut ctl, &Ctl::Outcome { cells, report })?;
        }
        Err(e) => {
            write_ctl(&mut ctl, &Ctl::Failed(e))?;
        }
    }
    // Hold the mesh link until the coordinator has everyone's
    // outcome: our reader threads keep acking peers that are still
    // draining. EOF or timeout counts as permission to leave.
    let _ = read_ctl(&mut ctl);
    drop(link);
    Ok(NodeRun::Completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use hipress_core::interp::gradient_flows;
    use hipress_tensor::synth::{generate, GradientShape};

    fn worker_grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
        (0..nodes)
            .map(|w| {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(g, &n)| {
                        generate(
                            n,
                            GradientShape::Gaussian { std_dev: 1.0 },
                            (w * 1000 + g) as u64,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// Runs the full coordinator protocol with worker *threads*
    /// standing in for worker processes — same control channel, same
    /// TCP mesh, same pipelined driver; only `fork/exec` is skipped.
    fn run_threaded(
        strategy: Strategy,
        algorithm: Algorithm,
        grads: &[Vec<Tensor>],
        seed: u64,
        pcfg: PipelineConfig,
        kill_node: Option<usize>,
    ) -> Result<RunOutcome> {
        let nodes = grads.len();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let workers: Vec<_> = (0..nodes)
            .map(|rank| {
                std::thread::spawn(move || {
                    let ctl = TcpStream::connect(addr).unwrap();
                    run_node(ctl, rank, nodes)
                })
            })
            .collect();
        let pconf = ProcessConfig {
            kill_node,
            ..ProcessConfig::default()
        };
        let out = coordinate(
            &listener,
            strategy,
            algorithm,
            2,
            grads,
            seed,
            &RuntimeConfig::default(),
            &pcfg,
            &pconf,
            &mut [],
        );
        for w in workers {
            // Worker errors already surfaced through the coordinator.
            let _ = w.join().expect("worker thread panicked");
        }
        out
    }

    /// A worker binary that re-enters `run_processes` (its main
    /// ignores the `node` subcommand) must die with a config error on
    /// the spot — not recursively spawn its own workers.
    #[test]
    fn spawn_guard_stops_recursive_workers() {
        let grads = worker_grads(2, &[16]);
        std::env::set_var(SPAWN_GUARD_ENV, "1");
        let err = run_processes(
            Strategy::CaSyncPs,
            Algorithm::None,
            1,
            &grads,
            1,
            &RuntimeConfig::default(),
            &PipelineConfig::default(),
            &ProcessConfig::default(),
        )
        .expect_err("guard must trip");
        std::env::remove_var(SPAWN_GUARD_ENV);
        assert!(err.to_string().contains("recursive worker spawn"), "{err}");
    }

    #[test]
    fn socket_mesh_matches_threads_bit_for_bit() {
        let nodes = 3;
        let grads = worker_grads(nodes, &[256, 64]);
        let flows = gradient_flows(&grads);
        let algorithm = Algorithm::OneBit;
        let c = algorithm.build().unwrap();
        let grad_lens: Vec<u32> = grads[0].iter().map(|t| t.len() as u32).collect();
        for strategy in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let graph = build_graph(strategy, algorithm, 2, &grad_lens, nodes).unwrap();
            let threads = run(
                &graph,
                nodes,
                &flows,
                Some(c.as_ref()),
                7,
                &RuntimeConfig::default(),
            )
            .unwrap();
            let sockets = run_threaded(
                strategy,
                algorithm,
                &grads,
                7,
                PipelineConfig {
                    iterations: 2,
                    window: 2,
                },
                None,
            )
            .unwrap();
            assert_eq!(threads.flows.len(), sockets.flows.len());
            for (a, b) in threads.flows.iter().zip(&sockets.flows) {
                assert_eq!(a.flow, b.flow);
                assert_eq!(a.per_node, b.per_node, "{strategy:?} diverged over TCP");
            }
            // A serializing fabric measures real framed traffic.
            assert!(sockets.report.fabric_frames > 0);
            assert!(sockets.report.fabric_bytes_framed > sockets.report.fabric_bytes_payload);
            assert_eq!(sockets.report.iterations, 2);
        }
    }

    #[test]
    fn killed_worker_yields_a_failure_naming_it() {
        let nodes = 3;
        let grads = worker_grads(nodes, &[128]);
        let err = run_threaded(
            Strategy::CaSyncPs,
            Algorithm::OneBit,
            &grads,
            3,
            PipelineConfig {
                iterations: 2,
                window: 2,
            },
            Some(1),
        )
        .unwrap_err();
        let f = err.as_sync().expect("structured failure");
        assert_eq!(f.node, 1, "failure must name the dead rank: {err}");
        assert!(err.to_string().contains("node 1"), "{err}");
    }

    #[test]
    fn ctl_messages_round_trip() {
        let job = Job {
            strategy: Strategy::CaSyncRing,
            algorithm: Algorithm::Tbq { tau: 0.25 },
            partitions: 3,
            seed: 99,
            nodes: 4,
            rank: 2,
            config: RuntimeConfig::default(),
            iterations: 8,
            window: 4,
            kill: true,
            grad_lens: vec![16, 32],
            grads: vec![vec![1.0, -2.5], vec![f32::NAN]],
            mesh_ports: vec![4000, 4001, 4002, 4003],
        };
        let bytes = Ctl::Job(Box::new(job)).to_bytes();
        let Ctl::Job(back) = Ctl::from_bytes(&bytes).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(back.strategy, Strategy::CaSyncRing);
        assert_eq!(back.algorithm, Algorithm::Tbq { tau: 0.25 });
        assert_eq!(back.partitions, 3);
        assert_eq!(back.rank, 2);
        assert!(back.kill);
        assert_eq!(back.grad_lens, vec![16, 32]);
        assert_eq!(back.grads[0], vec![1.0, -2.5]);
        assert!(back.grads[1][0].is_nan());
        assert_eq!(back.mesh_ports.len(), 4);
        assert_eq!(
            back.config.ft_heartbeat,
            RuntimeConfig::default().ft_heartbeat
        );

        let mut rep = RuntimeReport::default();
        rep.update.record(123);
        rep.fabric_frames = 7;
        rep.iter_span_ns_total = 5555;
        let out = Ctl::Outcome {
            cells: vec![(0, 1, vec![3.5, -0.0])],
            report: rep.clone(),
        };
        let Ctl::Outcome { cells, report } = Ctl::from_bytes(&out.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(cells[0].0, 0);
        assert_eq!(cells[0].2[0], 3.5);
        assert_eq!(report, rep);

        let fail = Ctl::Failed(Error::sync(SyncFailure {
            kind: SyncFailureKind::LinkDead,
            node: 1,
            peer: Some(0),
            task: Some(42),
            detail: "seq 9 unacknowledged".into(),
        }));
        let Ctl::Failed(e) = Ctl::from_bytes(&fail.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(e.as_sync().unwrap().node, 1);
        assert_eq!(e.as_sync().unwrap().task, Some(42));

        let echo = Ctl::Failed(Error::sim("aborted"));
        let Ctl::Failed(e) = Ctl::from_bytes(&echo.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert!(matches!(&e, Error::Sim(m) if m == "aborted"));
    }

    /// The pipeline edge configs — a single iteration, a serial
    /// window, and a window wider than the whole run — produce the
    /// same bitstream over the TCP mesh as the single-iteration
    /// thread engine. `window = 1` degenerates to serial execution;
    /// `window > iterations` admits everything up front; both must be
    /// behavioral no-ops for the result.
    #[test]
    fn edge_pipeline_configs_match_serial_over_tcp() {
        let nodes = 2;
        let grads = worker_grads(nodes, &[96]);
        let flows = gradient_flows(&grads);
        let algorithm = Algorithm::OneBit;
        let c = algorithm.build().unwrap();
        let grad_lens: Vec<u32> = grads[0].iter().map(|t| t.len() as u32).collect();
        let graph = build_graph(Strategy::CaSyncPs, algorithm, 2, &grad_lens, nodes).unwrap();
        let serial = run(
            &graph,
            nodes,
            &flows,
            Some(c.as_ref()),
            5,
            &RuntimeConfig::default(),
        )
        .unwrap();
        for (iterations, window) in [(1, 1), (3, 1), (2, 5)] {
            let sockets = run_threaded(
                Strategy::CaSyncPs,
                algorithm,
                &grads,
                5,
                PipelineConfig { iterations, window },
                None,
            )
            .unwrap();
            assert_eq!(serial.flows.len(), sockets.flows.len());
            for (a, b) in serial.flows.iter().zip(&sockets.flows) {
                assert_eq!(a.flow, b.flow);
                assert_eq!(
                    a.per_node, b.per_node,
                    "TCP diverged at {iterations}x window {window}"
                );
            }
            assert_eq!(sockets.report.iterations, u64::from(iterations));
            assert_eq!(sockets.report.pipeline_window, u64::from(window));
        }
    }

    /// Degenerate pipeline configs are rejected by the coordinator
    /// before any worker is spawned — the same `validate` gate the
    /// thread path applies.
    #[test]
    fn bad_pipeline_configs_rejected_before_spawn() {
        let grads = worker_grads(2, &[16]);
        for pcfg in [
            PipelineConfig {
                iterations: 0,
                window: 1,
            },
            PipelineConfig {
                iterations: 1,
                window: 0,
            },
        ] {
            let err = run_processes(
                Strategy::CaSyncPs,
                Algorithm::None,
                1,
                &grads,
                1,
                &RuntimeConfig::default(),
                &pcfg,
                &ProcessConfig::default(),
            )
            .expect_err("validation must reject the config");
            assert!(
                matches!(err, Error::Config(_)),
                "want a config error, got {err}"
            );
        }
    }

    #[test]
    fn error_rank_prefers_diagnoses_over_echoes() {
        let dead = Error::sync(SyncFailure {
            kind: SyncFailureKind::LinkDead,
            node: 1,
            peer: Some(0),
            task: None,
            detail: String::new(),
        });
        let echo = Error::sim("aborted");
        let other = Error::sim("node 2 wedged");
        assert!(error_rank(&dead) < error_rank(&other));
        assert!(error_rank(&other) < error_rank(&echo));
    }
}

//! CaSync-RT: a real multi-threaded execution engine for the CaSync
//! gradient-synchronization protocol.
//!
//! The rest of the workspace *simulates* CaSync: the discrete-event
//! executor charges modelled costs against virtual clocks, and the
//! interpreter in [`hipress_core::interp`] checks dataflow semantics
//! one task at a time. This crate *executes* it: one OS thread per
//! cluster node, `std::sync::mpsc` channels as the network fabric,
//! and the actual `hipress-compress` codecs encoding, merging, and
//! decoding real `f32` gradients. Each node thread runs the paper's
//! task manager — two ready queues (computing vs. communication) fed
//! by dependency-count promotion on completion events.
//!
//! The engine and the interpreter are cross-validated bit for bit:
//! the same graph, inputs, and seed produce byte-identical installed
//! parameters on every replica under both executions, for every
//! compression algorithm on both CaSync-PS and CaSync-Ring. That
//! equivalence is what licenses trusting the simulator's timing
//! studies and the runtime's wall-clock measurements as two views of
//! one system.
//!
//! The engine comes in two flavours sharing one dataflow core. The
//! fast path ([`run`] and friends) trusts the fabric — channels never
//! lose messages — and adds zero per-message overhead. The
//! fault-tolerant path ([`run_chaos`]) trusts nothing: payloads
//! travel in sequence-numbered, checksummed envelopes
//! ([`protocol`]) over a fabric that may be wrapped in a
//! deterministic fault injector ([`hipress_chaos`]), with per-link
//! retransmission, receiver-side dedup, straggler detection, and
//! configurable degradation ([`ft`]). Recoverable fault plans yield
//! bit-for-bit the fault-free result; unrecoverable ones produce a
//! structured [`hipress_util::SyncFailure`] naming the node, peer,
//! and task — never a hang.

#![forbid(unsafe_code)]

pub mod engine;
pub mod ft;
pub mod observe;
pub mod pipeline;
pub mod process;
pub mod protocol;
pub mod report;
pub mod wire;

pub use engine::{
    run, run_instrumented, run_replicated, run_replicated_instrumented, run_replicated_traced,
    run_traced, sum_replicas, Flows, Instruments, Msg, Payload, ReplicaFlows, RunOutcome,
    RuntimeConfig,
};
pub use ft::{run_chaos, DegradePolicy, FaultTolerance};
pub use observe::{validate_clock_monotonicity, ClockSync, PostmortemDump, RankFlight};
pub use pipeline::{run_pipelined, PipelineConfig};
pub use process::elastic::{join_main, run_elastic_processes, run_elastic_threaded};
pub use process::{node_main, run_processes, run_threaded_workers, ProcessConfig};
pub use report::{DegradeAction, FaultReport, PrimStat, RuntimeReport, StragglerVerdict};

/// Which machinery executes a synchronization graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The single-threaded semantic interpreter (reference
    /// semantics, no wall-clock measurement).
    Simulator,
    /// The thread engine with one OS thread per node; the value is
    /// the node count and must match the number of workers.
    Threads(usize),
    /// Real OS processes — one per node — synchronizing over a
    /// loopback TCP mesh ([`hipress_fabric`]); the value is the node
    /// count and must match the number of workers.
    Processes(usize),
}

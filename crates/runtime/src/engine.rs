//! The multi-threaded CaSync execution engine.
//!
//! One OS thread per cluster node; `std::sync::mpsc` channels are the
//! network fabric. Each node runs the paper's task manager (§3.1) for
//! real: its share of the task DAG, two queues — `Q_comp` for
//! computing primitives, `Q_commu` for communication primitives — and
//! dependency-count promotion driven by actual completion events.
//! Local dependencies are cleared when the node finishes a task;
//! remote dependencies are cleared by completion messages arriving on
//! the node's inbox, with `Send` completions carrying the payload
//! itself (so the message *is* the transfer).
//!
//! The dataflow semantics are exactly those of
//! [`hipress_core::interp`]: the same per-task encode seeds, the same
//! serial merge chains, the same owner-installs-`decode(encode(sum))`
//! rule for replica consistency. A graph executed here and in the
//! discrete-event interpreter produces bit-identical installed
//! parameters — that cross-validation is what lets the simulator and
//! the runtime vouch for each other.
//!
//! Primitive execution lives in [`NodeCore`], shared between this
//! fast-path worker (which trusts the fabric) and the fault-tolerant
//! worker in [`crate::ft`] (which does not): both run the same
//! dataflow, so surviving an unreliable fabric cannot change what
//! gets computed — only whether it completes.

use crate::report::RuntimeReport;
use hipress_compress::Compressor;
use hipress_core::graph::{Primitive, SendSrc, TaskGraph, TaskId};
use hipress_core::interp::FlowOutcome;
use hipress_metrics::names;
use hipress_tensor::Tensor;
use hipress_trace::{Counter, Tracer, TrackId};
use hipress_util::{Error, Result};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for the thread engine.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Group small ready `Encode` tasks into one launch (the batch
    /// compression optimization of §3.2). Semantically neutral; the
    /// report counts launches so the batching is observable.
    pub batch_compression: bool,
    /// Encodes at or below this raw size are eligible for batching.
    pub comp_batch_max_task_bytes: u64,
    /// How long a node thread waits on a silent inbox before
    /// declaring the protocol wedged and unwinding with an error
    /// instead of hanging (a lost peer or malformed graph, not
    /// ordinary slowness).
    pub inbox_timeout: Duration,
    /// Shortest inbox poll the fault-tolerant worker uses between
    /// protocol timer checks (the floor of its adaptive wait).
    pub ft_min_wait: Duration,
    /// Longest inbox poll the fault-tolerant worker allows before
    /// re-checking its retransmission and straggler timers.
    pub ft_max_wait: Duration,
    /// Idle interval after which a fault-tolerant link emits a
    /// heartbeat (also the TCP fabric's link heartbeat).
    pub ft_heartbeat: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            batch_compression: true,
            comp_batch_max_task_bytes: 256 * 1024,
            inbox_timeout: Duration::from_secs(30),
            ft_min_wait: Duration::from_micros(200),
            ft_max_wait: Duration::from_millis(10),
            ft_heartbeat: Duration::from_millis(25),
        }
    }
}

/// One node thread's tracing handles: its timeline track plus the
/// queue-depth gauges. `None` on the worker means tracing is off and
/// the hot path records nothing (and allocates nothing). Cloneable so
/// the pipelined driver can hand every in-flight iteration's core the
/// same shared handles.
#[derive(Clone)]
pub(crate) struct NodeTrace {
    pub(crate) tracer: Tracer,
    pub(crate) track: TrackId,
    pub(crate) q_comp: Counter,
    pub(crate) q_commu: Counter,
}

/// Optional observers for one run. All are borrowed: the engine
/// records into them but owns none, and a `None` field keeps the
/// corresponding hot path free of any recording work.
#[derive(Debug, Clone, Copy, Default)]
pub struct Instruments<'a> {
    /// Structured timeline recording (`hipress-trace`).
    pub tracer: Option<&'a Tracer>,
    /// Live metric recording (`hipress-metrics`); run-level labels
    /// such as `algorithm`/`strategy` come from the scope, the engine
    /// adds `node`.
    pub metrics: Option<&'a hipress_metrics::Scope>,
    /// Live telemetry hub (`hipress-obs`): per-iteration progress
    /// records, heartbeats, and the SLO watchdog. Costs one ring
    /// publish per *retired iteration*, never per task.
    pub progress: Option<&'a hipress_obs::Telemetry>,
}

/// One node thread's metric handles, all pre-resolved on the main
/// thread so the hot path is pure atomic recording. Every handle
/// carries the `node` label; names come from the shared catalogue
/// ([`hipress_metrics::names`]) so snapshots line up with
/// trace-lowered and simulated runs.
#[derive(Clone)]
pub(crate) struct NodeMetrics {
    /// Per-primitive latency histograms, indexed by [`prim_index`].
    prims: [hipress_metrics::Histogram; 8],
    local_agg: hipress_metrics::Histogram,
    bytes_wire: hipress_metrics::Counter,
    bytes_raw: hipress_metrics::Counter,
    pub(crate) messages: hipress_metrics::Counter,
    pub(crate) batch_launches: hipress_metrics::Counter,
    pub(crate) q_comp_depth: hipress_metrics::Histogram,
    pub(crate) q_commu_depth: hipress_metrics::Histogram,
    /// Per-node link traffic, filled by workers that run on a
    /// counting fabric (the pipelined and process drivers). Zero on
    /// the channel fast path, which never frames.
    pub(crate) fabric_frames: hipress_metrics::Counter,
    pub(crate) fabric_bytes_framed: hipress_metrics::Counter,
    pub(crate) fabric_bytes_payload: hipress_metrics::Counter,
    pub(crate) fabric_retransmits: hipress_metrics::Counter,
}

impl NodeMetrics {
    pub(crate) fn new(scope: &hipress_metrics::Scope, node: usize) -> Self {
        let s = scope.with(&[("node", &node.to_string())]);
        Self {
            prims: std::array::from_fn(|i| s.histogram(names::PRIM_NS[i], &[])),
            local_agg: s.histogram(names::LOCAL_AGG_NS, &[]),
            bytes_wire: s.counter(names::BYTES_WIRE, &[]),
            bytes_raw: s.counter(names::BYTES_RAW, &[]),
            messages: s.counter(names::MESSAGES, &[]),
            batch_launches: s.counter(names::COMP_BATCH_LAUNCHES, &[]),
            q_comp_depth: s.histogram(names::Q_COMP_DEPTH, &[]),
            q_commu_depth: s.histogram(names::Q_COMMU_DEPTH, &[]),
            fabric_frames: s.counter(names::FABRIC_FRAMES, &[]),
            fabric_bytes_framed: s.counter(names::FABRIC_BYTES_FRAMED, &[]),
            fabric_bytes_payload: s.counter(names::FABRIC_BYTES_PAYLOAD, &[]),
            fabric_retransmits: s.counter(names::FABRIC_RETRANSMITS, &[]),
        }
    }
}

/// Builds the per-node tracing handles (and registers every track up
/// front on the main thread, so the layout is deterministic: engine
/// first, then each node's timeline and queue gauges in node order).
pub(crate) fn build_node_traces(tracer: Option<&Tracer>, nodes: usize) -> Vec<Option<NodeTrace>> {
    let mut node_traces: Vec<Option<NodeTrace>> = Vec::with_capacity(nodes);
    if let Some(tr) = tracer {
        tr.thread_track("engine");
        for node in 0..nodes {
            let track = tr.thread_track(&format!("node{node}"));
            let q_comp = tr.counter(tr.counter_track(&format!("node{node}/Q_comp")));
            let q_commu = tr.counter(tr.counter_track(&format!("node{node}/Q_commu")));
            node_traces.push(Some(NodeTrace {
                tracer: tr.clone(),
                track,
                q_comp,
                q_commu,
            }));
        }
    } else {
        node_traces.resize_with(nodes, || None);
    }
    node_traces
}

/// Builds one rank's tracing handles for a worker process that only
/// hosts that rank (no `engine` track — the coordinator owns the run
/// span, and an empty track would fail trace validation). Track names
/// carry the *global* rank, so merged traces never collide.
pub(crate) fn single_node_trace(tracer: &Tracer, node: usize) -> NodeTrace {
    let track = tracer.thread_track(&format!("node{node}"));
    let q_comp = tracer.counter(tracer.counter_track(&format!("node{node}/Q_comp")));
    let q_commu = tracer.counter(tracer.counter_track(&format!("node{node}/Q_commu")));
    NodeTrace {
        tracer: tracer.clone(),
        track,
        q_comp,
        q_commu,
    }
}

/// Builds the per-node metric handles (resolved up front for the same
/// reason: the worker hot path then touches only atomics).
pub(crate) fn build_node_metrics(
    scope: Option<&hipress_metrics::Scope>,
    nodes: usize,
) -> Vec<Option<NodeMetrics>> {
    let mut node_metrics: Vec<Option<NodeMetrics>> = Vec::with_capacity(nodes);
    if let Some(scope) = scope {
        for node in 0..nodes {
            node_metrics.push(Some(NodeMetrics::new(scope, node)));
        }
    } else {
        node_metrics.resize_with(nodes, || None);
    }
    node_metrics
}

/// Records the run-wall span on the engine track (carrying the same
/// wall measurement the report stores, keeping trace-derived reports
/// exact).
pub(crate) fn record_run_span(
    tracer: Option<&Tracer>,
    run_start_ns: Option<u64>,
    wall_ns: u64,
    nodes: usize,
    iterations: u64,
    pipeline_window: u64,
    epochs: u64,
) {
    if let Some(tr) = tracer {
        let engine = tr.thread_track("engine");
        let mut args = vec![("nodes", nodes as u64)];
        if iterations > 0 {
            // Pipelined drivers only; the single-iteration fast path
            // reports zero and records nothing, keeping old traces
            // and trace-derived reports unchanged.
            args.push(("iterations", iterations));
            args.push(("window", pipeline_window));
        }
        if epochs > 0 {
            // Elastic runs only; fixed-membership runs carry no epoch
            // arg so their traces stay byte-identical to before.
            args.push(("epochs", epochs));
        }
        tr.record_span(
            engine,
            "run",
            "run",
            run_start_ns.unwrap_or(0),
            wall_ns,
            &args,
        );
    }
}

/// Records the run-level metric gauges derived from the assembled
/// report, at the scope's own labels (no `node`): wall time,
/// throughput in raw gradient bytes synchronized per second, and the
/// wire-volume reduction factor.
pub(crate) fn record_run_metrics(scope: &hipress_metrics::Scope, report: &RuntimeReport) {
    scope.gauge(names::WALL_NS, &[]).set(report.wall_ns as f64);
    scope.gauge(names::NODES, &[]).set(report.nodes as f64);
    if report.wall_ns > 0 {
        scope
            .gauge(names::THROUGHPUT, &[])
            .set(report.bytes_raw as f64 / (report.wall_ns as f64 / 1e9));
    }
    scope
        .gauge(names::COMPRESSION_SAVINGS, &[])
        .set(report.compression_savings());
    scope
        .timeseries(names::ITERATION_NS, &[])
        .push(report.wall_ns as f64);
    if report.fabric_frames > 0 {
        scope
            .counter(names::FABRIC_FRAMES, &[])
            .add(report.fabric_frames);
        scope
            .counter(names::FABRIC_BYTES_FRAMED, &[])
            .add(report.fabric_bytes_framed);
        scope
            .counter(names::FABRIC_BYTES_PAYLOAD, &[])
            .add(report.fabric_bytes_payload);
        scope
            .counter(names::FABRIC_RETRANSMITS, &[])
            .add(report.fabric_retransmits);
    }
    if report.iterations > 1 {
        scope
            .gauge(names::PIPELINE_OVERLAP, &[])
            .set(report.pipeline_overlap());
    }
}

/// The index of a primitive's histogram in [`NodeMetrics::prims`]
/// (same order as [`names::PRIM_NS`] and the report's buckets).
fn prim_index(p: Primitive) -> usize {
    match p {
        Primitive::Source => 0,
        Primitive::Encode => 1,
        Primitive::Decode => 2,
        Primitive::Merge => 3,
        Primitive::Send => 4,
        Primitive::Recv => 5,
        Primitive::Update => 6,
        Primitive::Barrier => 7,
    }
}

/// The span category used for each primitive (also the span name).
/// [`RuntimeReport::from_trace`] keys its buckets on these.
fn prim_category(p: Primitive) -> &'static str {
    match p {
        Primitive::Source => "source",
        Primitive::Encode => "encode",
        Primitive::Decode => "decode",
        Primitive::Merge => "merge",
        Primitive::Send => "send",
        Primitive::Recv => "recv",
        Primitive::Update => "update",
        Primitive::Barrier => "barrier",
    }
}

/// A value on the wire: raw tensor data or a compressed stream.
///
/// Public because the fault-tolerant protocol layer
/// ([`crate::protocol`]) checksums and corrupts it; the fast path
/// keeps it an implementation detail.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Uncompressed `f32` data.
    Raw(Vec<f32>),
    /// A codec-encoded stream.
    Compressed(Vec<u8>),
    /// A hole: the degradation policy skipped a straggler's chunk
    /// (bounded-staleness partial aggregation). Carries no bytes;
    /// consumers account for the missing contribution by scaling.
    Skipped,
}

impl Payload {
    /// Bytes this payload occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Payload::Raw(v) => (v.len() * 4) as u64,
            Payload::Compressed(b) => b.len() as u64,
            Payload::Skipped => 0,
        }
    }
}

/// Inter-node messages: the entire fast-path network fabric. Public
/// so transport fabrics (`hipress-fabric`) can move it between
/// processes; the in-process engine moves it by value and never
/// serializes.
#[derive(Debug, Clone)]
pub enum Msg {
    /// `task` (on some other node) completed. For `Send` tasks the
    /// payload rides along — the message is the transfer.
    Done {
        /// The remote task that finished.
        task: TaskId,
        /// The transferred bytes, present for `Send` tasks.
        payload: Option<Arc<Payload>>,
        /// Which pipelined iteration the completion belongs to
        /// (always 0 on the single-iteration fast path).
        iter: u32,
    },
    /// A peer hit an error; unwind.
    Abort,
    /// Rendezvous plane: a restarted (or brand-new) worker asks the
    /// coordinator to admit it into a running job. `epoch` is the
    /// last epoch the worker saw (0 for a fresh process); admission
    /// happens at the next epoch boundary, never mid-segment.
    Join {
        /// The global rank the worker claims.
        rank: u32,
        /// The last membership epoch the worker participated in.
        epoch: u64,
    },
    /// Rendezvous plane: the coordinator's answer to [`Msg::Join`] —
    /// the joiner is admitted and will be dispatched work when epoch
    /// `epoch` begins at iteration `from_iter` over `members`.
    Welcome {
        /// The epoch the joiner becomes a member of.
        epoch: u64,
        /// The first global iteration of that epoch.
        from_iter: u32,
        /// The member set of that epoch (global ranks, ascending).
        members: Vec<u32>,
    },
    /// Rendezvous plane: membership changed. The coordinator bumps
    /// every member to `epoch`, naming the evicted rank (if the bump
    /// was a death rather than a join) and the member set the next
    /// segment runs over. Frames carrying a stale epoch are ignored
    /// by receivers — the stale-epoch safety rule the model checker
    /// exhausts.
    EpochBump {
        /// The new membership epoch.
        epoch: u64,
        /// The rank evicted by this bump, if it was a death.
        evicted: Option<u32>,
        /// The first global iteration of the new epoch.
        from_iter: u32,
        /// The member set of the new epoch (global ranks, ascending).
        members: Vec<u32>,
    },
}

/// Per-chunk node state: the local accumulator and the installed
/// aggregate, plus degradation bookkeeping (how many contributions
/// merged in, how many were skipped).
#[derive(Debug, Default, Clone)]
pub(crate) struct Cell {
    pub(crate) acc: Vec<f32>,
    pub(crate) updated: Option<Vec<f32>>,
    /// Contributions successfully merged into `acc`.
    pub(crate) merged: u32,
    /// Contributions lost to a degradation skip.
    pub(crate) missing: u32,
    /// Whether `acc` has already been rescaled for missing
    /// contributions (the scaling must apply exactly once).
    pub(crate) scaled: bool,
}

/// Per-flow input tensors, one replica per node — the shape the
/// interpreter uses.
pub type Flows = HashMap<u32, Vec<Tensor>>;

/// Per-flow input tensors with one or more local replicas per node
/// (multiple local GPUs whose gradients are locally aggregated before
/// synchronization, §3.1).
pub type ReplicaFlows = HashMap<u32, Vec<Vec<Tensor>>>;

/// The result of one runtime execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Synchronized per-flow, per-node tensors (same shape as the
    /// interpreter's outcomes).
    pub flows: Vec<FlowOutcome>,
    /// Measured wall-clock statistics.
    pub report: RuntimeReport,
}

/// Sums each node's replica gradients into one tensor per node, in
/// replica order — the reference semantics of local aggregation. The
/// engine performs the same sums internally; this helper produces the
/// equivalent single-replica input for cross-validation against the
/// interpreter.
pub fn sum_replicas(flows: &ReplicaFlows) -> Result<Flows> {
    let mut out = HashMap::new();
    for (&f, per_node) in flows {
        let mut nodes = Vec::with_capacity(per_node.len());
        for reps in per_node {
            let first = reps
                .first()
                .ok_or_else(|| Error::config(format!("flow {f}: node with zero replicas")))?;
            let mut acc = first.clone();
            for r in &reps[1..] {
                acc.add_assign(r);
            }
            nodes.push(acc);
        }
        out.insert(f, nodes);
    }
    Ok(out)
}

/// Executes `graph` on `nodes` OS threads with one replica per node.
///
/// # Errors
///
/// Returns an error for malformed graphs (missing flow data, chunks
/// that do not tile their flow, decode without a compressor, wedged
/// protocols) — the same conditions the interpreter rejects.
pub fn run(
    graph: &TaskGraph,
    nodes: usize,
    flows: &Flows,
    compressor: Option<&dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
) -> Result<RunOutcome> {
    let replicated = replicate(flows);
    run_replicated(graph, nodes, &replicated, compressor, seed, config)
}

/// Wraps single-replica flows in the replicated shape.
pub(crate) fn replicate(flows: &Flows) -> ReplicaFlows {
    flows
        .iter()
        .map(|(&f, per_node)| (f, per_node.iter().map(|t| vec![t.clone()]).collect()))
        .collect()
}

/// As [`run`], recording every task execution, queue-depth change,
/// and fabric message into `tracer`.
///
/// # Errors
///
/// As [`run`].
pub fn run_traced(
    graph: &TaskGraph,
    nodes: usize,
    flows: &Flows,
    compressor: Option<&dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
    tracer: &Tracer,
) -> Result<RunOutcome> {
    let replicated = replicate(flows);
    run_replicated_traced(graph, nodes, &replicated, compressor, seed, config, tracer)
}

/// As [`run`], recording into whatever observers `instruments`
/// carries: a trace, a live metrics scope, either, or both.
///
/// # Errors
///
/// As [`run`].
pub fn run_instrumented(
    graph: &TaskGraph,
    nodes: usize,
    flows: &Flows,
    compressor: Option<&dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    let replicated = replicate(flows);
    run_replicated_inner(
        graph,
        nodes,
        &replicated,
        compressor,
        seed,
        config,
        instruments,
    )
}

/// Executes `graph` on `nodes` OS threads, locally aggregating each
/// node's replica gradients at `Source` time.
///
/// # Errors
///
/// As [`run`], plus mismatched replica shapes.
pub fn run_replicated(
    graph: &TaskGraph,
    nodes: usize,
    flows: &ReplicaFlows,
    compressor: Option<&dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
) -> Result<RunOutcome> {
    run_replicated_inner(
        graph,
        nodes,
        flows,
        compressor,
        seed,
        config,
        Instruments::default(),
    )
}

/// As [`run_replicated`], recording into `tracer`: one `node{i}`
/// thread track per node (primitive spans, nested `local_agg` spans,
/// `fabric` message instants, `batch` launch instants), `Q_comp` /
/// `Q_commu` counter tracks per node, and a `run` wall span on the
/// `engine` track. The recorded durations are the very measurements
/// the returned [`RuntimeReport`] accumulates, so
/// [`RuntimeReport::from_trace`] on the trace reproduces the report
/// exactly.
///
/// # Errors
///
/// As [`run_replicated`].
pub fn run_replicated_traced(
    graph: &TaskGraph,
    nodes: usize,
    flows: &ReplicaFlows,
    compressor: Option<&dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
    tracer: &Tracer,
) -> Result<RunOutcome> {
    run_replicated_inner(
        graph,
        nodes,
        flows,
        compressor,
        seed,
        config,
        Instruments {
            tracer: Some(tracer),
            metrics: None,
            progress: None,
        },
    )
}

/// As [`run_replicated`], recording into whatever observers
/// `instruments` carries.
///
/// # Errors
///
/// As [`run_replicated`].
pub fn run_replicated_instrumented(
    graph: &TaskGraph,
    nodes: usize,
    flows: &ReplicaFlows,
    compressor: Option<&dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    run_replicated_inner(graph, nodes, flows, compressor, seed, config, instruments)
}

fn run_replicated_inner(
    graph: &TaskGraph,
    nodes: usize,
    flows: &ReplicaFlows,
    compressor: Option<&dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    let tracer = instruments.tracer;
    // Debug builds statically verify the plan before spawning
    // threads: a racy or deadlocking graph aborts here with a
    // diagnostic instead of corrupting replicas or wedging.
    #[cfg(debug_assertions)]
    hipress_lint::plan::verify(graph, nodes).into_result()?;
    let layout = FlowLayout::derive(graph, nodes, flows)?;
    let plan = NodePlan::derive(graph, nodes);

    let poison = AtomicBool::new(false);
    let mut txs: Vec<Sender<Msg>> = Vec::with_capacity(nodes);
    let mut rxs: Vec<Receiver<Msg>> = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }

    let node_traces = build_node_traces(tracer, nodes);
    let node_metrics = build_node_metrics(instruments.metrics, nodes);

    let run_start_ns = tracer.map(Tracer::now_ns);
    let started = Instant::now();
    let mut results: Vec<Result<(HashMap<(u32, u32), Cell>, RuntimeReport)>> = (0..nodes)
        .map(|_| Err(Error::sim("node never ran")))
        .collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nodes);
        for (((node, rx), trace), metrics) in rxs
            .into_iter()
            .enumerate()
            .zip(node_traces)
            .zip(node_metrics)
        {
            let txs: Vec<Sender<Msg>> = txs.clone();
            let layout = &layout;
            let plan = &plan;
            let poison = &poison;
            handles.push(scope.spawn(move || {
                let mut worker = NodeWorker {
                    core: NodeCore::new(
                        node, graph, flows, layout, compressor, seed, trace, metrics,
                    ),
                    plan,
                    config: *config,
                    rx,
                    txs,
                    poison,
                    pending: plan.pending[node].clone(),
                    q_comp: VecDeque::new(),
                    q_commu: VecDeque::new(),
                    done: 0,
                };
                worker.run()
            }));
        }
        for (node, h) in handles.into_iter().enumerate() {
            results[node] = h
                .join()
                .unwrap_or_else(|_| Err(Error::sim(format!("node {node} thread panicked"))));
        }
    });
    let wall_ns = started.elapsed().as_nanos() as u64;
    record_run_span(tracer, run_start_ns, wall_ns, nodes, 0, 0, 0);

    // Prefer a root-cause error over the "aborted" echoes it causes.
    let mut aborted = None;
    let mut cells_per_node = Vec::with_capacity(nodes);
    let mut report = RuntimeReport {
        nodes,
        wall_ns,
        per_node_busy_ns: vec![0; nodes],
        ..Default::default()
    };
    for (node, r) in results.into_iter().enumerate() {
        match r {
            Ok((cells, node_report)) => {
                report.absorb(&node_report);
                report.per_node_busy_ns[node] = node_report.total_busy_ns();
                cells_per_node.push(cells);
            }
            Err(e) => {
                if matches!(&e, Error::Sim(m) if m == "aborted") {
                    aborted = Some(e);
                } else {
                    return Err(e);
                }
            }
        }
    }
    if let Some(e) = aborted {
        return Err(e);
    }

    if let Some(scope) = instruments.metrics {
        record_run_metrics(scope, &report);
    }

    let flows_out = layout.assemble(&cells_per_node)?;
    Ok(RunOutcome {
        flows: flows_out,
        report,
    })
}

/// Chunk geometry shared by the workers and the result assembly.
pub(crate) struct FlowLayout {
    pub(crate) nodes: usize,
    /// (flow, part) → element count.
    chunk_elems: HashMap<(u32, u32), usize>,
    /// (flow, part) → start element within the flow.
    chunk_start: HashMap<(u32, u32), usize>,
    /// Sorted flow ids.
    flow_ids: Vec<u32>,
    /// flow → total elements.
    flow_len: HashMap<u32, usize>,
}

impl FlowLayout {
    pub(crate) fn derive(graph: &TaskGraph, nodes: usize, flows: &ReplicaFlows) -> Result<Self> {
        let mut chunk_elems: HashMap<(u32, u32), usize> = HashMap::new();
        for t in graph.tasks() {
            if t.prim == Primitive::Source {
                chunk_elems.insert((t.chunk.grad, t.chunk.part), (t.bytes_raw / 4) as usize);
            }
        }
        let mut flow_ids: Vec<u32> = chunk_elems.keys().map(|&(f, _)| f).collect();
        flow_ids.sort_unstable();
        flow_ids.dedup();
        let mut chunk_start = HashMap::new();
        let mut flow_len = HashMap::new();
        for &f in &flow_ids {
            let mut parts: Vec<u32> = chunk_elems
                .keys()
                .filter(|(ff, _)| *ff == f)
                .map(|&(_, p)| p)
                .collect();
            parts.sort_unstable();
            let mut start = 0usize;
            for p in parts {
                chunk_start.insert((f, p), start);
                start += chunk_elems[&(f, p)];
            }
            let data = flows
                .get(&f)
                .ok_or_else(|| Error::config(format!("missing data for flow {f}")))?;
            if data.len() != nodes {
                return Err(Error::config(format!(
                    "flow {f}: {} node entries for {nodes} nodes",
                    data.len()
                )));
            }
            for (node, reps) in data.iter().enumerate() {
                if reps.is_empty() {
                    return Err(Error::config(format!(
                        "flow {f}: node {node} has zero replicas"
                    )));
                }
                if reps.iter().any(|r| r.len() != start) {
                    return Err(Error::sim(format!(
                        "flow {f}: chunks cover {start} elements but node {node} holds a \
                         different length"
                    )));
                }
            }
            flow_len.insert(f, start);
        }
        Ok(Self {
            nodes,
            chunk_elems,
            chunk_start,
            flow_ids,
            flow_len,
        })
    }

    /// Reassembles dense per-flow, per-node tensors from worker cells.
    pub(crate) fn assemble(
        &self,
        cells_per_node: &[HashMap<(u32, u32), Cell>],
    ) -> Result<Vec<FlowOutcome>> {
        let mut outcomes = Vec::with_capacity(self.flow_ids.len());
        for &f in &self.flow_ids {
            let elems = self.flow_len[&f];
            let mut per_node = Vec::with_capacity(self.nodes);
            for node in 0..self.nodes {
                let mut dense = vec![0.0f32; elems];
                for (&(ff, p), &start) in &self.chunk_start {
                    if ff != f {
                        continue;
                    }
                    let len = self.chunk_elems[&(ff, p)];
                    let cell = cells_per_node[node].get(&(ff, p)).ok_or_else(|| {
                        Error::sim(format!("node {node} never touched chunk ({ff},{p})"))
                    })?;
                    let value = cell.updated.as_ref().ok_or_else(|| {
                        Error::sim(format!("node {node} never updated chunk ({ff},{p})"))
                    })?;
                    dense[start..start + len].copy_from_slice(value);
                }
                per_node.push(dense);
            }
            outcomes.push(FlowOutcome { flow: f, per_node });
        }
        Ok(outcomes)
    }
}

/// The static execution plan: per-node dependency counts and edge
/// maps, computed once on the main thread.
pub(crate) struct NodePlan {
    /// pending[node][task.0] = unresolved dependency count (only
    /// meaningful for tasks owned by `node`).
    pub(crate) pending: Vec<HashMap<u32, usize>>,
    /// local_dependents[task.0] = same-node tasks depending on it.
    pub(crate) local_dependents: HashMap<u32, Vec<u32>>,
    /// remote_notify[task.0] = distinct other nodes hosting dependents.
    pub(crate) remote_notify: HashMap<u32, Vec<usize>>,
    /// remote_edges_in[node][remote_task.0] = local dependents.
    pub(crate) remote_edges_in: Vec<HashMap<u32, Vec<u32>>>,
    /// Number of tasks each node owns.
    pub(crate) local_counts: Vec<usize>,
}

impl NodePlan {
    pub(crate) fn derive(graph: &TaskGraph, nodes: usize) -> Self {
        let mut pending: Vec<HashMap<u32, usize>> = vec![HashMap::new(); nodes];
        let mut local_dependents: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut remote_notify: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut remote_edges_in: Vec<HashMap<u32, Vec<u32>>> = vec![HashMap::new(); nodes];
        let mut local_counts = vec![0usize; nodes];
        for t in graph.tasks() {
            local_counts[t.node] += 1;
            pending[t.node].insert(t.id.0, t.deps.len());
            for d in &t.deps {
                let dep_node = graph.task(*d).node;
                if dep_node == t.node {
                    local_dependents.entry(d.0).or_default().push(t.id.0);
                } else {
                    let notify = remote_notify.entry(d.0).or_default();
                    if !notify.contains(&t.node) {
                        notify.push(t.node);
                    }
                    remote_edges_in[t.node].entry(d.0).or_default().push(t.id.0);
                }
            }
        }
        Self {
            pending,
            local_dependents,
            remote_notify,
            remote_edges_in,
            local_counts,
        }
    }
}

/// One node's dataflow state and primitive execution: cells,
/// codec outputs, received payloads, measurements. Shared verbatim
/// between the fast-path [`NodeWorker`] and the fault-tolerant worker
/// ([`crate::ft`]) — the fabrics differ, the computation cannot.
pub(crate) struct NodeCore<'a> {
    pub(crate) node: usize,
    pub(crate) graph: &'a TaskGraph,
    pub(crate) flows: &'a ReplicaFlows,
    pub(crate) layout: &'a FlowLayout,
    pub(crate) compressor: Option<&'a dyn Compressor>,
    pub(crate) seed: u64,
    pub(crate) cells: HashMap<(u32, u32), Cell>,
    enc_out: HashMap<u32, Vec<u8>>,
    dec_out: HashMap<u32, Vec<f32>>,
    recv_payload: HashMap<u32, Arc<Payload>>,
    /// Payloads delivered by remote `Send` completions, keyed by the
    /// sending task.
    pub(crate) inbound: HashMap<u32, Arc<Payload>>,
    /// Recv/Decode tasks whose output is a degradation hole.
    skipped_out: HashSet<u32>,
    pub(crate) report: RuntimeReport,
    /// Tracing handles; `None` keeps the hot path allocation-free.
    pub(crate) trace: Option<NodeTrace>,
    /// Live metric handles; `None` keeps the hot path recording-free.
    pub(crate) metrics: Option<NodeMetrics>,
    /// Which pipelined iteration this core executes (0 on the
    /// single-iteration fast path). Stamped onto traced spans so
    /// cross-rank Send→Recv pairs match unambiguously.
    pub(crate) iter: u32,
}

impl<'a> NodeCore<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        node: usize,
        graph: &'a TaskGraph,
        flows: &'a ReplicaFlows,
        layout: &'a FlowLayout,
        compressor: Option<&'a dyn Compressor>,
        seed: u64,
        trace: Option<NodeTrace>,
        metrics: Option<NodeMetrics>,
    ) -> Self {
        Self {
            node,
            graph,
            flows,
            layout,
            compressor,
            seed,
            cells: HashMap::new(),
            enc_out: HashMap::new(),
            dec_out: HashMap::new(),
            recv_payload: HashMap::new(),
            inbound: HashMap::new(),
            skipped_out: HashSet::new(),
            report: RuntimeReport::default(),
            trace: None,
            metrics,
            iter: 0,
        }
        .with_trace(trace)
    }

    fn with_trace(mut self, trace: Option<NodeTrace>) -> Self {
        self.trace = trace;
        self
    }

    /// Finds the transitive dependency of `id` matching `pred`,
    /// looking through zero-cost barriers (mirrors the interpreter).
    pub(crate) fn find_dep(&self, id: TaskId, pred: impl Fn(Primitive) -> bool) -> Option<TaskId> {
        let mut stack: Vec<TaskId> = self.graph.task(id).deps.clone();
        while let Some(d) = stack.pop() {
            let dt = self.graph.task(d);
            if pred(dt.prim) {
                return Some(d);
            }
            if dt.prim == Primitive::Barrier {
                stack.extend(dt.deps.iter().copied());
            }
        }
        None
    }

    fn compressor(&self) -> Result<&dyn Compressor> {
        self.compressor
            .ok_or_else(|| Error::sim("codec task without a compressor"))
    }

    /// Rescales a degraded accumulator exactly once, approximating the
    /// lost contributions: the cell holds `1 + merged` of the `nodes`
    /// expected contributions, so scale by their ratio (bounded
    /// staleness: the hole is filled with the survivors' mean).
    fn settle_degraded(&mut self, key: (u32, u32)) {
        let nodes = self.layout.nodes;
        if let Some(cell) = self.cells.get_mut(&key) {
            if cell.missing > 0 && !cell.scaled {
                let f = crate::protocol::degrade_rescale(nodes, cell.merged as usize);
                for a in &mut cell.acc {
                    *a *= f;
                }
                cell.scaled = true;
            }
        }
    }

    /// The degraded stand-in for a skipped incoming aggregate: the
    /// local accumulator scaled up to the expected contribution count.
    fn degraded_aggregate(&self, key: (u32, u32)) -> Result<Vec<f32>> {
        let cell = self
            .cells
            .get(&key)
            .ok_or_else(|| Error::sim("update with no state"))?;
        let f = crate::protocol::degrade_rescale(self.layout.nodes, cell.merged as usize);
        Ok(cell.acc.iter().map(|x| x * f).collect())
    }

    /// Executes one primitive, recording its measurement into the
    /// report (and trace/metrics when enabled). Returns the outbound
    /// payload for `Send` tasks; the caller owns completion
    /// bookkeeping (dependency resolution and fabric messaging).
    pub(crate) fn execute_one(&mut self, id: TaskId) -> Result<Option<Arc<Payload>>> {
        let start_ns = self.trace.as_ref().map(|tr| tr.tracer.now_ns());
        let started = Instant::now();
        let t = self.graph.task(id);
        debug_assert_eq!(t.node, self.node, "task scheduled on the wrong node");
        let key = (t.chunk.grad, t.chunk.part);
        let mut outbound: Option<Arc<Payload>> = None;
        let mut sent_bytes: Option<(u64, u64)> = None;
        let mut recv_from: Option<u64> = None;
        match t.prim {
            Primitive::Source => {
                let start = self.layout.chunk_start[&key];
                let len = (t.bytes_raw / 4) as usize;
                let reps = &self.flows[&t.chunk.grad][self.node];
                let mut acc = reps[0].as_slice()[start..start + len].to_vec();
                if reps.len() > 1 {
                    let agg_start_ns = self.trace.as_ref().map(|tr| tr.tracer.now_ns());
                    let agg_started = Instant::now();
                    for r in &reps[1..] {
                        let slice = &r.as_slice()[start..start + len];
                        for (a, &b) in acc.iter_mut().zip(slice) {
                            *a += b;
                        }
                    }
                    let agg_ns = agg_started.elapsed().as_nanos() as u64;
                    self.report.local_agg_ns += agg_ns;
                    if let Some(m) = &self.metrics {
                        m.local_agg.record(agg_ns);
                    }
                    if let Some(tr) = &self.trace {
                        // Nested inside the enclosing source span.
                        tr.tracer.record_span(
                            tr.track,
                            "local_agg",
                            "local_agg",
                            agg_start_ns.unwrap_or(0),
                            agg_ns,
                            &[("replicas", reps.len() as u64)],
                        );
                    }
                }
                self.cells.entry(key).or_default().acc = acc;
            }
            Primitive::Encode => {
                self.settle_degraded(key);
                let c = self.compressor()?;
                let cell = self
                    .cells
                    .get(&key)
                    .ok_or_else(|| Error::sim("encode before source"))?;
                // Identical per-task seed derivation to the
                // interpreter — required for bit-level equivalence.
                let task_seed = self.seed ^ (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let bytes = c.encode(&cell.acc, task_seed);
                self.enc_out.insert(id.0, bytes);
            }
            Primitive::Decode => {
                let recv = self
                    .find_dep(id, |p| p == Primitive::Recv)
                    .ok_or_else(|| Error::sim("decode without a recv dependency"))?;
                match self.recv_payload.get(&recv.0).map(|p| p.as_ref()) {
                    Some(Payload::Compressed(bytes)) => {
                        let out = self.compressor()?.decode(bytes)?;
                        self.dec_out.insert(id.0, out);
                    }
                    Some(Payload::Raw(_)) => {
                        return Err(Error::sim("decode of a raw payload"));
                    }
                    Some(Payload::Skipped) => {
                        // The hole flows through: downstream consumers
                        // handle it by scaling, not by decoding.
                        self.skipped_out.insert(id.0);
                    }
                    None => return Err(Error::sim("decode before recv delivered")),
                }
            }
            Primitive::Merge => {
                enum Contribution {
                    Data(Vec<f32>),
                    Hole,
                }
                let contribution = if let Some(d) = self.find_dep(id, |p| p == Primitive::Decode) {
                    if self.skipped_out.contains(&d.0) {
                        Contribution::Hole
                    } else {
                        Contribution::Data(
                            self.dec_out
                                .get(&d.0)
                                .cloned()
                                .ok_or_else(|| Error::sim("merge before decode"))?,
                        )
                    }
                } else if let Some(r) = self.find_dep(id, |p| p == Primitive::Recv) {
                    match self.recv_payload.get(&r.0).map(|p| p.as_ref()) {
                        Some(Payload::Raw(v)) => Contribution::Data(v.clone()),
                        Some(Payload::Compressed(_)) => {
                            return Err(Error::sim("raw merge of compressed payload"));
                        }
                        Some(Payload::Skipped) => Contribution::Hole,
                        None => return Err(Error::sim("merge before recv delivered")),
                    }
                } else {
                    return Err(Error::sim("merge with nothing to merge"));
                };
                let cell = self
                    .cells
                    .get_mut(&key)
                    .ok_or_else(|| Error::sim("merge with no accumulator"))?;
                match contribution {
                    Contribution::Data(contribution) => {
                        if contribution.len() != cell.acc.len() {
                            return Err(Error::sim("merge length mismatch"));
                        }
                        for (a, b) in cell.acc.iter_mut().zip(contribution) {
                            *a += b;
                        }
                        cell.merged += 1;
                    }
                    Contribution::Hole => {
                        // The contribution was skipped by degradation:
                        // nothing to add; remember the gap so the acc
                        // is rescaled before anyone consumes it.
                        cell.missing += 1;
                    }
                }
            }
            Primitive::Send => {
                let payload = match t.send_src {
                    SendSrc::Raw => {
                        self.settle_degraded(key);
                        let cell = self
                            .cells
                            .get(&key)
                            .ok_or_else(|| Error::sim("raw send with no state"))?;
                        Payload::Raw(cell.acc.clone())
                    }
                    SendSrc::Encoded => {
                        let e = self
                            .find_dep(id, |p| p == Primitive::Encode)
                            .ok_or_else(|| Error::sim("encoded send without encode"))?;
                        Payload::Compressed(
                            self.enc_out
                                .get(&e.0)
                                .cloned()
                                .ok_or_else(|| Error::sim("send before encode ran"))?,
                        )
                    }
                    SendSrc::Forward => {
                        let r = self
                            .find_dep(id, |p| p == Primitive::Recv)
                            .ok_or_else(|| Error::sim("forward without recv"))?;
                        let p = self
                            .recv_payload
                            .get(&r.0)
                            .ok_or_else(|| Error::sim("forward before recv delivered"))?;
                        p.as_ref().clone()
                    }
                };
                self.report.bytes_wire += payload.wire_bytes();
                self.report.bytes_raw += t.bytes_raw;
                sent_bytes = Some((payload.wire_bytes(), t.bytes_raw));
                outbound = Some(Arc::new(payload));
            }
            Primitive::Recv => {
                let send = self
                    .find_dep(id, |p| p == Primitive::Send)
                    .ok_or_else(|| Error::sim("recv without its send"))?;
                recv_from = Some(send.0 as u64);
                let payload = self
                    .inbound
                    .remove(&send.0)
                    .ok_or_else(|| Error::sim("recv promoted before its payload arrived"))?;
                if matches!(payload.as_ref(), Payload::Skipped) {
                    self.skipped_out.insert(id.0);
                }
                self.recv_payload.insert(id.0, payload);
            }
            Primitive::Barrier => {}
            Primitive::Update => {
                let value: Vec<f32> = if let Some(d) = self.find_dep(id, |p| p == Primitive::Decode)
                {
                    if self.skipped_out.contains(&d.0) {
                        // The disseminated aggregate never arrived:
                        // install the best local approximation.
                        self.degraded_aggregate(key)?
                    } else {
                        self.dec_out
                            .get(&d.0)
                            .cloned()
                            .ok_or_else(|| Error::sim("update before decode"))?
                    }
                } else if let Some(r) = self.find_dep(id, |p| p == Primitive::Recv) {
                    match self.recv_payload.get(&r.0).map(|p| p.as_ref()) {
                        Some(Payload::Raw(v)) => v.clone(),
                        Some(Payload::Compressed(_)) => {
                            return Err(Error::sim("raw update of compressed payload"));
                        }
                        Some(Payload::Skipped) => self.degraded_aggregate(key)?,
                        None => return Err(Error::sim("update before recv delivered")),
                    }
                } else if let Some(e) = self.find_dep(id, |p| p == Primitive::Encode) {
                    // Replica consistency: the aggregate's owner
                    // installs the reconstruction of the bytes it
                    // disseminated, exactly as every decoding replica
                    // will.
                    let c = self.compressor()?;
                    let bytes = self
                        .enc_out
                        .get(&e.0)
                        .ok_or_else(|| Error::sim("update before encode ran"))?;
                    c.decode(bytes)?
                } else {
                    self.settle_degraded(key);
                    self.cells
                        .get(&key)
                        .ok_or_else(|| Error::sim("update with no state"))?
                        .acc
                        .clone()
                };
                let cell = self
                    .cells
                    .get_mut(&key)
                    .ok_or_else(|| Error::sim("update with no state"))?;
                if value.len() != cell.acc.len() {
                    return Err(Error::sim("update length mismatch"));
                }
                cell.acc = value.clone();
                cell.updated = Some(value);
            }
        }
        let ns = started.elapsed().as_nanos() as u64;
        self.report.prim_mut(t.prim).record(ns);
        if let Some(m) = &self.metrics {
            // Same single measurement the report just recorded, so
            // metrics-vs-report parity holds by construction.
            m.prims[prim_index(t.prim)].record(ns);
            if let Some((wire, raw)) = sent_bytes {
                m.bytes_wire.add(wire);
                m.bytes_raw.add(raw);
            }
        }
        if let Some(tr) = &self.trace {
            // The span duration is the very `ns` the report recorded
            // above — one measurement, two consumers — so a report
            // derived from the trace matches this one exactly.
            let name = prim_category(t.prim);
            let mut args = vec![
                ("grad", t.chunk.grad as u64),
                ("part", t.chunk.part as u64),
                ("task", id.0 as u64),
                ("iter", u64::from(self.iter)),
            ];
            if let Some((wire, raw)) = sent_bytes {
                args.push(("bytes_wire", wire));
                args.push(("bytes_raw", raw));
            }
            if let Some(s) = recv_from {
                // The matching Send task: merged multi-process traces
                // pair Send→Recv spans across ranks on this link for
                // the clock-monotonicity check.
                args.push(("send_task", s));
            }
            tr.tracer
                .record_span(tr.track, name, name, start_ns.unwrap_or(0), ns, &args);
        }
        Ok(outbound)
    }

    /// Records a fabric-message instant and the message counter (one
    /// delivered inter-node message).
    pub(crate) fn note_message(&mut self, task: TaskId, wire_bytes: Option<u64>) {
        self.report.messages += 1;
        if let Some(m) = &self.metrics {
            m.messages.inc();
        }
        if let Some(tr) = &self.trace {
            let mut args = vec![("task", task.0 as u64)];
            if let Some(b) = wire_bytes {
                args.push(("bytes", b));
            }
            tr.tracer
                .instant(tr.track, "msg", "fabric", tr.tracer.now_ns(), &args);
        }
    }
}

/// One node's execution state: the per-node task manager.
struct NodeWorker<'a> {
    core: NodeCore<'a>,
    plan: &'a NodePlan,
    config: RuntimeConfig,
    rx: Receiver<Msg>,
    txs: Vec<Sender<Msg>>,
    poison: &'a AtomicBool,
    /// Remaining dependency counts for local tasks.
    pending: HashMap<u32, usize>,
    /// Ready computing tasks (encode/decode/merge/update + source).
    q_comp: VecDeque<TaskId>,
    /// Ready communication tasks (send/recv).
    q_commu: VecDeque<TaskId>,
    done: usize,
}

impl NodeWorker<'_> {
    fn run(&mut self) -> Result<(HashMap<(u32, u32), Cell>, RuntimeReport)> {
        // Seed the queues with dependency-free local tasks (Sources).
        let ready: Vec<u32> = self
            .pending
            .iter()
            .filter(|&(_, &n)| n == 0)
            .map(|(&t, _)| t)
            .collect();
        let mut ready = ready;
        ready.sort_unstable(); // Deterministic initial order.
        for t in ready {
            self.enqueue(TaskId(t));
        }

        let total = self.plan.local_counts[self.core.node];
        while self.done < total {
            if self.poison.load(Ordering::Relaxed) {
                return Err(Error::sim("aborted"));
            }
            // Drain the inbox without blocking: completion events
            // promote tasks into the queues.
            loop {
                match self.rx.try_recv() {
                    Ok(msg) => self.handle(msg)?,
                    Err(_) => break,
                }
            }
            if let Some(t) = self.next_ready() {
                if let Err(e) = self.execute(t) {
                    self.broadcast_abort();
                    return Err(e);
                }
            } else if self.done < total {
                match self.rx.recv_timeout(self.config.inbox_timeout) {
                    Ok(msg) => self.handle(msg)?,
                    Err(RecvTimeoutError::Timeout) => {
                        self.broadcast_abort();
                        return Err(Error::sim(format!(
                            "node {} wedged: {} of {total} tasks done, inbox silent",
                            self.core.node, self.done
                        )));
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.broadcast_abort();
                        return Err(Error::sim(format!(
                            "node {}: fabric disconnected with {} of {total} tasks done",
                            self.core.node, self.done
                        )));
                    }
                }
            }
        }
        Ok((
            std::mem::take(&mut self.core.cells),
            std::mem::take(&mut self.core.report),
        ))
    }

    fn broadcast_abort(&self) {
        self.poison.store(true, Ordering::Relaxed);
        for (n, tx) in self.txs.iter().enumerate() {
            if n != self.core.node {
                let _ = tx.send(Msg::Abort);
            }
        }
    }

    fn handle(&mut self, msg: Msg) -> Result<()> {
        match msg {
            Msg::Abort => Err(Error::sim("aborted")),
            // Rendezvous-plane frames never belong on the data mesh;
            // a straggling one from a stale epoch is dropped, which
            // is exactly the stale-epoch safety rule.
            Msg::Join { .. } | Msg::Welcome { .. } | Msg::EpochBump { .. } => Ok(()),
            Msg::Done { task, payload, .. } => {
                let wire_bytes = payload.as_deref().map(Payload::wire_bytes);
                if let Some(p) = payload {
                    self.core.inbound.insert(task.0, p);
                }
                self.core.note_message(task, wire_bytes);
                if let Some(deps) = self.plan.remote_edges_in[self.core.node].get(&task.0) {
                    for &d in deps.clone().iter() {
                        self.resolve_dep(d);
                    }
                }
                Ok(())
            }
        }
    }

    /// Clears one dependency edge of local task `t`, promoting it into
    /// its queue when the count reaches zero (Figure 2's promotion).
    fn resolve_dep(&mut self, t: u32) {
        let n = self
            .pending
            .get_mut(&t)
            .expect("resolve_dep on a task this node does not own");
        *n -= 1;
        if *n == 0 {
            self.enqueue(TaskId(t));
        }
    }

    fn enqueue(&mut self, t: TaskId) {
        let prim = self.core.graph.task(t).prim;
        if prim == Primitive::Send || prim == Primitive::Recv {
            self.q_commu.push_back(t);
            if let Some(tr) = &self.core.trace {
                tr.q_commu.add(1);
            }
            if let Some(m) = &self.core.metrics {
                m.q_commu_depth.record(self.q_commu.len() as u64);
            }
        } else {
            self.q_comp.push_back(t);
            if let Some(tr) = &self.core.trace {
                tr.q_comp.add(1);
            }
            if let Some(m) = &self.core.metrics {
                m.q_comp_depth.record(self.q_comp.len() as u64);
            }
        }
    }

    /// Communication first: a completed send unblocks another node,
    /// which is what keeps the pipeline full.
    fn next_ready(&mut self) -> Option<TaskId> {
        if let Some(t) = self.q_commu.pop_front() {
            if let Some(tr) = &self.core.trace {
                tr.q_commu.add(-1);
            }
            return Some(t);
        }
        if let Some(t) = self.q_comp.pop_front() {
            if let Some(tr) = &self.core.trace {
                tr.q_comp.add(-1);
            }
            return Some(t);
        }
        None
    }

    fn execute(&mut self, id: TaskId) -> Result<()> {
        let prim = self.core.graph.task(id).prim;
        // Batch compression: gather other ready small encodes so the
        // group runs as one launch.
        if prim == Primitive::Encode
            && self.config.batch_compression
            && self.core.graph.task(id).bytes_raw <= self.config.comp_batch_max_task_bytes
        {
            let mut batch = vec![id];
            let mut rest = VecDeque::new();
            while let Some(t) = self.q_comp.pop_front() {
                let n = self.core.graph.task(t);
                if n.prim == Primitive::Encode
                    && n.bytes_raw <= self.config.comp_batch_max_task_bytes
                {
                    batch.push(t);
                } else {
                    rest.push_back(t);
                }
            }
            self.q_comp = rest;
            self.core.report.comp_batch_launches += 1;
            if let Some(m) = &self.core.metrics {
                m.batch_launches.inc();
            }
            if let Some(tr) = &self.core.trace {
                // The gathered encodes left Q_comp without individual
                // pops; resync the gauge to the rebuilt queue.
                tr.q_comp.set(self.q_comp.len() as i64);
                tr.tracer.instant(
                    tr.track,
                    "batch",
                    "batch",
                    tr.tracer.now_ns(),
                    &[("size", batch.len() as u64)],
                );
            }
            for t in batch {
                let outbound = self.core.execute_one(t)?;
                self.finish(t, outbound);
            }
            return Ok(());
        }
        let outbound = self.core.execute_one(id)?;
        self.finish(id, outbound);
        Ok(())
    }

    /// Marks `id` complete: clears local dependents' edges and ships
    /// completion events (with payloads for sends) to remote nodes.
    fn finish(&mut self, id: TaskId, payload: Option<Arc<Payload>>) {
        self.done += 1;
        if let Some(deps) = self.plan.local_dependents.get(&id.0) {
            for &d in deps.clone().iter() {
                self.resolve_dep(d);
            }
        }
        if let Some(nodes) = self.plan.remote_notify.get(&id.0) {
            for &n in nodes {
                // A dropped receiver means that node already failed;
                // the poison flag will surface the root cause.
                let _ = self.txs[n].send(Msg::Done {
                    task: id,
                    payload: payload.clone(),
                    iter: 0,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_compress::Algorithm;
    use hipress_core::interp::{gradient_flows, interpret, reference_sum};
    use hipress_core::plan::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
    use hipress_core::{ClusterConfig, Strategy};
    use hipress_tensor::synth::{generate, GradientShape};

    fn worker_grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
        (0..nodes)
            .map(|w| {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(g, &n)| {
                        generate(
                            n,
                            GradientShape::Gaussian { std_dev: 1.0 },
                            (w * 1000 + g) as u64,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn iter_spec(sizes: &[usize], alg: Option<Algorithm>, k: usize) -> IterationSpec {
        IterationSpec {
            gradients: sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| SyncGradient {
                    name: format!("g{i}"),
                    bytes: (n * 4) as u64,
                    ready_offset_ns: 0,
                    plan: GradPlan {
                        compress: true,
                        partitions: k,
                    },
                })
                .collect(),
            compression: alg.map(|a| CompressionSpec::of(a.build().unwrap().as_ref())),
        }
    }

    #[test]
    fn uncompressed_threads_compute_exact_sum() {
        let nodes = 4;
        let sizes = [100usize, 257, 31];
        let grads = worker_grads(nodes, &sizes);
        let iter = iter_spec(&sizes, None, 3);
        let cluster = ClusterConfig::ec2(nodes);
        for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let graph = strat.build(&cluster, &iter).unwrap();
            let flows = gradient_flows(&grads);
            let out = run(&graph, nodes, &flows, None, 7, &RuntimeConfig::default()).unwrap();
            for o in &out.flows {
                assert!(o.replicas_consistent(), "{strat:?} flow {}", o.flow);
                let reference = reference_sum(&flows[&o.flow]);
                assert!(o.max_abs_error(&reference) < 1e-4, "{strat:?}");
            }
            assert_eq!(out.report.nodes, nodes);
            assert!(out.report.wall_ns > 0);
            assert!(out.report.bytes_wire > 0);
        }
    }

    #[test]
    fn threads_match_interpreter_bit_for_bit() {
        let nodes = 3;
        let sizes = [512usize, 64];
        let grads = worker_grads(nodes, &sizes);
        for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            for alg in [
                Algorithm::OneBit,
                Algorithm::TernGrad { bitwidth: 2 },
                Algorithm::Dgc { rate: 0.1 },
            ] {
                let iter = iter_spec(&sizes, Some(alg), 2);
                let cluster = ClusterConfig::ec2(nodes);
                let graph = strat.build(&cluster, &iter).unwrap();
                let c = alg.build().unwrap();
                let flows = gradient_flows(&grads);
                let sim = interpret(&graph, nodes, &flows, Some(c.as_ref()), 11).unwrap();
                let rt = run(
                    &graph,
                    nodes,
                    &flows,
                    Some(c.as_ref()),
                    11,
                    &RuntimeConfig::default(),
                )
                .unwrap();
                assert_eq!(sim.len(), rt.flows.len());
                for (a, b) in sim.iter().zip(&rt.flows) {
                    assert_eq!(a.flow, b.flow);
                    assert_eq!(a.per_node, b.per_node, "{strat:?} {} diverged", c.name());
                }
            }
        }
    }

    #[test]
    fn local_aggregation_sums_replicas() {
        let nodes = 2;
        let elems = 96usize;
        // Two local replicas per node.
        let replicated: ReplicaFlows = HashMap::from([(
            0u32,
            (0..nodes)
                .map(|w| {
                    (0..2)
                        .map(|r| {
                            generate(
                                elems,
                                GradientShape::Gaussian { std_dev: 1.0 },
                                (w * 10 + r) as u64,
                            )
                        })
                        .collect()
                })
                .collect(),
        )]);
        let iter = iter_spec(&[elems], None, 1);
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncPs.build(&cluster, &iter).unwrap();
        let out = run_replicated(
            &graph,
            nodes,
            &replicated,
            None,
            3,
            &RuntimeConfig::default(),
        )
        .unwrap();
        // Equivalent single-replica input through the interpreter.
        let summed = sum_replicas(&replicated).unwrap();
        let sim = interpret(&graph, nodes, &summed, None, 3).unwrap();
        assert_eq!(out.flows[0].per_node, sim[0].per_node);
        assert!(out.report.local_agg_ns > 0);
    }

    #[test]
    fn batch_compression_is_semantically_neutral() {
        let nodes = 3;
        let sizes = [2048usize];
        let grads = worker_grads(nodes, &sizes);
        let iter = iter_spec(&sizes, Some(Algorithm::OneBit), 4);
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncPs.build(&cluster, &iter).unwrap();
        let c = Algorithm::OneBit.build().unwrap();
        let flows = gradient_flows(&grads);
        let batched = run(
            &graph,
            nodes,
            &flows,
            Some(c.as_ref()),
            5,
            &RuntimeConfig::default(),
        )
        .unwrap();
        let unbatched = run(
            &graph,
            nodes,
            &flows,
            Some(c.as_ref()),
            5,
            &RuntimeConfig {
                batch_compression: false,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(batched.flows[0].per_node, unbatched.flows[0].per_node);
        assert!(batched.report.comp_batch_launches > 0);
        assert_eq!(unbatched.report.comp_batch_launches, 0);
        assert_eq!(
            batched.report.encode.count, unbatched.report.encode.count,
            "batching must not change how many encodes run"
        );
    }

    #[test]
    fn compressed_run_moves_fewer_bytes() {
        let nodes = 4;
        let sizes = [1 << 14];
        let grads = worker_grads(nodes, &sizes);
        let cluster = ClusterConfig::ec2(nodes);
        let raw_iter = iter_spec(&sizes, None, 2);
        let cmp_iter = iter_spec(&sizes, Some(Algorithm::OneBit), 2);
        let flows = gradient_flows(&grads);
        let raw_graph = Strategy::CaSyncRing.build(&cluster, &raw_iter).unwrap();
        let cmp_graph = Strategy::CaSyncRing.build(&cluster, &cmp_iter).unwrap();
        let c = Algorithm::OneBit.build().unwrap();
        let raw = run(
            &raw_graph,
            nodes,
            &flows,
            None,
            1,
            &RuntimeConfig::default(),
        )
        .unwrap();
        let cmp = run(
            &cmp_graph,
            nodes,
            &flows,
            Some(c.as_ref()),
            1,
            &RuntimeConfig::default(),
        )
        .unwrap();
        assert!(
            cmp.report.bytes_wire < raw.report.bytes_wire / 8,
            "onebit wire volume must collapse: {} vs {}",
            cmp.report.bytes_wire,
            raw.report.bytes_wire
        );
        assert!(cmp.report.compression_savings() > 8.0);
        assert!((raw.report.compression_savings() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_flow_data_is_rejected() {
        let nodes = 2;
        let iter = iter_spec(&[64], None, 1);
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncPs.build(&cluster, &iter).unwrap();
        let empty: Flows = HashMap::new();
        assert!(run(&graph, nodes, &empty, None, 0, &RuntimeConfig::default()).is_err());
    }

    #[test]
    fn codec_graph_without_compressor_aborts_cleanly() {
        let nodes = 3;
        let sizes = [256usize];
        let grads = worker_grads(nodes, &sizes);
        let iter = iter_spec(&sizes, Some(Algorithm::OneBit), 1);
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncPs.build(&cluster, &iter).unwrap();
        let flows = gradient_flows(&grads);
        // Compressed graph, no compressor: every node must unwind, not
        // deadlock.
        let err = run(&graph, nodes, &flows, None, 0, &RuntimeConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn inbox_timeout_is_configurable() {
        // A shortened deadline still completes healthy runs; the knob
        // exists so a lost peer surfaces as an error, not a hang (the
        // fault-tolerant path in crate::ft exercises the failure
        // side with per-recv deadlines).
        let nodes = 2;
        let sizes = [128usize];
        let grads = worker_grads(nodes, &sizes);
        let iter = iter_spec(&sizes, None, 1);
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncPs.build(&cluster, &iter).unwrap();
        let flows = gradient_flows(&grads);
        let config = RuntimeConfig {
            inbox_timeout: Duration::from_millis(250),
            ..RuntimeConfig::default()
        };
        let out = run(&graph, nodes, &flows, None, 7, &config).unwrap();
        assert!(out.flows[0].replicas_consistent());
    }
}

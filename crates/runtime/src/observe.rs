//! Distributed observability for the process backend: shipping
//! per-rank traces over the control channel, aligning per-process
//! clocks, merging rank timelines into one global trace, and the
//! postmortem dump format for the flight recorder.
//!
//! Each worker process records against its own monotonic epoch
//! (`Instant` values are meaningless across processes), so the
//! coordinator runs an NTP-style ping exchange over the Ctl socket
//! during rendezvous: it stamps `t1`, the worker answers with its own
//! clock reading `t2`, the coordinator stamps `t3` on receipt. With
//! symmetric paths the worker's clock read happened at coordinator
//! time `(t1 + t3) / 2`, so `offset = (t1 + t3)/2 − t2` maps worker
//! timestamps onto the coordinator's epoch with error at most
//! `(t3 − t1)/2` (half the round trip — the asymmetric worst case).
//! Several probes are taken and the minimum-RTT sample wins, since
//! queueing delay only ever inflates the bound.
//!
//! The alignment is *validated*, not assumed: after merging,
//! [`validate_clock_monotonicity`] checks every matched Send→Recv
//! span pair — a receive that ends before its send began (beyond the
//! two ranks' combined uncertainty) proves the offsets are wrong.

use hipress_fabric::{DecodeError, FlightEvent, Reader, WireMsg, Writer};
use hipress_trace::{Trace, Tracer, TrackKind};
use std::collections::HashMap;

/// Zigzag-encodes a signed offset so it rides in unsigned trace args
/// and TLV fields (small magnitudes stay small either sign).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// One rank's clock alignment against the coordinator's epoch:
/// add `offset_ns` to a worker timestamp to land on the
/// coordinator's timeline, correct to within `uncertainty_ns`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockSync {
    /// Worker-to-coordinator epoch offset, nanoseconds (signed: a
    /// worker that started later than the coordinator has a positive
    /// offset).
    pub offset_ns: i64,
    /// Error bound on the offset: half the round-trip time of the
    /// best probe.
    pub uncertainty_ns: u64,
}

impl ClockSync {
    /// Estimates the alignment from `(t1, t2, t3)` probe samples —
    /// coordinator send time, worker clock reading, coordinator
    /// receive time. The minimum-RTT sample wins. An empty slice
    /// yields the identity alignment with zero claimed uncertainty
    /// (callers that never probed are on one clock already).
    pub fn estimate(samples: &[(u64, u64, u64)]) -> ClockSync {
        let best = samples
            .iter()
            .min_by_key(|&&(t1, _, t3)| t3.saturating_sub(t1));
        match best {
            None => ClockSync::default(),
            Some(&(t1, t2, t3)) => {
                let rtt = t3.saturating_sub(t1);
                let offset = (i128::from(t1) + i128::from(t3)) / 2 - i128::from(t2);
                ClockSync {
                    offset_ns: offset.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64,
                    uncertainty_ns: rtt / 2,
                }
            }
        }
    }

    /// Maps a worker timestamp onto the coordinator's timeline,
    /// saturating at the representable range.
    pub fn correct(&self, ts_ns: u64) -> u64 {
        if self.offset_ns >= 0 {
            ts_ns.saturating_add(self.offset_ns as u64)
        } else {
            ts_ns.saturating_sub(self.offset_ns.unsigned_abs())
        }
    }
}

impl WireMsg for ClockSync {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(zigzag(self.offset_ns));
        w.put_u64(self.uncertainty_ns);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ClockSync {
            offset_ns: unzigzag(r.u64()?),
            uncertainty_ns: r.u64()?,
        })
    }
}

const TRACK_THREAD: u8 = 1;
const TRACK_COUNTER: u8 = 2;

/// Appends a full [`Trace`] in the workspace TLV idiom: the process
/// name, then each track's name, kind, events (name, category,
/// timestamps, instant flag, sorted args), and counter samples.
pub fn put_trace(w: &mut Writer, trace: &Trace) {
    w.put_str(&trace.process);
    w.put_u32(trace.tracks().len() as u32);
    for track in trace.tracks() {
        w.put_str(&track.name);
        w.put_u8(match track.kind {
            TrackKind::Thread => TRACK_THREAD,
            TrackKind::Counter => TRACK_COUNTER,
        });
        w.put_u32(track.events.len() as u32);
        for e in &track.events {
            w.put_str(&e.name);
            w.put_str(&e.category);
            w.put_u64(e.ts_ns);
            w.put_u64(e.dur_ns);
            w.put_u8(u8::from(e.instant));
            w.put_u32(e.args.len() as u32);
            for (k, v) in &e.args {
                w.put_str(k);
                w.put_u64(*v);
            }
        }
        w.put_u32(track.samples.len() as u32);
        for &(ts, v) in &track.samples {
            w.put_u64(ts);
            w.put_f64(v);
        }
    }
}

/// Parses one [`Trace`] written by [`put_trace`]. Rebuilds through
/// the public `Trace` recording API, so a round trip is equal to the
/// original (args arrive already in the canonical sorted order).
///
/// # Errors
///
/// A structured [`DecodeError`] for any malformed input.
pub fn get_trace(r: &mut Reader<'_>) -> Result<Trace, DecodeError> {
    let process = r.str()?.to_string();
    let mut trace = Trace::new(&process);
    for _ in 0..r.u32()? {
        let name = r.str()?.to_string();
        let id = match r.u8()? {
            TRACK_THREAD => trace.thread_track(&name),
            TRACK_COUNTER => trace.counter_track(&name),
            t => {
                return Err(DecodeError::BadTag {
                    what: "track kind",
                    tag: u64::from(t),
                })
            }
        };
        for _ in 0..r.u32()? {
            let name = r.str()?.to_string();
            let category = r.str()?.to_string();
            let ts_ns = r.u64()?;
            let dur_ns = r.u64()?;
            let instant = r.u8()? != 0;
            let mut args: Vec<(String, u64)> = Vec::new();
            for _ in 0..r.u32()? {
                let k = r.str()?.to_string();
                let v = r.u64()?;
                args.push((k, v));
            }
            let arg_refs: Vec<(&str, u64)> = args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            if instant {
                trace.push_instant(id, &name, &category, ts_ns, &arg_refs);
            } else {
                trace.push_span(id, &name, &category, ts_ns, dur_ns, &arg_refs);
            }
        }
        for _ in 0..r.u32()? {
            let ts = r.u64()?;
            let v = r.f64()?;
            trace.push_sample(id, ts, v);
        }
    }
    Ok(trace)
}

/// The thread track carrying per-rank clock-alignment metadata in a
/// merged trace.
pub const CLOCK_TRACK: &str = "clock";

/// Re-records every event and sample of `trace` into `tracer` with
/// timestamps corrected by `sync` — the merge step that stitches one
/// rank's timeline into the coordinator's global trace. Track names
/// carry the rank (`node{r}`, `node{r}/Q_comp`), so ranks never
/// collide.
pub fn replay_into(tracer: &Tracer, trace: &Trace, sync: &ClockSync) {
    for track in trace.tracks() {
        match track.kind {
            TrackKind::Thread => {
                let id = tracer.thread_track(&track.name);
                for e in &track.events {
                    let args: Vec<(&str, u64)> =
                        e.args.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                    let ts = sync.correct(e.ts_ns);
                    if e.instant {
                        tracer.instant(id, &e.name, &e.category, ts, &args);
                    } else {
                        tracer.record_span(id, &e.name, &e.category, ts, e.dur_ns, &args);
                    }
                }
            }
            TrackKind::Counter => {
                let id = tracer.counter_track(&track.name);
                for &(ts, v) in &track.samples {
                    tracer.sample(id, sync.correct(ts), v);
                }
            }
        }
    }
}

/// Records one rank's clock alignment as trace metadata: an `offset`
/// instant on the [`CLOCK_TRACK`] with the rank, the zigzag-encoded
/// offset, and the uncertainty bound. [`validate_clock_monotonicity`]
/// reads these back.
pub fn record_clock_meta(tracer: &Tracer, rank: usize, sync: &ClockSync) {
    let t = tracer.thread_track(CLOCK_TRACK);
    tracer.instant(
        t,
        "offset",
        "clock",
        tracer.now_ns(),
        &[
            ("rank", rank as u64),
            ("offset_zz", zigzag(sync.offset_ns)),
            ("uncertainty_ns", sync.uncertainty_ns),
        ],
    );
}

/// Per-rank offset uncertainties recorded by [`record_clock_meta`],
/// keyed by rank.
fn clock_uncertainties(trace: &Trace) -> HashMap<u64, u64> {
    let mut out = HashMap::new();
    for e in trace.events_of("clock") {
        if e.name == "offset" {
            if let Some(rank) = e.arg("rank") {
                out.insert(rank, e.arg("uncertainty_ns").unwrap_or(0));
            }
        }
    }
    out
}

/// Checks causal order on a merged, clock-corrected trace: for every
/// matched Send→Recv span pair (a `recv` span naming its `send_task`
/// against the `send` span of the same task and iteration on another
/// rank's track), the receive must not end before the send began,
/// beyond the two ranks' combined clock uncertainty. Returns the
/// number of matched pairs checked.
///
/// Single-process traces carry no `send_task` links and pass
/// vacuously with zero pairs.
///
/// # Errors
///
/// One human-readable line per violated pair — any violation means
/// the claimed clock offsets cannot be right.
pub fn validate_clock_monotonicity(trace: &Trace) -> Result<usize, Vec<String>> {
    let unc = clock_uncertainties(trace);
    // (task, iter) → (send start, sending rank). Rank comes from the
    // track name: per-rank timelines are named `node{r}` (gauge
    // tracks like `node0/Q_comp` fail the parse and are skipped).
    let mut sends: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
    for track in trace.tracks() {
        let Some(rank) = track
            .name
            .strip_prefix("node")
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        for e in &track.events {
            if e.category == "send" && !e.instant {
                if let Some(task) = e.arg("task") {
                    sends.insert((task, e.arg("iter").unwrap_or(0)), (e.ts_ns, rank));
                }
            }
        }
    }
    let mut matched = 0usize;
    let mut violations = Vec::new();
    for track in trace.tracks() {
        let Some(rank) = track
            .name
            .strip_prefix("node")
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        for e in &track.events {
            if e.category != "recv" || e.instant {
                continue;
            }
            let Some(send_task) = e.arg("send_task") else {
                continue;
            };
            let iter = e.arg("iter").unwrap_or(0);
            let Some(&(send_ts, send_rank)) = sends.get(&(send_task, iter)) else {
                continue;
            };
            matched += 1;
            let slack =
                unc.get(&rank).copied().unwrap_or(0) + unc.get(&send_rank).copied().unwrap_or(0);
            if e.end_ns().saturating_add(slack) < send_ts {
                violations.push(format!(
                    "recv of task {send_task} (iter {iter}) on node{rank} ends at {} ns, \
                     before its send on node{send_rank} starts at {send_ts} ns \
                     (clock slack {slack} ns)",
                    e.end_ns()
                ));
            }
        }
    }
    if violations.is_empty() {
        Ok(matched)
    } else {
        Err(violations)
    }
}

/// One rank's contribution to a postmortem: its flight-recorder ring
/// and the clock alignment that maps its timestamps onto the
/// coordinator's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFlight {
    /// The rank whose ring this is.
    pub rank: u32,
    /// How this rank's clock maps onto the coordinator's.
    pub sync: ClockSync,
    /// The retained protocol events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// Marks the rank of a [`PostmortemDump`] whose root cause could not
/// be attributed to a specific node.
pub const UNKNOWN_NODE: u32 = u32::MAX;

/// A crash-surviving cross-rank flight-recorder dump: every
/// surviving rank's last-N protocol events plus the diagnosed root
/// cause, written to disk by the coordinator on any synchronization
/// failure and rendered by `hipress postmortem`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostmortemDump {
    /// Total ranks in the failed run.
    pub nodes: u32,
    /// The diagnosed root-cause rank ([`UNKNOWN_NODE`] when the
    /// failure named no node).
    pub failed_node: u32,
    /// The root-cause error text.
    pub detail: String,
    /// Each reporting rank's ring (the dead rank is typically
    /// absent — its ring died with it; survivors' rings name it).
    pub ranks: Vec<RankFlight>,
}

/// File magic for serialized postmortem dumps ("HPM1").
const POSTMORTEM_MAGIC: u32 = 0x4850_4D31;

impl WireMsg for PostmortemDump {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(POSTMORTEM_MAGIC);
        w.put_u32(self.nodes);
        w.put_u32(self.failed_node);
        w.put_str(&self.detail);
        w.put_u32(self.ranks.len() as u32);
        for r in &self.ranks {
            w.put_u32(r.rank);
            r.sync.encode(w);
            w.put_u32(r.events.len() as u32);
            for e in &r.events {
                e.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let magic = r.u32()?;
        if magic != POSTMORTEM_MAGIC {
            return Err(DecodeError::BadTag {
                what: "postmortem magic",
                tag: u64::from(magic),
            });
        }
        let nodes = r.u32()?;
        let failed_node = r.u32()?;
        let detail = r.str()?.to_string();
        let mut ranks = Vec::new();
        for _ in 0..r.u32()? {
            let rank = r.u32()?;
            let sync = ClockSync::decode(r)?;
            let mut events = Vec::new();
            for _ in 0..r.u32()? {
                events.push(FlightEvent::decode(r)?);
            }
            ranks.push(RankFlight { rank, sync, events });
        }
        Ok(PostmortemDump {
            nodes,
            failed_node,
            detail,
            ranks,
        })
    }
}

impl PostmortemDump {
    /// Renders the causally ordered cross-rank narrative: every
    /// retained event from every ring, clock-corrected onto one
    /// timeline, ending at the root-cause line naming the dead node.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total: usize = self.ranks.iter().map(|r| r.events.len()).sum();
        out.push_str(&format!(
            "postmortem: {} ranks, {} flight events from {} surviving rings\n",
            self.nodes,
            total,
            self.ranks.len()
        ));
        for r in &self.ranks {
            out.push_str(&format!(
                "  clock: node {} offset {:+} ns (±{} ns), {} events\n",
                r.rank,
                r.sync.offset_ns,
                r.sync.uncertainty_ns,
                r.events.len()
            ));
        }
        let mut merged: Vec<(u64, u32, &FlightEvent)> = Vec::with_capacity(total);
        for r in &self.ranks {
            for e in &r.events {
                merged.push((r.sync.correct(e.ts_ns), r.rank, e));
            }
        }
        merged.sort_by_key(|&(ts, rank, e)| (ts, rank, e.seq));
        let base = merged.first().map(|&(ts, _, _)| ts).unwrap_or(0);
        for (ts, rank, e) in &merged {
            out.push_str(&format!(
                "  [+{:>10.3}ms] node {} {:<10} peer={} seq={} bytes={}\n",
                (ts - base) as f64 / 1e6,
                rank,
                e.kind.label(),
                e.peer,
                e.seq,
                e.bytes
            ));
        }
        if self.failed_node == UNKNOWN_NODE {
            out.push_str(&format!("root cause: unattributed — {}\n", self.detail));
        } else {
            out.push_str(&format!(
                "root cause: node {} — {}\n",
                self.failed_node, self.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_fabric::FlightKind;

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        // Small magnitudes stay small either sign.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn trace_round_trips_through_the_tlv_codec() {
        let mut t = Trace::new("casync-rt/node2");
        let n = t.thread_track("node2");
        t.push_span(
            n,
            "send",
            "send",
            100,
            40,
            &[("task", 7), ("bytes_wire", 64), ("iter", 1)],
        );
        t.push_instant(n, "msg", "fabric", 150, &[("task", 7)]);
        let q = t.counter_track("node2/Q_comp");
        t.push_sample(q, 90, 1.0);
        t.push_sample(q, 110, 0.5);
        let mut w = Writer::new();
        put_trace(&mut w, &t);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let back = get_trace(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn clock_estimate_picks_the_minimum_rtt_probe() {
        // Worker clock runs 1000 ns behind the coordinator's; the
        // second probe has the tightest round trip.
        let samples = [
            (10_000, 9_500, 11_000),  // rtt 1000, offset 1000
            (20_000, 19_100, 20_200), // rtt 200, offset 1000
            (30_000, 29_600, 31_000), // rtt 1000, offset 900
        ];
        let sync = ClockSync::estimate(&samples);
        assert_eq!(sync.offset_ns, 1_000);
        assert_eq!(sync.uncertainty_ns, 100);
        assert_eq!(sync.correct(500), 1_500);
        // No probes: identity.
        assert_eq!(ClockSync::estimate(&[]), ClockSync::default());
    }

    #[test]
    fn negative_offsets_correct_and_saturate() {
        let sync = ClockSync {
            offset_ns: -300,
            uncertainty_ns: 10,
        };
        assert_eq!(sync.correct(1_000), 700);
        assert_eq!(sync.correct(100), 0, "saturates at zero");
        let fwd = ClockSync {
            offset_ns: 5,
            uncertainty_ns: 0,
        };
        assert_eq!(fwd.correct(u64::MAX), u64::MAX, "saturates at max");
        let back = ClockSync::from_bytes(&sync.to_bytes()).unwrap();
        assert_eq!(back, sync);
    }

    #[test]
    fn replay_applies_the_offset() {
        let mut worker = Trace::new("casync-rt/node1");
        let n = worker.thread_track("node1");
        worker.push_span(n, "encode", "encode", 100, 50, &[("task", 3)]);
        let q = worker.counter_track("node1/Q_comp");
        worker.push_sample(q, 120, 2.0);

        let tracer = Tracer::new("casync-rt");
        let sync = ClockSync {
            offset_ns: 1_000,
            uncertainty_ns: 5,
        };
        replay_into(&tracer, &worker, &sync);
        record_clock_meta(&tracer, 1, &sync);
        let merged = tracer.finish();
        let e = merged.events_of("encode").next().unwrap();
        assert_eq!((e.ts_ns, e.dur_ns, e.arg("task")), (1_100, 50, Some(3)));
        let qt = merged.find_track("node1/Q_comp").unwrap();
        assert_eq!(merged.track(qt).samples, vec![(1_120, 2.0)]);
        let c = merged.events_of("clock").next().unwrap();
        assert_eq!(c.arg("rank"), Some(1));
        assert_eq!(c.arg("offset_zz").map(unzigzag), Some(1_000));
        assert_eq!(c.arg("uncertainty_ns"), Some(5));
    }

    fn merged_with_recv_end(recv_ts: u64, recv_dur: u64, slack: u64) -> Trace {
        let mut t = Trace::new("casync-rt");
        let n0 = t.thread_track("node0");
        let n1 = t.thread_track("node1");
        t.push_span(n0, "send", "send", 1_000, 50, &[("task", 4), ("iter", 0)]);
        t.push_span(
            n1,
            "recv",
            "recv",
            recv_ts,
            recv_dur,
            &[("task", 9), ("send_task", 4), ("iter", 0)],
        );
        let c = t.thread_track(CLOCK_TRACK);
        t.push_instant(
            c,
            "offset",
            "clock",
            0,
            &[
                ("rank", 1),
                ("offset_zz", zigzag(0)),
                ("uncertainty_ns", slack),
            ],
        );
        t
    }

    #[test]
    fn monotonicity_accepts_causal_pairs_and_rejects_inverted_ones() {
        // Receive ends after the send starts: fine.
        assert_eq!(
            validate_clock_monotonicity(&merged_with_recv_end(1_200, 10, 0)),
            Ok(1)
        );
        // Receive ends before the send starts, no slack: violation.
        let err = validate_clock_monotonicity(&merged_with_recv_end(500, 10, 0)).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("node1"), "{}", err[0]);
        assert!(err[0].contains("task 4"), "{}", err[0]);
        // The same inversion inside the claimed uncertainty: allowed.
        assert_eq!(
            validate_clock_monotonicity(&merged_with_recv_end(500, 10, 600)),
            Ok(1)
        );
    }

    #[test]
    fn monotonicity_is_vacuous_without_send_links() {
        // Single-process traces carry no send_task args.
        let mut t = Trace::new("casync-rt");
        let n0 = t.thread_track("node0");
        t.push_span(n0, "send", "send", 100, 10, &[("task", 1)]);
        t.push_span(n0, "recv", "recv", 50, 10, &[("task", 2)]);
        assert_eq!(validate_clock_monotonicity(&t), Ok(0));
    }

    #[test]
    fn postmortem_round_trips_and_names_the_dead_node() {
        let dump = PostmortemDump {
            nodes: 3,
            failed_node: 1,
            detail: "worker process exited without reporting an outcome".into(),
            ranks: vec![
                RankFlight {
                    rank: 0,
                    sync: ClockSync {
                        offset_ns: -50,
                        uncertainty_ns: 10,
                    },
                    events: vec![
                        FlightEvent {
                            ts_ns: 2_000_000,
                            kind: FlightKind::SendData,
                            peer: 1,
                            seq: 7,
                            bytes: 512,
                        },
                        FlightEvent {
                            ts_ns: 9_000_000,
                            kind: FlightKind::PeerLost,
                            peer: 1,
                            seq: 0,
                            bytes: 0,
                        },
                    ],
                },
                RankFlight {
                    rank: 2,
                    sync: ClockSync::default(),
                    events: vec![FlightEvent {
                        ts_ns: 1_000_000,
                        kind: FlightKind::Hello,
                        peer: 0,
                        seq: 0,
                        bytes: 0,
                    }],
                },
            ],
        };
        let back = PostmortemDump::from_bytes(&dump.to_bytes()).unwrap();
        assert_eq!(back, dump);
        let text = dump.render();
        assert!(
            text.lines().last().unwrap().contains("node 1"),
            "root cause last: {text}"
        );
        assert!(text.contains("peer-lost"), "{text}");
        // Events are merged in corrected time order: rank 2's hello
        // (1 ms) precedes rank 0's send (2 ms − 50 ns).
        let hello = text.find("hello").unwrap();
        let send = text.find("send").unwrap();
        assert!(hello < send, "{text}");
        // Truncated and corrupt inputs fail structurally.
        assert!(PostmortemDump::from_bytes(&[1, 2, 3]).is_err());
    }
}

//! The runtime message on the wire: [`Msg`] encoded through the
//! fabric codec so it can cross a serializing transport (the TCP
//! mesh) exactly as it crosses a channel in-process.
//!
//! The encoding is a plain tagged union over the little-endian codec:
//!
//! ```text
//! Msg::Done  = u8 1 | u32 task | u32 iter | payload
//! Msg::Abort = u8 2
//! payload    = u8 0                       (none)
//!            | u8 1 | u32 n | n × f32     (raw)
//!            | u8 2 | u32 n | n bytes     (compressed)
//!            | u8 3                       (skipped)
//! ```
//!
//! Floats travel as IEEE-754 bit patterns, so a decoded gradient is
//! bit-identical to the encoded one — the property the
//! processes-vs-threads cross-validation rests on. Decoding never
//! panics: every malformed input (truncation, unknown tags, hostile
//! length prefixes) is a structured [`DecodeError`].

use crate::engine::{Msg, Payload};
use hipress_core::graph::TaskId;
use hipress_fabric::{DecodeError, Reader, WireMsg, Writer};
use std::sync::Arc;

const TAG_DONE: u8 = 1;
const TAG_ABORT: u8 = 2;

const PAYLOAD_NONE: u8 = 0;
const PAYLOAD_RAW: u8 = 1;
const PAYLOAD_COMPRESSED: u8 = 2;
const PAYLOAD_SKIPPED: u8 = 3;

fn encode_payload(p: Option<&Payload>, w: &mut Writer) {
    match p {
        None => w.put_u8(PAYLOAD_NONE),
        Some(Payload::Raw(v)) => {
            w.put_u8(PAYLOAD_RAW);
            w.put_f32s(v);
        }
        Some(Payload::Compressed(b)) => {
            w.put_u8(PAYLOAD_COMPRESSED);
            w.put_bytes(b);
        }
        Some(Payload::Skipped) => w.put_u8(PAYLOAD_SKIPPED),
    }
}

fn decode_payload(r: &mut Reader<'_>) -> Result<Option<Payload>, DecodeError> {
    Ok(match r.u8()? {
        PAYLOAD_NONE => None,
        PAYLOAD_RAW => Some(Payload::Raw(r.f32s()?)),
        PAYLOAD_COMPRESSED => Some(Payload::Compressed(r.bytes()?.to_vec())),
        PAYLOAD_SKIPPED => Some(Payload::Skipped),
        tag => {
            return Err(DecodeError::BadTag {
                what: "payload",
                tag: u64::from(tag),
            })
        }
    })
}

impl WireMsg for Msg {
    fn encode(&self, w: &mut Writer) {
        match self {
            Msg::Done {
                task,
                payload,
                iter,
            } => {
                w.put_u8(TAG_DONE);
                w.put_u32(task.0);
                w.put_u32(*iter);
                encode_payload(payload.as_deref(), w);
            }
            Msg::Abort => w.put_u8(TAG_ABORT),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            TAG_DONE => {
                let task = TaskId(r.u32()?);
                let iter = r.u32()?;
                let payload = decode_payload(r)?.map(Arc::new);
                Msg::Done {
                    task,
                    payload,
                    iter,
                }
            }
            TAG_ABORT => Msg::Abort,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "msg",
                    tag: u64::from(tag),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_util::{Rng64, SplitMix64};

    fn same(a: &Msg, b: &Msg) -> bool {
        match (a, b) {
            (Msg::Abort, Msg::Abort) => true,
            (
                Msg::Done {
                    task: ta,
                    payload: pa,
                    iter: ia,
                },
                Msg::Done {
                    task: tb,
                    payload: pb,
                    iter: ib,
                },
            ) => {
                ta == tb
                    && ia == ib
                    && match (pa.as_deref(), pb.as_deref()) {
                        (None, None) => true,
                        (Some(Payload::Skipped), Some(Payload::Skipped)) => true,
                        (Some(Payload::Compressed(x)), Some(Payload::Compressed(y))) => x == y,
                        (Some(Payload::Raw(x)), Some(Payload::Raw(y))) => {
                            // Bit-pattern equality: NaNs must round-trip.
                            x.len() == y.len()
                                && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
                        }
                        _ => false,
                    }
            }
            _ => false,
        }
    }

    /// A seeded arbitrary message covering every variant and payload
    /// shape, including adversarial floats (NaN, infinities, -0.0).
    fn arbitrary(rng: &mut SplitMix64) -> Msg {
        if rng.bernoulli(0.1) {
            return Msg::Abort;
        }
        let payload = match rng.index(4) {
            0 => None,
            1 => {
                let n = rng.index(64);
                let v: Vec<f32> = (0..n)
                    .map(|_| match rng.index(8) {
                        0 => f32::NAN,
                        1 => f32::INFINITY,
                        2 => f32::NEG_INFINITY,
                        3 => -0.0,
                        _ => f32::from_bits(rng.next_u32()),
                    })
                    .collect();
                Some(Payload::Raw(v))
            }
            2 => {
                let n = rng.index(96);
                Some(Payload::Compressed(
                    (0..n).map(|_| rng.next_u32() as u8).collect(),
                ))
            }
            _ => Some(Payload::Skipped),
        };
        Msg::Done {
            task: TaskId(rng.next_u32()),
            payload: payload.map(Arc::new),
            iter: rng.next_u32(),
        }
    }

    #[test]
    fn every_variant_round_trips() {
        let mut rng = SplitMix64::new(0x5EED_F00D);
        for _ in 0..500 {
            let msg = arbitrary(&mut rng);
            let bytes = msg.to_bytes();
            let back = Msg::from_bytes(&bytes).unwrap();
            assert!(same(&msg, &back), "round trip changed {msg:?}");
        }
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        let mut rng = SplitMix64::new(0xDEAD_5EED);
        for _ in 0..50 {
            let msg = arbitrary(&mut rng);
            let bytes = msg.to_bytes();
            for cut in 0..bytes.len() {
                // Must error (not panic, not hang, not succeed).
                assert!(
                    Msg::from_bytes(&bytes[..cut]).is_err(),
                    "truncation at {cut} of {} decoded",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let mut rng = SplitMix64::new(0xB17_F11B5);
        for _ in 0..50 {
            let msg = arbitrary(&mut rng);
            let bytes = msg.to_bytes();
            for _ in 0..64 {
                let mut hurt = bytes.clone();
                let bit = rng.index(hurt.len() * 8);
                hurt[bit / 8] ^= 1 << (bit % 8);
                // Either decodes to *some* message or errors
                // structurally; both are fine, panicking is not.
                let _ = Msg::from_bytes(&hurt);
            }
        }
    }

    #[test]
    fn garbage_never_panics() {
        let mut rng = SplitMix64::new(0x6A12_BA6E);
        for _ in 0..200 {
            let n = rng.index(128);
            let junk: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
            let _ = Msg::from_bytes(&junk);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Msg::Abort.to_bytes();
        bytes.push(0);
        assert!(matches!(
            Msg::from_bytes(&bytes),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn unknown_tags_name_the_enum() {
        assert!(matches!(
            Msg::from_bytes(&[9]),
            Err(DecodeError::BadTag { what: "msg", .. })
        ));
        let mut w = Writer::new();
        w.put_u8(TAG_DONE);
        w.put_u32(3);
        w.put_u32(0);
        w.put_u8(7);
        assert!(matches!(
            Msg::from_bytes(&w.into_vec()),
            Err(DecodeError::BadTag {
                what: "payload",
                ..
            })
        ));
    }
}

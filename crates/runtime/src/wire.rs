//! The runtime message on the wire: [`Msg`] encoded through the
//! fabric codec so it can cross a serializing transport (the TCP
//! mesh) exactly as it crosses a channel in-process.
//!
//! The encoding is a plain tagged union over the little-endian codec:
//!
//! ```text
//! Msg::Done      = u8 1 | u32 task | u32 iter | payload
//! Msg::Abort     = u8 2
//! Msg::Join      = u8 3 | u32 rank | u64 epoch
//! Msg::Welcome   = u8 4 | u64 epoch | u32 from_iter | members
//! Msg::EpochBump = u8 5 | u64 epoch | evicted | u32 from_iter | members
//! payload        = u8 0                       (none)
//!                | u8 1 | u32 n | n × f32     (raw)
//!                | u8 2 | u32 n | n bytes     (compressed)
//!                | u8 3                       (skipped)
//! members        = u32 n | n × u32
//! evicted        = u8 0                       (none)
//!                | u8 1 | u32 rank
//! ```
//!
//! Floats travel as IEEE-754 bit patterns, so a decoded gradient is
//! bit-identical to the encoded one — the property the
//! processes-vs-threads cross-validation rests on. Decoding never
//! panics: every malformed input (truncation, unknown tags, hostile
//! length prefixes) is a structured [`DecodeError`].

use crate::engine::{Msg, Payload};
use hipress_core::graph::TaskId;
use hipress_fabric::{DecodeError, Reader, WireMsg, Writer};
use std::sync::Arc;

const TAG_DONE: u8 = 1;
const TAG_ABORT: u8 = 2;
const TAG_JOIN: u8 = 3;
const TAG_WELCOME: u8 = 4;
const TAG_EPOCH_BUMP: u8 = 5;

const PAYLOAD_NONE: u8 = 0;
const PAYLOAD_RAW: u8 = 1;
const PAYLOAD_COMPRESSED: u8 = 2;
const PAYLOAD_SKIPPED: u8 = 3;

fn encode_members(members: &[u32], w: &mut Writer) {
    w.put_u32(members.len() as u32);
    for &m in members {
        w.put_u32(m);
    }
}

/// Reads a `u32`-count-prefixed rank list, validating the declared
/// count against the remaining input before allocating (a flipped
/// count byte must not trigger a huge allocation).
fn decode_members(r: &mut Reader<'_>) -> Result<Vec<u32>, DecodeError> {
    let n = r.u32()? as usize;
    let raw = r.take(n.saturating_mul(4))?;
    Ok(raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn encode_payload(p: Option<&Payload>, w: &mut Writer) {
    match p {
        None => w.put_u8(PAYLOAD_NONE),
        Some(Payload::Raw(v)) => {
            w.put_u8(PAYLOAD_RAW);
            w.put_f32s(v);
        }
        Some(Payload::Compressed(b)) => {
            w.put_u8(PAYLOAD_COMPRESSED);
            w.put_bytes(b);
        }
        Some(Payload::Skipped) => w.put_u8(PAYLOAD_SKIPPED),
    }
}

fn decode_payload(r: &mut Reader<'_>) -> Result<Option<Payload>, DecodeError> {
    Ok(match r.u8()? {
        PAYLOAD_NONE => None,
        PAYLOAD_RAW => Some(Payload::Raw(r.f32s()?)),
        PAYLOAD_COMPRESSED => Some(Payload::Compressed(r.bytes()?.to_vec())),
        PAYLOAD_SKIPPED => Some(Payload::Skipped),
        tag => {
            return Err(DecodeError::BadTag {
                what: "payload",
                tag: u64::from(tag),
            })
        }
    })
}

impl WireMsg for Msg {
    fn encode(&self, w: &mut Writer) {
        match self {
            Msg::Done {
                task,
                payload,
                iter,
            } => {
                w.put_u8(TAG_DONE);
                w.put_u32(task.0);
                w.put_u32(*iter);
                encode_payload(payload.as_deref(), w);
            }
            Msg::Abort => w.put_u8(TAG_ABORT),
            Msg::Join { rank, epoch } => {
                w.put_u8(TAG_JOIN);
                w.put_u32(*rank);
                w.put_u64(*epoch);
            }
            Msg::Welcome {
                epoch,
                from_iter,
                members,
            } => {
                w.put_u8(TAG_WELCOME);
                w.put_u64(*epoch);
                w.put_u32(*from_iter);
                encode_members(members, w);
            }
            Msg::EpochBump {
                epoch,
                evicted,
                from_iter,
                members,
            } => {
                w.put_u8(TAG_EPOCH_BUMP);
                w.put_u64(*epoch);
                match evicted {
                    None => w.put_u8(0),
                    Some(rank) => {
                        w.put_u8(1);
                        w.put_u32(*rank);
                    }
                }
                w.put_u32(*from_iter);
                encode_members(members, w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            TAG_DONE => {
                let task = TaskId(r.u32()?);
                let iter = r.u32()?;
                let payload = decode_payload(r)?.map(Arc::new);
                Msg::Done {
                    task,
                    payload,
                    iter,
                }
            }
            TAG_ABORT => Msg::Abort,
            TAG_JOIN => {
                let rank = r.u32()?;
                let epoch = r.u64()?;
                Msg::Join { rank, epoch }
            }
            TAG_WELCOME => {
                let epoch = r.u64()?;
                let from_iter = r.u32()?;
                let members = decode_members(r)?;
                Msg::Welcome {
                    epoch,
                    from_iter,
                    members,
                }
            }
            TAG_EPOCH_BUMP => {
                let epoch = r.u64()?;
                let evicted = match r.u8()? {
                    0 => None,
                    1 => Some(r.u32()?),
                    tag => {
                        return Err(DecodeError::BadTag {
                            what: "evicted",
                            tag: u64::from(tag),
                        })
                    }
                };
                let from_iter = r.u32()?;
                let members = decode_members(r)?;
                Msg::EpochBump {
                    epoch,
                    evicted,
                    from_iter,
                    members,
                }
            }
            tag => {
                return Err(DecodeError::BadTag {
                    what: "msg",
                    tag: u64::from(tag),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_util::{Rng64, SplitMix64};

    fn same(a: &Msg, b: &Msg) -> bool {
        match (a, b) {
            (Msg::Abort, Msg::Abort) => true,
            (
                Msg::Done {
                    task: ta,
                    payload: pa,
                    iter: ia,
                },
                Msg::Done {
                    task: tb,
                    payload: pb,
                    iter: ib,
                },
            ) => {
                ta == tb
                    && ia == ib
                    && match (pa.as_deref(), pb.as_deref()) {
                        (None, None) => true,
                        (Some(Payload::Skipped), Some(Payload::Skipped)) => true,
                        (Some(Payload::Compressed(x)), Some(Payload::Compressed(y))) => x == y,
                        (Some(Payload::Raw(x)), Some(Payload::Raw(y))) => {
                            // Bit-pattern equality: NaNs must round-trip.
                            x.len() == y.len()
                                && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
                        }
                        _ => false,
                    }
            }
            (
                Msg::Join {
                    rank: ra,
                    epoch: ea,
                },
                Msg::Join {
                    rank: rb,
                    epoch: eb,
                },
            ) => ra == rb && ea == eb,
            (
                Msg::Welcome {
                    epoch: ea,
                    from_iter: fa,
                    members: ma,
                },
                Msg::Welcome {
                    epoch: eb,
                    from_iter: fb,
                    members: mb,
                },
            ) => ea == eb && fa == fb && ma == mb,
            (
                Msg::EpochBump {
                    epoch: ea,
                    evicted: va,
                    from_iter: fa,
                    members: ma,
                },
                Msg::EpochBump {
                    epoch: eb,
                    evicted: vb,
                    from_iter: fb,
                    members: mb,
                },
            ) => ea == eb && va == vb && fa == fb && ma == mb,
            _ => false,
        }
    }

    fn arbitrary_members(rng: &mut SplitMix64) -> Vec<u32> {
        let n = rng.index(9);
        (0..n).map(|_| rng.next_u32() % 64).collect()
    }

    /// A seeded arbitrary message covering every variant and payload
    /// shape, including adversarial floats (NaN, infinities, -0.0).
    fn arbitrary(rng: &mut SplitMix64) -> Msg {
        if rng.bernoulli(0.1) {
            return Msg::Abort;
        }
        if rng.bernoulli(0.1) {
            return Msg::Join {
                rank: rng.next_u32(),
                epoch: rng.next_u64(),
            };
        }
        if rng.bernoulli(0.1) {
            return Msg::Welcome {
                epoch: rng.next_u64(),
                from_iter: rng.next_u32(),
                members: arbitrary_members(rng),
            };
        }
        if rng.bernoulli(0.1) {
            return Msg::EpochBump {
                epoch: rng.next_u64(),
                evicted: rng.bernoulli(0.5).then(|| rng.next_u32()),
                from_iter: rng.next_u32(),
                members: arbitrary_members(rng),
            };
        }
        let payload = match rng.index(4) {
            0 => None,
            1 => {
                let n = rng.index(64);
                let v: Vec<f32> = (0..n)
                    .map(|_| match rng.index(8) {
                        0 => f32::NAN,
                        1 => f32::INFINITY,
                        2 => f32::NEG_INFINITY,
                        3 => -0.0,
                        _ => f32::from_bits(rng.next_u32()),
                    })
                    .collect();
                Some(Payload::Raw(v))
            }
            2 => {
                let n = rng.index(96);
                Some(Payload::Compressed(
                    (0..n).map(|_| rng.next_u32() as u8).collect(),
                ))
            }
            _ => Some(Payload::Skipped),
        };
        Msg::Done {
            task: TaskId(rng.next_u32()),
            payload: payload.map(Arc::new),
            iter: rng.next_u32(),
        }
    }

    #[test]
    fn every_variant_round_trips() {
        let mut rng = SplitMix64::new(0x5EED_F00D);
        for _ in 0..500 {
            let msg = arbitrary(&mut rng);
            let bytes = msg.to_bytes();
            let back = Msg::from_bytes(&bytes).unwrap();
            assert!(same(&msg, &back), "round trip changed {msg:?}");
        }
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        let mut rng = SplitMix64::new(0xDEAD_5EED);
        for _ in 0..50 {
            let msg = arbitrary(&mut rng);
            let bytes = msg.to_bytes();
            for cut in 0..bytes.len() {
                // Must error (not panic, not hang, not succeed).
                assert!(
                    Msg::from_bytes(&bytes[..cut]).is_err(),
                    "truncation at {cut} of {} decoded",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let mut rng = SplitMix64::new(0xB17_F11B5);
        for _ in 0..50 {
            let msg = arbitrary(&mut rng);
            let bytes = msg.to_bytes();
            for _ in 0..64 {
                let mut hurt = bytes.clone();
                let bit = rng.index(hurt.len() * 8);
                hurt[bit / 8] ^= 1 << (bit % 8);
                // Either decodes to *some* message or errors
                // structurally; both are fine, panicking is not.
                let _ = Msg::from_bytes(&hurt);
            }
        }
    }

    #[test]
    fn garbage_never_panics() {
        let mut rng = SplitMix64::new(0x6A12_BA6E);
        for _ in 0..200 {
            let n = rng.index(128);
            let junk: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
            let _ = Msg::from_bytes(&junk);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Msg::Abort.to_bytes();
        bytes.push(0);
        assert!(matches!(
            Msg::from_bytes(&bytes),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    #[test]
    fn unknown_tags_name_the_enum() {
        assert!(matches!(
            Msg::from_bytes(&[9]),
            Err(DecodeError::BadTag { what: "msg", .. })
        ));
        let mut w = Writer::new();
        w.put_u8(TAG_DONE);
        w.put_u32(3);
        w.put_u32(0);
        w.put_u8(7);
        assert!(matches!(
            Msg::from_bytes(&w.into_vec()),
            Err(DecodeError::BadTag {
                what: "payload",
                ..
            })
        ));
        // An EpochBump whose evicted marker is neither 0 nor 1.
        let mut w = Writer::new();
        w.put_u8(TAG_EPOCH_BUMP);
        w.put_u64(1);
        w.put_u8(7);
        assert!(matches!(
            Msg::from_bytes(&w.into_vec()),
            Err(DecodeError::BadTag {
                what: "evicted",
                ..
            })
        ));
    }

    #[test]
    fn membership_frames_round_trip_exactly() {
        let frames = [
            Msg::Join { rank: 3, epoch: 0 },
            Msg::Welcome {
                epoch: 2,
                from_iter: 5,
                members: vec![0, 1, 2, 3],
            },
            Msg::EpochBump {
                epoch: 1,
                evicted: Some(1),
                from_iter: 3,
                members: vec![0, 2, 3],
            },
            Msg::EpochBump {
                epoch: 2,
                evicted: None,
                from_iter: 6,
                members: vec![0, 1, 2, 3],
            },
        ];
        for msg in &frames {
            let back = Msg::from_bytes(&msg.to_bytes()).unwrap();
            assert!(same(msg, &back), "round trip changed {msg:?}");
        }
    }

    /// A hostile member-count prefix must surface as a structured
    /// truncation error before any allocation happens.
    #[test]
    fn hostile_member_count_is_rejected_without_allocating() {
        let mut w = Writer::new();
        w.put_u8(TAG_WELCOME);
        w.put_u64(4);
        w.put_u32(0);
        w.put_u32(u32::MAX); // claims ~4 billion members, sends none
        assert!(matches!(
            Msg::from_bytes(&w.into_vec()),
            Err(DecodeError::Truncated { .. })
        ));
    }
}

//! Multi-iteration pipelined execution of CaSync-RT over any
//! transport fabric.
//!
//! Training synchronizes gradients every iteration, and the next
//! iteration's compression work does not have to wait for the last
//! straggling chunk of the previous one: each node may hold up to
//! `window` iterations in flight, scheduling ready tasks
//! lowest-iteration-first (so older iterations drain ahead of newer
//! ones) and communication-first within an iteration (the engine's
//! discipline — a completed send unblocks a peer). With `window = 1`
//! the loop degenerates to serial back-to-back iterations, which is
//! exactly the baseline `hipress bench` compares the overlap against.
//!
//! The driver ([`drive_node`]) is generic over [`Link`], so the same
//! loop runs in-process over the channel fabric
//! ([`run_pipelined`]) and inside each OS process of the TCP mesh
//! ([`crate::process`]). Messages carry their iteration index;
//! arrivals for not-yet-admitted iterations are stashed and replayed
//! at admission, so a fast peer racing ahead never wedges a slow one.
//!
//! Bit-for-bit: every iteration runs the same graph on the same
//! inputs with the same seed, so each iteration's installed
//! parameters equal the single-iteration result — pipelining
//! reorders work across iterations but never inside one chunk's
//! dependency chain. The returned flows are the final iteration's.

use crate::engine::{
    build_node_metrics, build_node_traces, record_run_metrics, record_run_span, replicate, Cell,
    FlowLayout, Flows, Instruments, Msg, NodeCore, NodeMetrics, NodePlan, NodeTrace, Payload,
    RunOutcome, RuntimeConfig,
};
use crate::report::RuntimeReport;
use hipress_compress::Compressor;
use hipress_core::graph::{TaskGraph, TaskId};
use hipress_core::Primitive;
use hipress_fabric::{ChannelFabric, Fabric, FabricError, Link, LinkCounters};
use hipress_obs::{IterRecord, ProgressSink};
use hipress_trace::Tracer;
use hipress_util::{Error, Result, SyncFailure, SyncFailureKind};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// How many iterations to run and how many may overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Total synchronization iterations to execute (≥ 1).
    pub iterations: u32,
    /// Bound on concurrently in-flight iterations (≥ 1; 1 = serial).
    pub window: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            iterations: 1,
            window: 1,
        }
    }
}

/// Elastic-membership instrumentation threaded into the pipelined
/// driver by the process runtime: deterministic crash injection at a
/// retirement boundary, and a live retirement count the worker reads
/// back after a failure (a returned `Err` loses the driver state, but
/// the survivor still has to report how far it got so the coordinator
/// can pick the drain boundary).
#[derive(Debug, Default)]
pub(crate) struct ElasticHooks {
    /// Crash (hard process death, no abort broadcast) once this many
    /// iterations have fully retired. `None` never crashes.
    pub die_at_iter: Option<u32>,
    /// Count of fully retired iterations, updated at every
    /// retirement; readable mid-run and after an error.
    pub retired: std::sync::atomic::AtomicU32,
}

impl ElasticHooks {
    /// The number of fully retired iterations recorded so far.
    pub(crate) fn completed(&self) -> u32 {
        self.retired.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// Converts a transport failure into the workspace error type,
/// naming the dead peer as the failing node (that is the rank a CI
/// smoke test greps for) and the observer as the peer.
pub(crate) fn fabric_err(me: usize, e: FabricError) -> Error {
    match e {
        FabricError::PeerLost { peer, detail } => Error::sync(SyncFailure {
            kind: SyncFailureKind::LinkDead,
            node: peer,
            peer: Some(me),
            task: None,
            detail,
        }),
        FabricError::DeadLink {
            peer,
            seq,
            attempts,
        } => Error::sync(SyncFailure {
            kind: SyncFailureKind::LinkDead,
            node: peer,
            peer: Some(me),
            task: None,
            detail: format!("seq {seq} unacknowledged after {attempts} attempts"),
        }),
        other => Error::sim(format!("node {me}: fabric failure: {other}")),
    }
}

/// Test-only injected slowdown, for exercising the SLO watchdog end to
/// end: `HIPRESS_TELEMETRY_SLOWDOWN_MS` stretches every retired
/// iteration in the second half of a run by this many milliseconds,
/// which the latency-regression detector must flag. Zero (the default,
/// and any unparsable value) is free; the knob is only consulted when a
/// progress sink is attached, so ordinary runs never read it.
fn telemetry_slowdown_ms() -> u64 {
    static KNOB: OnceLock<u64> = OnceLock::new();
    *KNOB.get_or_init(|| {
        std::env::var("HIPRESS_TELEMETRY_SLOWDOWN_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

/// One admitted iteration's private dataflow state: its own cells,
/// queues, and dependency counts — iterations share nothing but the
/// link.
struct IterState<'a> {
    core: NodeCore<'a>,
    pending: HashMap<u32, usize>,
    q_comp: VecDeque<TaskId>,
    q_commu: VecDeque<TaskId>,
    done: usize,
    admitted: Instant,
    /// Trace-clock admission time, for the retired `iter_span` span.
    admitted_ns: Option<u64>,
}

impl IterState<'_> {
    fn enqueue(&mut self, graph: &TaskGraph, t: TaskId) {
        if matches!(graph.task(t).prim, Primitive::Send | Primitive::Recv) {
            self.q_commu.push_back(t);
            // The gauges are shared across admitted iterations (the
            // handles are clones of one counter), so they read as the
            // node's total in-flight depth across the window.
            if let Some(tr) = &self.core.trace {
                tr.q_commu.add(1);
            }
            if let Some(m) = &self.core.metrics {
                m.q_commu_depth.record(self.q_commu.len() as u64);
            }
        } else {
            self.q_comp.push_back(t);
            if let Some(tr) = &self.core.trace {
                tr.q_comp.add(1);
            }
            if let Some(m) = &self.core.metrics {
                m.q_comp_depth.record(self.q_comp.len() as u64);
            }
        }
    }

    fn resolve_dep(&mut self, graph: &TaskGraph, t: u32) {
        let n = self
            .pending
            .get_mut(&t)
            .expect("resolve_dep on a task this node does not own");
        *n -= 1;
        if *n == 0 {
            self.enqueue(graph, TaskId(t));
        }
    }

    fn deliver(
        &mut self,
        plan: &NodePlan,
        graph: &TaskGraph,
        task: TaskId,
        payload: Option<Arc<Payload>>,
    ) {
        let wire_bytes = payload.as_deref().map(Payload::wire_bytes);
        if let Some(p) = payload {
            self.core.inbound.insert(task.0, p);
        }
        self.core.note_message(task, wire_bytes);
        if let Some(deps) = plan.remote_edges_in[self.core.node].get(&task.0) {
            for &d in deps.clone().iter() {
                self.resolve_dep(graph, d);
            }
        }
    }
}

/// One node's pipelined task manager, generic over the transport.
/// Borrows the link rather than owning it: a process-fabric child
/// must keep its `TcpLink` (and its ack-servicing reader threads)
/// alive after the protocol completes, until the coordinator calls
/// time — dropping it early would tear the sockets down under peers
/// still finishing.
struct PipeWorker<'a, L: Link<Msg = Msg>> {
    link: &'a mut L,
    graph: &'a TaskGraph,
    flows: &'a crate::engine::ReplicaFlows,
    layout: &'a FlowLayout,
    plan: &'a NodePlan,
    compressor: Option<&'a dyn Compressor>,
    seed: u64,
    config: RuntimeConfig,
    pcfg: PipelineConfig,
    /// Admitted, incomplete iterations in ascending order.
    iters: BTreeMap<u32, IterState<'a>>,
    /// Arrivals for iterations not yet admitted, replayed at
    /// admission.
    stash: HashMap<u32, Vec<(TaskId, Option<Arc<Payload>>)>>,
    next_admit: u32,
    completed: u32,
    report: RuntimeReport,
    final_cells: Option<HashMap<(u32, u32), Cell>>,
    /// Shared tracing handles cloned into every admitted iteration's
    /// core; `None` keeps the hot path recording-free.
    trace: Option<NodeTrace>,
    /// Shared metric handles, likewise cloned per iteration.
    metrics: Option<NodeMetrics>,
    /// Live-telemetry progress sink; one [`IterRecord`] is published
    /// per *retired iteration* (never per task), so `None` keeps the
    /// hot path publication-free.
    progress: Option<&'a dyn ProgressSink>,
    /// Fabric counters at the previous retirement, so each published
    /// record carries this iteration's retransmission delta rather
    /// than a running total.
    last_counters: LinkCounters,
    /// Elastic-membership hooks (crash injection + retirement
    /// export); `None` for fixed-membership runs.
    hooks: Option<&'a ElasticHooks>,
}

impl<'a, L: Link<Msg = Msg>> PipeWorker<'a, L> {
    fn me(&self) -> usize {
        self.link.me()
    }

    /// Admits iterations while the window has room, seeding each with
    /// its dependency-free tasks and replaying any stashed arrivals.
    fn admit_ready(&mut self) {
        loop {
            let lowest_incomplete = self.iters.keys().next().copied().unwrap_or(self.next_admit);
            if self.next_admit >= self.pcfg.iterations
                || self.next_admit >= lowest_incomplete + self.pcfg.window
            {
                return;
            }
            let iter = self.next_admit;
            self.next_admit += 1;
            let mut core = NodeCore::new(
                self.link.me(),
                self.graph,
                self.flows,
                self.layout,
                self.compressor,
                self.seed,
                self.trace.clone(),
                self.metrics.clone(),
            );
            core.iter = iter;
            let mut st = IterState {
                core,
                pending: self.plan.pending[self.link.me()].clone(),
                q_comp: VecDeque::new(),
                q_commu: VecDeque::new(),
                done: 0,
                admitted: Instant::now(),
                admitted_ns: self.trace.as_ref().map(|tr| tr.tracer.now_ns()),
            };
            let mut ready: Vec<u32> = st
                .pending
                .iter()
                .filter(|&(_, &n)| n == 0)
                .map(|(&t, _)| t)
                .collect();
            ready.sort_unstable(); // Deterministic initial order.
            for t in ready {
                st.enqueue(self.graph, TaskId(t));
            }
            if let Some(msgs) = self.stash.remove(&iter) {
                for (task, payload) in msgs {
                    st.deliver(self.plan, self.graph, task, payload);
                }
            }
            self.iters.insert(iter, st);
        }
    }

    fn broadcast_abort(&mut self) {
        for n in 0..self.link.nodes() {
            if n != self.link.me() {
                // A vanished peer already failed; nothing to tell it.
                let _ = self.link.send(n, Msg::Abort);
            }
        }
    }

    fn handle(&mut self, msg: Msg) -> Result<()> {
        match msg {
            Msg::Abort => Err(Error::sim("aborted")),
            // Rendezvous-plane frames never belong on the data mesh;
            // a straggling one from a stale epoch is dropped, which
            // is exactly the stale-epoch safety rule.
            Msg::Join { .. } | Msg::Welcome { .. } | Msg::EpochBump { .. } => Ok(()),
            Msg::Done {
                task,
                payload,
                iter,
            } => {
                if let Some(st) = self.iters.get_mut(&iter) {
                    st.deliver(self.plan, self.graph, task, payload);
                } else if iter >= self.next_admit {
                    self.stash.entry(iter).or_default().push((task, payload));
                }
                // A message for a completed iteration cannot occur on
                // a deduplicating fabric (completion requires every
                // remote edge consumed); tolerate and drop it anyway.
                Ok(())
            }
        }
    }

    /// Pops the next ready task, oldest iteration first and
    /// communication before computing within it.
    fn next_ready(&mut self) -> Option<(u32, TaskId)> {
        for (&iter, st) in self.iters.iter_mut() {
            if let Some(t) = st.q_commu.pop_front() {
                if let Some(tr) = &st.core.trace {
                    tr.q_commu.add(-1);
                }
                return Some((iter, t));
            }
            if let Some(t) = st.q_comp.pop_front() {
                if let Some(tr) = &st.core.trace {
                    tr.q_comp.add(-1);
                }
                return Some((iter, t));
            }
        }
        None
    }

    fn execute(&mut self, iter: u32, id: TaskId) -> Result<()> {
        let task = self.graph.task(id);
        // Batch compression across the whole window: gather ready
        // small encodes from *every* admitted iteration so one launch
        // covers work the pipeline made concurrently ready (§3.2
        // batching, extended across overlapping iterations).
        if task.prim == Primitive::Encode
            && self.config.batch_compression
            && task.bytes_raw <= self.config.comp_batch_max_task_bytes
        {
            let mut batch = vec![(iter, id)];
            let keys: Vec<u32> = self.iters.keys().copied().collect();
            for k in keys {
                let st = self.iters.get_mut(&k).expect("admitted iteration");
                let mut rest = VecDeque::new();
                while let Some(t) = st.q_comp.pop_front() {
                    let n = self.graph.task(t);
                    if n.prim == Primitive::Encode
                        && n.bytes_raw <= self.config.comp_batch_max_task_bytes
                    {
                        batch.push((k, t));
                    } else {
                        rest.push_back(t);
                    }
                }
                st.q_comp = rest;
            }
            self.iters
                .get_mut(&iter)
                .expect("initiating iteration")
                .core
                .report
                .comp_batch_launches += 1;
            if let Some(m) = &self.metrics {
                m.batch_launches.inc();
            }
            if let Some(tr) = &self.trace {
                // The gathered encodes (all but the initiating one,
                // which next_ready already counted) left their queues
                // without individual pops; the shared gauge absorbs
                // them in one step.
                tr.q_comp.add(-(batch.len() as i64 - 1));
                tr.tracer.instant(
                    tr.track,
                    "batch",
                    "batch",
                    tr.tracer.now_ns(),
                    &[("size", batch.len() as u64)],
                );
            }
            for (k, t) in batch {
                let outbound = self
                    .iters
                    .get_mut(&k)
                    .expect("batched iteration")
                    .core
                    .execute_one(t)?;
                self.finish(k, t, outbound);
            }
            return Ok(());
        }
        let outbound = self
            .iters
            .get_mut(&iter)
            .expect("scheduled iteration")
            .core
            .execute_one(id)?;
        self.finish(iter, id, outbound);
        Ok(())
    }

    /// Marks `id` of iteration `iter` complete: resolves local
    /// dependents, ships completion events to remote nodes, and — when
    /// the iteration's last local task lands — retires the iteration
    /// and admits the next.
    fn finish(&mut self, iter: u32, id: TaskId, payload: Option<Arc<Payload>>) {
        let graph = self.graph;
        let plan = self.plan;
        let st = self.iters.get_mut(&iter).expect("finishing iteration");
        st.done += 1;
        if let Some(deps) = plan.local_dependents.get(&id.0) {
            for &d in deps.clone().iter() {
                st.resolve_dep(graph, d);
            }
        }
        let done = st.done;
        if let Some(nodes) = plan.remote_notify.get(&id.0) {
            for &n in nodes {
                // A lost peer surfaces on the receive path with its
                // rank; completion only needs the sends attempted.
                let _ = self.link.send(
                    n,
                    Msg::Done {
                        task: id,
                        payload: payload.clone(),
                        iter,
                    },
                );
            }
        }
        if done == plan.local_counts[self.link.me()] {
            let mut st = self.iters.remove(&iter).expect("retiring iteration");
            if self.progress.is_some() {
                let ms = telemetry_slowdown_ms();
                if ms > 0 && iter >= self.pcfg.iterations / 2 {
                    // Injected before the span is measured, so the
                    // stretch lands inside `span_ns` and the watchdog
                    // sees it as a genuine iteration slowdown.
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
            let span_ns = st.admitted.elapsed().as_nanos() as u64;
            self.report.iter_span_ns_total += span_ns;
            if let Some(tr) = &self.trace {
                // The single measured span feeds both the report and
                // the trace, so trace-derived reports stay exact.
                tr.tracer.record_span(
                    tr.track,
                    "iter_span",
                    "iter_span",
                    st.admitted_ns.unwrap_or(0),
                    span_ns,
                    &[("iter", u64::from(iter))],
                );
            }
            if let Some(sink) = self.progress {
                // The per-iteration delta is exactly the retiring
                // iteration's private report, read before it is folded
                // into the node aggregate below.
                let r = &st.core.report;
                let c = self.link.counters();
                sink.publish(IterRecord {
                    node: self.link.me() as u32,
                    iter,
                    ts_ns: 0, // stamped by the hub on publication
                    span_ns,
                    comp_ns: r.source.busy_ns
                        + r.encode.busy_ns
                        + r.decode.busy_ns
                        + r.merge.busy_ns
                        + r.update.busy_ns
                        + r.barrier.busy_ns
                        + r.local_agg_ns,
                    commu_ns: r.send.busy_ns + r.recv.busy_ns,
                    bytes_wire: r.bytes_wire,
                    messages: r.messages,
                    retransmits: c.retransmits - self.last_counters.retransmits,
                    faults: r.faults.retries
                        + r.faults.nacks
                        + r.faults.duplicates_ignored
                        + r.faults.corruptions_detected
                        + r.faults.degraded_chunks,
                    window: self.pcfg.window,
                    epoch: 0, // stamped by the elastic sink, if any
                });
                self.last_counters = c;
            }
            self.report.absorb(&std::mem::take(&mut st.core.report));
            if iter + 1 == self.pcfg.iterations {
                self.final_cells = Some(std::mem::take(&mut st.core.cells));
            }
            self.completed += 1;
            if let Some(h) = self.hooks {
                h.retired
                    .store(self.completed, std::sync::atomic::Ordering::SeqCst);
            }
            self.admit_ready();
        }
    }

    fn run(&mut self) -> Result<(HashMap<(u32, u32), Cell>, RuntimeReport)> {
        self.admit_ready();
        while self.completed < self.pcfg.iterations {
            if let Some(h) = self.hooks {
                if h.die_at_iter.is_some_and(|d| self.completed >= d) {
                    // A hard injected death: no abort broadcast —
                    // peers discover the loss the way they would a
                    // real crash, through the transport (PeerLost).
                    return Err(Error::sync(SyncFailure {
                        kind: SyncFailureKind::InjectedCrash,
                        node: self.me(),
                        peer: None,
                        task: None,
                        detail: format!(
                            "elastic crash injection after {} retired iterations",
                            self.completed
                        ),
                    }));
                }
            }
            // Drain the inbox without blocking: completion events
            // promote tasks into the queues.
            while let Some(msg) = self.link.try_recv().map_err(|e| fabric_err(self.me(), e))? {
                self.handle(msg)?;
            }
            if let Some((iter, id)) = self.next_ready() {
                if let Err(e) = self.execute(iter, id) {
                    self.broadcast_abort();
                    return Err(e);
                }
            } else if self.completed < self.pcfg.iterations {
                match self
                    .link
                    .recv_timeout(self.config.inbox_timeout)
                    .map_err(|e| fabric_err(self.me(), e))?
                {
                    Some(msg) => self.handle(msg)?,
                    None => {
                        self.broadcast_abort();
                        let (lowest, done) = self
                            .iters
                            .iter()
                            .next()
                            .map(|(&k, s)| (k, s.done))
                            .unwrap_or((self.next_admit, 0));
                        return Err(Error::sim(format!(
                            "node {} wedged: iteration {lowest} at {done} of {} tasks done, \
                             inbox silent",
                            self.me(),
                            self.plan.local_counts[self.me()]
                        )));
                    }
                }
            }
        }
        let c = self.link.counters();
        self.report.fabric_frames += c.frames;
        self.report.fabric_bytes_framed += c.bytes_framed;
        self.report.fabric_bytes_payload += c.bytes_payload;
        self.report.fabric_retransmits += c.retransmits;
        if let Some(tr) = &self.trace {
            // One `link` instant per node carrying the folded
            // counters; trace-derived reports sum them back.
            tr.tracer.instant(
                tr.track,
                "link",
                "link",
                tr.tracer.now_ns(),
                &[
                    ("frames", c.frames),
                    ("bytes_framed", c.bytes_framed),
                    ("bytes_payload", c.bytes_payload),
                    ("retransmits", c.retransmits),
                ],
            );
        }
        if let Some(m) = &self.metrics {
            m.fabric_frames.add(c.frames);
            m.fabric_bytes_framed.add(c.bytes_framed);
            m.fabric_bytes_payload.add(c.bytes_payload);
            m.fabric_retransmits.add(c.retransmits);
        }
        let cells = self
            .final_cells
            .take()
            .ok_or_else(|| Error::sim("pipelined run retired no final iteration"))?;
        Ok((cells, std::mem::take(&mut self.report)))
    }
}

/// Drives one node's full pipelined execution over `link`, returning
/// its final-iteration cells and its accumulated (all-iterations)
/// report. The loop the channel fabric threads and the TCP mesh
/// processes both run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_node<'a, L: Link<Msg = Msg>>(
    link: &'a mut L,
    graph: &'a TaskGraph,
    flows: &'a crate::engine::ReplicaFlows,
    layout: &'a FlowLayout,
    plan: &'a NodePlan,
    compressor: Option<&'a dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    trace: Option<NodeTrace>,
    metrics: Option<NodeMetrics>,
    progress: Option<&'a dyn ProgressSink>,
    hooks: Option<&'a ElasticHooks>,
) -> Result<(HashMap<(u32, u32), Cell>, RuntimeReport)> {
    let mut worker = PipeWorker {
        link,
        graph,
        flows,
        layout,
        plan,
        compressor,
        seed,
        config: *config,
        pcfg: *pcfg,
        iters: BTreeMap::new(),
        stash: HashMap::new(),
        next_admit: 0,
        completed: 0,
        report: RuntimeReport::default(),
        final_cells: None,
        trace,
        metrics,
        progress,
        last_counters: LinkCounters::default(),
        hooks,
    };
    worker.run()
}

/// Validates a pipeline configuration against what the driver
/// supports.
pub(crate) fn validate(pcfg: &PipelineConfig) -> Result<()> {
    if pcfg.iterations == 0 {
        return Err(Error::config("pipelined run needs at least one iteration"));
    }
    if pcfg.window == 0 {
        return Err(Error::config("pipeline window must be at least 1"));
    }
    Ok(())
}

/// Executes `graph` for `pcfg.iterations` iterations on `nodes` OS
/// threads over the in-process channel fabric, overlapping up to
/// `pcfg.window` iterations per node. Returns the final iteration's
/// flows; the report accumulates all iterations and records the
/// window, iteration count, and per-iteration spans
/// ([`RuntimeReport::pipeline_overlap`]).
///
/// Tracing stamps every span with its iteration (spans from
/// overlapping iterations interleave on one per-node track but stay
/// distinguishable), records per-iteration `iter_span` spans and a
/// per-node `link` instant carrying the fabric counters, and keeps
/// the trace-report parity contract: the trace re-derives this
/// report exactly.
///
/// # Errors
///
/// As [`crate::run`], plus configuration errors for a zero iteration
/// count or a zero window.
pub fn run_pipelined(
    graph: &TaskGraph,
    nodes: usize,
    flows: &Flows,
    compressor: Option<&dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    validate(pcfg)?;
    #[cfg(debug_assertions)]
    hipress_lint::plan::verify(graph, nodes).into_result()?;
    let replicated = replicate(flows);
    let layout = FlowLayout::derive(graph, nodes, &replicated)?;
    let plan = NodePlan::derive(graph, nodes);

    let mut fabric: ChannelFabric<Msg> = ChannelFabric::new(nodes);
    let links: Vec<_> = (0..nodes)
        .map(|r| fabric.link(r).expect("fresh fabric link"))
        .collect();
    let node_traces = build_node_traces(instruments.tracer, nodes);
    let node_metrics = build_node_metrics(instruments.metrics, nodes);
    let progress = instruments.progress.map(|t| t as &dyn ProgressSink);

    let run_start_ns = instruments.tracer.map(Tracer::now_ns);
    let started = Instant::now();
    let mut results: Vec<Result<(HashMap<(u32, u32), Cell>, RuntimeReport)>> = (0..nodes)
        .map(|_| Err(Error::sim("node never ran")))
        .collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nodes);
        for (mut link, (trace, metrics)) in links
            .into_iter()
            .zip(node_traces.into_iter().zip(node_metrics))
        {
            let replicated = &replicated;
            let layout = &layout;
            let plan = &plan;
            handles.push(scope.spawn(move || {
                drive_node(
                    &mut link, graph, replicated, layout, plan, compressor, seed, config, pcfg,
                    trace, metrics, progress, None,
                )
            }));
        }
        for (node, h) in handles.into_iter().enumerate() {
            results[node] = h
                .join()
                .unwrap_or_else(|_| Err(Error::sim(format!("node {node} thread panicked"))));
        }
    });
    let wall_ns = started.elapsed().as_nanos() as u64;
    record_run_span(
        instruments.tracer,
        run_start_ns,
        wall_ns,
        nodes,
        u64::from(pcfg.iterations),
        u64::from(pcfg.window),
        0,
    );

    // Prefer a root-cause error over the "aborted" echoes it causes.
    let mut aborted = None;
    let mut cells_per_node = Vec::with_capacity(nodes);
    let mut report = RuntimeReport {
        nodes,
        wall_ns,
        per_node_busy_ns: vec![0; nodes],
        iterations: u64::from(pcfg.iterations),
        pipeline_window: u64::from(pcfg.window),
        ..Default::default()
    };
    for (node, r) in results.into_iter().enumerate() {
        match r {
            Ok((cells, node_report)) => {
                report.absorb(&node_report);
                report.per_node_busy_ns[node] = node_report.total_busy_ns();
                cells_per_node.push(cells);
            }
            Err(e) => {
                if matches!(&e, Error::Sim(m) if m == "aborted") {
                    aborted = Some(e);
                } else {
                    return Err(e);
                }
            }
        }
    }
    if let Some(e) = aborted {
        return Err(e);
    }

    if let Some(scope) = instruments.metrics {
        record_run_metrics(scope, &report);
    }

    let flows_out = layout.assemble(&cells_per_node)?;
    Ok(RunOutcome {
        flows: flows_out,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use hipress_compress::Algorithm;
    use hipress_core::interp::gradient_flows;
    use hipress_core::plan::{CompressionSpec, GradPlan, IterationSpec, SyncGradient};
    use hipress_core::{ClusterConfig, Strategy};
    use hipress_tensor::synth::{generate, GradientShape};
    use hipress_tensor::Tensor;

    fn worker_grads(nodes: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
        (0..nodes)
            .map(|w| {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(g, &n)| {
                        generate(
                            n,
                            GradientShape::Gaussian { std_dev: 1.0 },
                            (w * 1000 + g) as u64,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn iter_spec(sizes: &[usize], alg: Option<Algorithm>, k: usize) -> IterationSpec {
        IterationSpec {
            gradients: sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| SyncGradient {
                    name: format!("g{i}"),
                    bytes: (n * 4) as u64,
                    ready_offset_ns: 0,
                    plan: GradPlan {
                        compress: true,
                        partitions: k,
                    },
                })
                .collect(),
            compression: alg.map(|a| CompressionSpec::of(a.build().unwrap().as_ref())),
        }
    }

    #[test]
    fn pipelined_matches_single_iteration_bit_for_bit() {
        let nodes = 3;
        let sizes = [512usize, 96];
        let grads = worker_grads(nodes, &sizes);
        let flows = gradient_flows(&grads);
        let alg = Algorithm::OneBit;
        let c = alg.build().unwrap();
        let cluster = ClusterConfig::ec2(nodes);
        for strat in [Strategy::CaSyncPs, Strategy::CaSyncRing] {
            let graph = strat
                .build(&cluster, &iter_spec(&sizes, Some(alg), 2))
                .unwrap();
            let single = run(
                &graph,
                nodes,
                &flows,
                Some(c.as_ref()),
                9,
                &RuntimeConfig::default(),
            )
            .unwrap();
            for (iterations, window) in [(1, 1), (4, 1), (4, 3), (6, 8)] {
                let piped = run_pipelined(
                    &graph,
                    nodes,
                    &flows,
                    Some(c.as_ref()),
                    9,
                    &RuntimeConfig::default(),
                    &PipelineConfig { iterations, window },
                    Instruments::default(),
                )
                .unwrap();
                assert_eq!(single.flows.len(), piped.flows.len());
                for (a, b) in single.flows.iter().zip(&piped.flows) {
                    assert_eq!(a.flow, b.flow);
                    assert_eq!(
                        a.per_node, b.per_node,
                        "{strat:?} diverged at {iterations}x window {window}"
                    );
                }
                assert_eq!(piped.report.iterations, u64::from(iterations));
                assert_eq!(piped.report.pipeline_window, u64::from(window));
                assert!(piped.report.iter_span_ns_total > 0);
                // Every iteration runs the full graph: primitive
                // counts scale linearly.
                assert_eq!(
                    piped.report.update.count,
                    single.report.update.count * u64::from(iterations)
                );
                // The channel fabric counts frames (one per delivered
                // message).
                assert_eq!(piped.report.fabric_frames, piped.report.messages);
            }
        }
    }

    #[test]
    fn uncompressed_pipeline_works_too() {
        let nodes = 2;
        let sizes = [128usize];
        let grads = worker_grads(nodes, &sizes);
        let flows = gradient_flows(&grads);
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncRing
            .build(&cluster, &iter_spec(&sizes, None, 2))
            .unwrap();
        let single = run(&graph, nodes, &flows, None, 5, &RuntimeConfig::default()).unwrap();
        let piped = run_pipelined(
            &graph,
            nodes,
            &flows,
            None,
            5,
            &RuntimeConfig::default(),
            &PipelineConfig {
                iterations: 3,
                window: 2,
            },
            Instruments::default(),
        )
        .unwrap();
        for (a, b) in single.flows.iter().zip(&piped.flows) {
            assert_eq!(a.per_node, b.per_node);
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let nodes = 2;
        let sizes = [64usize];
        let grads = worker_grads(nodes, &sizes);
        let flows = gradient_flows(&grads);
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncPs
            .build(&cluster, &iter_spec(&sizes, None, 1))
            .unwrap();
        for pcfg in [
            PipelineConfig {
                iterations: 0,
                window: 1,
            },
            PipelineConfig {
                iterations: 1,
                window: 0,
            },
        ] {
            let err = run_pipelined(
                &graph,
                nodes,
                &flows,
                None,
                1,
                &RuntimeConfig::default(),
                &pcfg,
                Instruments::default(),
            )
            .unwrap_err();
            assert!(matches!(err, Error::Config(_)), "{err}");
        }
    }

    /// With a telemetry hub attached, every node publishes exactly one
    /// progress record per iteration, records carry real measurements,
    /// and a clean run trips no watchdog alert.
    #[test]
    fn progress_hook_publishes_one_record_per_retired_iteration() {
        let nodes = 2;
        let sizes = [128usize, 32];
        let grads = worker_grads(nodes, &sizes);
        let flows = gradient_flows(&grads);
        let alg = Algorithm::OneBit;
        let c = alg.build().unwrap();
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncRing
            .build(&cluster, &iter_spec(&sizes, Some(alg), 2))
            .unwrap();
        let hub = hipress_obs::Telemetry::new(
            hipress_metrics::Registry::new(),
            hipress_obs::WatchConfig::default(),
        );
        let iterations = 5u32;
        run_pipelined(
            &graph,
            nodes,
            &flows,
            Some(c.as_ref()),
            11,
            &RuntimeConfig::default(),
            &PipelineConfig {
                iterations,
                window: 2,
            },
            Instruments {
                tracer: None,
                metrics: None,
                progress: Some(&hub),
            },
        )
        .unwrap();
        assert_eq!(
            hub.records_published(),
            u64::from(iterations) * nodes as u64
        );
        let (recs, _) = hub.read_events(0);
        for node in 0..nodes as u32 {
            let mut iters: Vec<u32> = recs
                .iter()
                .filter(|r| r.node == node)
                .map(|r| r.iter)
                .collect();
            iters.sort_unstable();
            assert_eq!(iters, (0..iterations).collect::<Vec<_>>());
        }
        for r in &recs {
            assert!(r.span_ns > 0, "span must be measured");
            assert!(r.comp_ns > 0, "compute busy time must be measured");
            assert!(r.messages > 0, "gradient messages flow every iteration");
            assert_eq!(r.window, 2);
        }
        assert_eq!(hub.alert_count(), 0, "clean run must stay alert-free");
    }

    #[test]
    fn traced_pipelined_run_derives_its_report_from_the_trace() {
        let nodes = 2;
        let sizes = [256usize, 64];
        let grads = worker_grads(nodes, &sizes);
        let flows = gradient_flows(&grads);
        let alg = Algorithm::OneBit;
        let c = alg.build().unwrap();
        let cluster = ClusterConfig::ec2(nodes);
        let graph = Strategy::CaSyncRing
            .build(&cluster, &iter_spec(&sizes, Some(alg), 2))
            .unwrap();
        let tracer = hipress_trace::Tracer::new("casync-rt");
        let piped = run_pipelined(
            &graph,
            nodes,
            &flows,
            Some(c.as_ref()),
            7,
            &RuntimeConfig::default(),
            &PipelineConfig {
                iterations: 4,
                window: 2,
            },
            Instruments {
                tracer: Some(&tracer),
                metrics: None,
                progress: None,
            },
        )
        .unwrap();
        let trace = tracer.finish();
        trace.validate().unwrap();
        assert_eq!(
            RuntimeReport::from_trace(&trace),
            piped.report,
            "pipelined trace must re-derive the pipelined report exactly"
        );
    }
}

//! The fault-tolerant CaSync-RT execution path.
//!
//! [`run_chaos`] executes the same task graphs as [`crate::engine`],
//! on the same per-node dataflow core, but speaks the envelope
//! protocol of [`crate::protocol`] over a fabric wrapped in a
//! [`hipress_chaos::FaultPlan`]: every inter-node message is
//! sequence-numbered and checksummed, receivers verify / dedup / ack,
//! senders retransmit with exponential backoff under a bounded retry
//! budget, and a per-peer EWMA straggler detector drives a
//! configurable degradation policy.
//!
//! The contract, checked by the chaos property harness:
//!
//! * Under any *recoverable* plan (fault cap below the retry budget,
//!   no crashes) the run completes with **bit-for-bit** the fault-free
//!   result — retransmission and dedup are invisible to the dataflow.
//! * Corrupted payloads are always detected (checksums), nacked, and
//!   replaced by clean retransmissions; a corrupt bit can never reach
//!   a gradient.
//! * Under *unrecoverable* plans (crashes, black holes) every node
//!   unwinds within its deadline with a structured
//!   [`SyncFailure`] naming the diagnosing node, the peer, and the
//!   task — no deadlocks, no panics, no hangs.
//!
//! Stalls are survivable three ways ([`DegradePolicy`]): wait them
//! out (bit-exact, slow), skip the straggler's outstanding
//! contributions and rescale the aggregates (bounded-staleness
//! partial aggregation — fast, approximate), or abort with a
//! structured straggler error.

use crate::engine::{
    build_node_metrics, build_node_traces, record_run_metrics, record_run_span, replicate, Cell,
    FlowLayout, Flows, Instruments, NodeCore, NodePlan, Payload, RunOutcome, RuntimeConfig,
};
use crate::protocol::{self, Body, DeadLink, Envelope, LinkRx, LinkTx, RxVerdict};
use crate::report::{DegradeAction, RuntimeReport, StragglerVerdict};
use hipress_chaos::{ChaosLink, FaultPlan, SendEffects};
use hipress_compress::Compressor;
use hipress_core::graph::{Primitive, TaskGraph, TaskId};
use hipress_metrics::names;
use hipress_util::{Error, Result, SyncFailure, SyncFailureKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

// The worker's wait floor/ceiling and heartbeat period live on
// `RuntimeConfig` (`ft_min_wait` / `ft_max_wait` / `ft_heartbeat`) so
// callers — and the socket fabric, which shares the same discipline —
// tune one set of knobs. Heartbeats are what let the straggler
// detector tell *stuck* from *slow*: a busy or blocked node keeps
// pinging on every timer pass, while an injected stall (or a crash)
// silences the node entirely. They also pin each peer's inter-arrival
// EWMA near the heartbeat period, so straggler thresholds converge to
// `straggler_factor × ft_heartbeat` regardless of how chatty the
// algorithm itself is. Tasks that block the executor longer than that
// product can be misflagged — raise `straggler_floor` when driving
// very coarse workloads.

/// What to do about a diagnosed straggler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Keep waiting: the verdict is recorded but nothing is skipped.
    /// Bit-exact, bounded only by the hard receive deadline.
    #[default]
    Wait,
    /// Skip the straggler's outstanding contributions and rescale the
    /// affected aggregates by `expected / received` (bounded-staleness
    /// partial aggregation). The run completes degraded: exact for the
    /// contributions that did arrive, approximate for the holes.
    Partial,
    /// Abort the run with a structured [`SyncFailure`] naming the
    /// straggler.
    Abort,
}

/// Tuning for the fault-tolerant protocol.
#[derive(Debug, Clone, Copy)]
pub struct FaultTolerance {
    /// Hard bound on progress silence: a node idle this long with
    /// unmet remote dependencies (or an incomplete cluster) unwinds
    /// with a [`SyncFailureKind::RecvTimeout`].
    pub recv_deadline: Duration,
    /// Retransmissions allowed per envelope before the link is
    /// declared dead.
    pub retry_budget: u32,
    /// First retransmission timeout; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on the backed-off retransmission timeout.
    pub max_backoff: Duration,
    /// A peer is a straggler once the time since it was last heard
    /// exceeds `straggler_factor ×` its EWMA inter-arrival gap.
    pub straggler_factor: f64,
    /// Detection floor: peers are never flagged faster than this, no
    /// matter how chatty they were.
    pub straggler_floor: Duration,
    /// What to do once a straggler is diagnosed.
    pub policy: DegradePolicy,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        Self {
            recv_deadline: Duration::from_secs(10),
            retry_budget: 8,
            // Generous first RTO: a receiver busy decoding a large
            // chunk acks late, and a retransmission it did not need
            // is pure overhead.
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            straggler_factor: 8.0,
            straggler_floor: Duration::from_millis(100),
            policy: DegradePolicy::Wait,
        }
    }
}

/// Per-node metric handles for fault accounting, pre-resolved like
/// the engine's [`crate::engine::Instruments`] handles so the hot
/// path is pure atomic recording.
struct FtMetrics {
    injected: [hipress_metrics::Counter; 6],
    retries: hipress_metrics::Counter,
    nacks: hipress_metrics::Counter,
    dups_ignored: hipress_metrics::Counter,
    corrupt_detected: hipress_metrics::Counter,
    degraded: hipress_metrics::Counter,
    verdicts: [hipress_metrics::Counter; 3],
}

/// Injection kinds in [`FtMetrics::injected`] order (and the trace
/// instant names of the `chaos` category).
const INJECT_KINDS: [&str; 6] = ["drop", "dup", "reorder", "delay", "corrupt", "stall"];
/// Verdict actions in [`FtMetrics::verdicts`] order.
const VERDICT_ACTIONS: [&str; 3] = ["waited", "skipped", "aborted"];

impl FtMetrics {
    fn new(scope: &hipress_metrics::Scope, node: usize) -> Self {
        let s = scope.with(&[("node", &node.to_string())]);
        Self {
            injected: std::array::from_fn(|i| {
                s.counter(names::CHAOS_INJECTED, &[("kind", INJECT_KINDS[i])])
            }),
            retries: s.counter(names::FT_RETRIES, &[]),
            nacks: s.counter(names::FT_NACKS, &[]),
            dups_ignored: s.counter(names::FT_DUPLICATES_IGNORED, &[]),
            corrupt_detected: s.counter(names::FT_CORRUPTIONS_DETECTED, &[]),
            degraded: s.counter(names::FT_DEGRADED_CHUNKS, &[]),
            verdicts: std::array::from_fn(|i| {
                s.counter(
                    names::FT_STRAGGLER_VERDICTS,
                    &[("action", VERDICT_ACTIONS[i])],
                )
            }),
        }
    }
}

/// One directed peer connection: sender-side reliability state,
/// receiver-side integrity state, and the fault-injecting sender.
struct PeerLink {
    tx: LinkTx,
    rx: LinkRx,
    chaos: ChaosLink<Envelope>,
}

/// Executes `graph` under a fault plan with the fault-tolerant
/// envelope protocol. With `FaultPlan::none` this is the fault-free
/// envelope path — same results as [`crate::engine::run`], plus
/// checksum/ack overhead (measured by the `chaos_overhead` bench).
///
/// Batch compression is a fast-path optimization; the fault-tolerant
/// worker executes tasks singly (the config's other knobs apply).
///
/// # Errors
///
/// As [`crate::engine::run`] for malformed graphs, plus structured
/// [`Error::Sync`] failures when the plan is unrecoverable: dead
/// links, receive deadlines, straggler aborts, injected crashes. The
/// root cause (lowest [`SyncFailureKind::rank`], then lowest node) is
/// returned; abort echoes are suppressed.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos(
    graph: &TaskGraph,
    nodes: usize,
    flows: &Flows,
    compressor: Option<&dyn Compressor>,
    seed: u64,
    config: &RuntimeConfig,
    ft: &FaultTolerance,
    plan: &FaultPlan,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    let tracer = instruments.tracer;
    #[cfg(debug_assertions)]
    hipress_lint::plan::verify(graph, nodes).into_result()?;
    let replicated = replicate(flows);
    let layout = FlowLayout::derive(graph, nodes, &replicated)?;
    let nplan = NodePlan::derive(graph, nodes);

    let poison = AtomicBool::new(false);
    let done_nodes = AtomicUsize::new(0);
    let mut txs: Vec<Sender<Envelope>> = Vec::with_capacity(nodes);
    let mut rxs: Vec<Receiver<Envelope>> = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }

    let node_traces = build_node_traces(tracer, nodes);
    let node_metrics = build_node_metrics(instruments.metrics, nodes);
    let mut ft_metrics: Vec<Option<FtMetrics>> = Vec::with_capacity(nodes);
    if let Some(scope) = instruments.metrics {
        for node in 0..nodes {
            ft_metrics.push(Some(FtMetrics::new(scope, node)));
        }
    } else {
        ft_metrics.resize_with(nodes, || None);
    }

    let run_start_ns = tracer.map(hipress_trace::Tracer::now_ns);
    let started = Instant::now();
    let mut results: Vec<Result<(HashMap<(u32, u32), Cell>, RuntimeReport)>> = (0..nodes)
        .map(|_| Err(Error::sim("node never ran")))
        .collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nodes);
        for ((((node, rx), trace), metrics), fmetrics) in rxs
            .into_iter()
            .enumerate()
            .zip(node_traces)
            .zip(node_metrics)
            .zip(ft_metrics)
        {
            let txs: Vec<Sender<Envelope>> = txs.clone();
            let replicated = &replicated;
            let layout = &layout;
            let nplan = &nplan;
            let poison = &poison;
            let done_nodes = &done_nodes;
            handles.push(scope.spawn(move || {
                let now = Instant::now();
                let links = txs
                    .iter()
                    .map(|tx| PeerLink {
                        tx: LinkTx::new(ft.retry_budget, ft.base_backoff, ft.max_backoff),
                        rx: LinkRx::new(),
                        chaos: ChaosLink::new(node, usize::MAX, tx.clone()),
                    })
                    .collect::<Vec<_>>();
                // ChaosLink's dst is fixed at construction; rebuild
                // with the right peer index per slot.
                let links = links
                    .into_iter()
                    .enumerate()
                    .map(|(peer, l)| PeerLink {
                        chaos: ChaosLink::new(node, peer, txs[peer].clone()),
                        ..l
                    })
                    .collect();
                let mut worker = FtWorker {
                    core: NodeCore::new(
                        node, graph, replicated, layout, compressor, seed, trace, metrics,
                    ),
                    plan: nplan,
                    fplan: plan,
                    ft: *ft,
                    config: *config,
                    nodes,
                    rx,
                    links,
                    direct: txs,
                    poison,
                    done_nodes,
                    pending: nplan.pending[node].clone(),
                    q_comp: VecDeque::new(),
                    q_commu: VecDeque::new(),
                    resolved_remote: HashSet::new(),
                    done: 0,
                    executed: 0,
                    stall_done: false,
                    last_progress: now,
                    last_heard: vec![now; nodes],
                    ewma_gap_ns: vec![ft.straggler_floor.as_nanos() as f64; nodes],
                    flagged: vec![false; nodes],
                    skipped_peers: HashSet::new(),
                    last_beat: now,
                    fmetrics,
                };
                worker.run()
            }));
        }
        for (node, h) in handles.into_iter().enumerate() {
            results[node] = h
                .join()
                .unwrap_or_else(|_| Err(Error::sim(format!("node {node} thread panicked"))));
        }
    });
    let wall_ns = started.elapsed().as_nanos() as u64;
    record_run_span(tracer, run_start_ns, wall_ns, nodes, 0, 0, 0);

    // Pick the root cause: any non-protocol error wins outright;
    // among protocol failures, detections outrank the crash that
    // caused them, which outranks abort echoes.
    let mut best_sync: Option<Error> = None;
    let mut cells_per_node = Vec::with_capacity(nodes);
    let mut report = RuntimeReport {
        nodes,
        wall_ns,
        per_node_busy_ns: vec![0; nodes],
        ..Default::default()
    };
    for (node, r) in results.into_iter().enumerate() {
        match r {
            Ok((cells, node_report)) => {
                report.absorb(&node_report);
                report.per_node_busy_ns[node] = node_report.total_busy_ns();
                cells_per_node.push(cells);
            }
            Err(e) => match e.as_sync() {
                None => return Err(e),
                Some(s) => {
                    let better = match best_sync.as_ref().and_then(Error::as_sync) {
                        None => true,
                        Some(b) => s.kind.rank() < b.kind.rank(),
                    };
                    if better {
                        best_sync = Some(e);
                    }
                }
            },
        }
    }
    if let Some(e) = best_sync {
        return Err(e);
    }

    if let Some(scope) = instruments.metrics {
        record_run_metrics(scope, &report);
    }

    let flows_out = layout.assemble(&cells_per_node)?;
    Ok(RunOutcome {
        flows: flows_out,
        report,
    })
}

/// One node's fault-tolerant task manager: the engine's dataflow core
/// behind the envelope protocol.
struct FtWorker<'a> {
    core: NodeCore<'a>,
    plan: &'a NodePlan,
    fplan: &'a FaultPlan,
    ft: FaultTolerance,
    config: RuntimeConfig,
    nodes: usize,
    rx: Receiver<Envelope>,
    links: Vec<PeerLink>,
    /// Raw senders, bypassing fault injection — aborts are
    /// control-plane and always get through.
    direct: Vec<Sender<Envelope>>,
    poison: &'a AtomicBool,
    /// Nodes that finished all local tasks with idle links; everyone
    /// lingers (servicing acks) until this reaches the node count.
    done_nodes: &'a AtomicUsize,
    pending: HashMap<u32, usize>,
    q_comp: VecDeque<TaskId>,
    q_commu: VecDeque<TaskId>,
    /// Remote tasks whose completion has been consumed — by a genuine
    /// delivery or a degradation skip. Late deliveries after a skip
    /// are acked and ignored, never double-resolved.
    resolved_remote: HashSet<u32>,
    done: usize,
    /// Local executions so far (the coordinate stall/crash triggers
    /// fire on).
    executed: usize,
    stall_done: bool,
    last_progress: Instant,
    last_heard: Vec<Instant>,
    ewma_gap_ns: Vec<f64>,
    /// Peers already carrying a straggler verdict (one per peer).
    flagged: Vec<bool>,
    skipped_peers: HashSet<usize>,
    /// When this node last broadcast a liveness [`Body::Ping`].
    last_beat: Instant,
    fmetrics: Option<FtMetrics>,
}

impl FtWorker<'_> {
    fn run(&mut self) -> Result<(HashMap<(u32, u32), Cell>, RuntimeReport)> {
        match self.run_inner() {
            Ok(v) => Ok(v),
            Err(e) => {
                // Crashes are silent (peers must diagnose the
                // silence); abort echoes were already broadcast by
                // their origin. Everything else poisons the cluster.
                let silent = matches!(
                    e.as_sync().map(|s| s.kind),
                    Some(SyncFailureKind::InjectedCrash) | Some(SyncFailureKind::Aborted)
                );
                if !silent {
                    self.broadcast_abort();
                }
                Err(e)
            }
        }
    }

    fn run_inner(&mut self) -> Result<(HashMap<(u32, u32), Cell>, RuntimeReport)> {
        let mut ready: Vec<u32> = self
            .pending
            .iter()
            .filter(|&(_, &n)| n == 0)
            .map(|(&t, _)| t)
            .collect();
        ready.sort_unstable();
        for t in ready {
            self.enqueue(TaskId(t));
        }

        let total = self.plan.local_counts[self.core.node];
        let mut counted_done = false;
        loop {
            if self.poison.load(Ordering::Relaxed) {
                return Err(self.aborted(None));
            }
            loop {
                match self.rx.try_recv() {
                    Ok(env) => self.handle(env)?,
                    Err(_) => break,
                }
            }
            self.tick()?;
            if self.done < total {
                if let Some(t) = self.next_ready() {
                    self.node_fault_gate()?;
                    let outbound = self.core.execute_one(t)?;
                    self.finish(t, outbound);
                    self.executed += 1;
                    self.last_progress = Instant::now();
                    continue;
                }
                self.idle_checks()?;
                match self.rx.recv_timeout(self.wait_budget()) {
                    Ok(env) => self.handle(env)?,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(self.recv_timeout(None, "fabric disconnected"));
                    }
                }
            } else {
                // Lingering: all local tasks done, but peers may still
                // need acks (or retransmissions) from us. Stay live
                // until every node reports done.
                if !counted_done && self.links_idle() {
                    counted_done = true;
                    self.last_progress = Instant::now();
                    // Last node out wakes everyone: lingering peers
                    // otherwise only notice the counter on their next
                    // poll, stretching every run's tail by a poll
                    // period per node.
                    if self.done_nodes.fetch_add(1, Ordering::SeqCst) + 1 >= self.nodes {
                        for (n, tx) in self.direct.iter().enumerate() {
                            if n != self.core.node {
                                let _ = tx.send(Envelope::control(self.core.node, Body::Done));
                            }
                        }
                    }
                }
                if counted_done && self.done_nodes.load(Ordering::SeqCst) >= self.nodes {
                    break;
                }
                if self.last_progress.elapsed() > self.ft.recv_deadline {
                    return Err(self.recv_timeout(None, "cluster incomplete after deadline"));
                }
                match self.rx.recv_timeout(self.wait_budget()) {
                    Ok(env) => self.handle(env)?,
                    Err(RecvTimeoutError::Timeout) => {}
                    // Every peer has exited; nothing more can arrive
                    // and nobody needs us.
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        Ok((
            std::mem::take(&mut self.core.cells),
            std::mem::take(&mut self.core.report),
        ))
    }

    // ------------------------------------------------------------------
    // Fabric: envelopes in.

    fn handle(&mut self, env: Envelope) -> Result<()> {
        let from = env.src;
        if from != self.core.node && from < self.nodes {
            self.heard(from);
        }
        match env.body {
            Body::Abort => Err(self.aborted(Some(from))),
            Body::Ack { seq } => {
                if env.verify() && self.links[from].tx.on_ack(seq) {
                    self.last_progress = Instant::now();
                }
                Ok(())
            }
            Body::Nack { seq } => {
                if !env.verify() {
                    return Ok(());
                }
                match self.links[from].tx.on_nack(seq, Instant::now()) {
                    Ok(Some(resend)) => {
                        self.note_retry();
                        let fx = self.links[from].chaos.send(
                            self.fplan,
                            resend.seq,
                            resend.attempt,
                            resend,
                        );
                        self.note_effects(fx);
                        Ok(())
                    }
                    Ok(None) => Ok(()),
                    Err(dead) => Err(self.dead_link(from, dead)),
                }
            }
            Body::Data { .. } => {
                self.handle_data(env);
                Ok(())
            }
            // Pure wake-up: the loop re-checks the done counter next
            // iteration and exits.
            Body::Done => Ok(()),
            // Liveness only: `heard` above already refreshed the
            // peer's silence clock, which is the ping's entire job.
            // Deliberately not progress — a cluster exchanging only
            // heartbeats must still hit the receive deadline.
            Body::Ping => Ok(()),
        }
    }

    fn handle_data(&mut self, env: Envelope) {
        let from = env.src;
        match self.links[from].rx.accept(&env) {
            RxVerdict::Corrupt => {
                self.core.report.faults.corruptions_detected += 1;
                if let Some(m) = &self.fmetrics {
                    m.corrupt_detected.inc();
                }
                self.ft_instant("corrupt_detected");
                self.note_nack();
                self.send_control(from, Body::Nack { seq: env.seq }, env.seq, env.attempt);
            }
            RxVerdict::Duplicate => {
                self.note_dup_ignored();
                // Re-ack: the original ack may have been eaten.
                self.send_control(from, Body::Ack { seq: env.seq }, env.seq, env.attempt);
            }
            RxVerdict::Deliver => {
                self.send_control(from, Body::Ack { seq: env.seq }, env.seq, env.attempt);
                let Body::Data { task, payload } = env.body else {
                    unreachable!("handle_data is only called on Data envelopes");
                };
                if self.resolved_remote.contains(&task.0) {
                    // A late real delivery after a degradation skip:
                    // acked (the sender may retire it) but ignored.
                    self.note_dup_ignored();
                    return;
                }
                self.resolved_remote.insert(task.0);
                let wire_bytes = payload.as_deref().map(Payload::wire_bytes);
                if let Some(p) = payload {
                    self.core.inbound.insert(task.0, p);
                }
                self.core.note_message(task, wire_bytes);
                if let Some(deps) = self.plan.remote_edges_in[self.core.node].get(&task.0) {
                    for &d in deps.clone().iter() {
                        self.resolve_dep(d);
                    }
                }
                self.last_progress = Instant::now();
            }
        }
    }

    /// Updates the liveness estimate for `peer` on any arrival.
    fn heard(&mut self, peer: usize) {
        let now = Instant::now();
        let gap = now.duration_since(self.last_heard[peer]).as_nanos() as f64;
        self.ewma_gap_ns[peer] = protocol::ewma_update(self.ewma_gap_ns[peer], gap);
        self.last_heard[peer] = now;
    }

    // ------------------------------------------------------------------
    // Fabric: envelopes out.

    /// Sends an ack/nack for a data envelope through the chaos fabric.
    /// The reply borrows the data's `(seq, attempt)` as its fault
    /// coordinates, so the plan's fault cap bounds loss on the reverse
    /// path exactly as on the forward path (the reversed link indices
    /// decorrelate the draws).
    fn send_control(&mut self, to: usize, body: Body, seq: u64, attempt: u32) {
        let mut env = Envelope::control(self.core.node, body);
        env.attempt = attempt; // outside the checksum
        let fx = self.links[to].chaos.send(self.fplan, seq, attempt, env);
        self.note_effects(fx);
    }

    fn broadcast_abort(&mut self) {
        self.poison.store(true, Ordering::Relaxed);
        for (n, tx) in self.direct.iter().enumerate() {
            if n != self.core.node {
                let _ = tx.send(Envelope::control(self.core.node, Body::Abort));
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers.

    /// Drives everything clock-based: broadcasts liveness heartbeats,
    /// releases chaos-held messages, and retransmits envelopes whose
    /// timers expired.
    fn tick(&mut self) -> Result<()> {
        let now = Instant::now();
        if protocol::heartbeat_due(now.duration_since(self.last_beat), self.config.ft_heartbeat) {
            self.last_beat = now;
            for (n, tx) in self.direct.iter().enumerate() {
                if n != self.core.node {
                    let _ = tx.send(Envelope::control(self.core.node, Body::Ping));
                }
            }
        }
        for peer in 0..self.nodes {
            if peer == self.core.node {
                continue;
            }
            self.links[peer].chaos.flush_due(now);
            let resends = match self.links[peer].tx.due(now) {
                Ok(r) => r,
                Err(dead) => return Err(self.dead_link(peer, dead)),
            };
            for env in resends {
                self.note_retry();
                let fx = self.links[peer]
                    .chaos
                    .send(self.fplan, env.seq, env.attempt, env);
                self.note_effects(fx);
            }
        }
        Ok(())
    }

    /// Straggler detection and the hard receive deadline; called only
    /// when the node has nothing ready to execute.
    fn idle_checks(&mut self) -> Result<()> {
        let now = Instant::now();
        // Collect every overdue peer, stalest first: a peer that went
        // silent because it is itself blocked on the real straggler
        // went silent *later*, so blaming the longest silence finds
        // the origin of a stall cascade, not its first victim.
        let floor = self.ft.straggler_floor.as_nanos() as u64;
        let mut overdue: Vec<(u64, u64, usize)> = self
            .waiting_on()
            .into_iter()
            .filter(|&p| !self.skipped_peers.contains(&p) && !self.flagged[p])
            .map(|p| {
                let idle_ns = now.duration_since(self.last_heard[p]).as_nanos() as u64;
                let threshold = protocol::straggler_threshold_ns(
                    floor,
                    self.ft.straggler_factor,
                    self.ewma_gap_ns[p],
                );
                (idle_ns, threshold, p)
            })
            .filter(|&(idle_ns, threshold, _)| idle_ns > threshold)
            .collect();
        overdue.sort_unstable_by(|a, b| b.0.cmp(&a.0));
        for (idle_ns, threshold, peer) in overdue {
            match self.ft.policy {
                DegradePolicy::Wait => {
                    self.record_verdict(peer, idle_ns, DegradeAction::Waited);
                }
                DegradePolicy::Partial => {
                    self.record_verdict(peer, idle_ns, DegradeAction::Skipped);
                    self.skip_peer(peer);
                }
                DegradePolicy::Abort => {
                    self.record_verdict(peer, idle_ns, DegradeAction::Aborted);
                    return Err(Error::sync(SyncFailure {
                        kind: SyncFailureKind::Straggler,
                        node: self.core.node,
                        peer: Some(peer),
                        task: None,
                        detail: format!(
                            "silent for {idle_ns}ns (threshold {threshold}ns), policy is abort"
                        ),
                    }));
                }
            }
        }
        if self.last_progress.elapsed() > self.ft.recv_deadline {
            let peer = self.waiting_on().first().copied();
            return Err(self.recv_timeout(
                peer,
                &format!(
                    "no progress within the {:?} receive deadline",
                    self.ft.recv_deadline
                ),
            ));
        }
        Ok(())
    }

    /// Peers owning unresolved remote tasks this node still needs.
    fn waiting_on(&self) -> Vec<usize> {
        let mut peers: Vec<usize> = self.plan.remote_edges_in[self.core.node]
            .keys()
            .filter(|rt| !self.resolved_remote.contains(rt))
            .map(|&rt| self.core.graph.task(TaskId(rt)).node)
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// Bounded-staleness degradation: consume every outstanding
    /// contribution from `peer` as a hole. Sends synthesize a
    /// [`Payload::Skipped`] inbound (their receivers mark the hole and
    /// the aggregates rescale at consumption); bare completion edges
    /// resolve outright. Late real deliveries are acked and ignored.
    fn skip_peer(&mut self, peer: usize) {
        self.skipped_peers.insert(peer);
        let mut outstanding: Vec<u32> = self.plan.remote_edges_in[self.core.node]
            .keys()
            .filter(|rt| !self.resolved_remote.contains(rt))
            .filter(|&&rt| self.core.graph.task(TaskId(rt)).node == peer)
            .copied()
            .collect();
        outstanding.sort_unstable();
        for rt in outstanding {
            self.resolved_remote.insert(rt);
            if self.core.graph.task(TaskId(rt)).prim == Primitive::Send {
                self.core.inbound.insert(rt, Arc::new(Payload::Skipped));
                self.core.report.faults.degraded_chunks += 1;
                if let Some(m) = &self.fmetrics {
                    m.degraded.inc();
                }
                self.ft_instant("skip");
            }
            if let Some(deps) = self.plan.remote_edges_in[self.core.node].get(&rt) {
                for &d in deps.clone().iter() {
                    self.resolve_dep(d);
                }
            }
        }
        self.last_progress = Instant::now();
    }

    // ------------------------------------------------------------------
    // Node faults.

    /// Applies this node's own stall/crash triggers before the
    /// `executed`-th local execution.
    fn node_fault_gate(&mut self) -> Result<()> {
        let Some(nf) = self.fplan.node_faults(self.core.node) else {
            return Ok(());
        };
        if let Some(c) = nf.crash {
            if self.executed == c.at_task {
                // Stop cold, telling nobody: the receiver drops, the
                // sends rot unacked, and the peers must diagnose it.
                return Err(Error::sync(SyncFailure {
                    kind: SyncFailureKind::InjectedCrash,
                    node: self.core.node,
                    peer: None,
                    task: None,
                    detail: format!("injected crash before local task {}", c.at_task),
                }));
            }
        }
        if let Some(s) = nf.stall {
            if self.executed == s.at_task && !self.stall_done {
                self.stall_done = true;
                self.core.report.faults.injected_stalls += 1;
                if let Some(m) = &self.fmetrics {
                    m.injected[5].inc();
                }
                self.chaos_instant("stall");
                std::thread::sleep(Duration::from_nanos(s.dur_ns));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Task manager (same promotion discipline as the fast path).

    fn resolve_dep(&mut self, t: u32) {
        let n = self
            .pending
            .get_mut(&t)
            .expect("resolve_dep on a task this node does not own");
        *n -= 1;
        if *n == 0 {
            self.enqueue(TaskId(t));
        }
    }

    fn enqueue(&mut self, t: TaskId) {
        let prim = self.core.graph.task(t).prim;
        if prim == Primitive::Send || prim == Primitive::Recv {
            self.q_commu.push_back(t);
            if let Some(tr) = &self.core.trace {
                tr.q_commu.add(1);
            }
        } else {
            self.q_comp.push_back(t);
            if let Some(tr) = &self.core.trace {
                tr.q_comp.add(1);
            }
        }
    }

    fn next_ready(&mut self) -> Option<TaskId> {
        if let Some(t) = self.q_commu.pop_front() {
            if let Some(tr) = &self.core.trace {
                tr.q_commu.add(-1);
            }
            return Some(t);
        }
        if let Some(t) = self.q_comp.pop_front() {
            if let Some(tr) = &self.core.trace {
                tr.q_comp.add(-1);
            }
            return Some(t);
        }
        None
    }

    /// Marks `id` complete locally and ships enveloped completions to
    /// remote dependents.
    fn finish(&mut self, id: TaskId, payload: Option<Arc<Payload>>) {
        self.done += 1;
        if let Some(deps) = self.plan.local_dependents.get(&id.0) {
            for &d in deps.clone().iter() {
                self.resolve_dep(d);
            }
        }
        if let Some(nodes) = self.plan.remote_notify.get(&id.0) {
            let now = Instant::now();
            for &n in nodes.clone().iter() {
                let env = self.links[n]
                    .tx
                    .prepare(self.core.node, id, payload.clone(), now);
                let fx = self.links[n]
                    .chaos
                    .send(self.fplan, env.seq, env.attempt, env);
                self.note_effects(fx);
            }
        }
    }

    fn links_idle(&self) -> bool {
        self.links
            .iter()
            .all(|l| l.tx.idle() && l.chaos.held() == 0)
    }

    /// How long the next blocking receive may sleep: until the
    /// earliest retransmission or chaos-release deadline across all
    /// links, clamped to `[ft_min_wait, ft_max_wait]`. Incoming
    /// envelopes cut the wait short regardless, so a long budget costs
    /// nothing on the fault-free path.
    fn wait_budget(&self) -> Duration {
        let mut next: Option<Instant> = None;
        for l in &self.links {
            for d in l.tx.next_due().into_iter().chain(l.chaos.next_release()) {
                next = Some(next.map_or(d, |cur| cur.min(d)));
            }
        }
        match next {
            Some(d) => d
                .saturating_duration_since(Instant::now())
                .clamp(self.config.ft_min_wait, self.config.ft_max_wait),
            None => self.config.ft_max_wait,
        }
    }

    // ------------------------------------------------------------------
    // Accounting.

    /// Records what a chaos send injected.
    fn note_effects(&mut self, fx: SendEffects) {
        if fx.is_clean() {
            return;
        }
        for (i, (hit, name)) in [
            (fx.dropped, "drop"),
            (fx.duplicated, "dup"),
            (fx.reordered, "reorder"),
            (fx.delayed, "delay"),
            (fx.corrupted, "corrupt"),
        ]
        .into_iter()
        .enumerate()
        {
            if hit {
                let fr = &mut self.core.report.faults;
                match i {
                    0 => fr.injected_drops += 1,
                    1 => fr.injected_dups += 1,
                    2 => fr.injected_reorders += 1,
                    3 => fr.injected_delays += 1,
                    _ => fr.injected_corruptions += 1,
                }
                if let Some(m) = &self.fmetrics {
                    m.injected[i].inc();
                }
                self.chaos_instant(name);
            }
        }
    }

    fn note_retry(&mut self) {
        self.core.report.faults.retries += 1;
        if let Some(m) = &self.fmetrics {
            m.retries.inc();
        }
        self.ft_instant("retry");
    }

    fn note_nack(&mut self) {
        self.core.report.faults.nacks += 1;
        if let Some(m) = &self.fmetrics {
            m.nacks.inc();
        }
        self.ft_instant("nack");
    }

    fn note_dup_ignored(&mut self) {
        self.core.report.faults.duplicates_ignored += 1;
        if let Some(m) = &self.fmetrics {
            m.dups_ignored.inc();
        }
        self.ft_instant("dup_ignored");
    }

    fn record_verdict(&mut self, peer: usize, waited_ns: u64, action: DegradeAction) {
        self.flagged[peer] = true;
        self.core.report.faults.verdicts.push(StragglerVerdict {
            node: self.core.node,
            peer,
            waited_ns,
            action,
        });
        let (name, idx) = match action {
            DegradeAction::Waited => ("waited", 0),
            DegradeAction::Skipped => ("skipped", 1),
            DegradeAction::Aborted => ("aborted", 2),
        };
        if let Some(m) = &self.fmetrics {
            m.verdicts[idx].inc();
        }
        if let Some(tr) = &self.core.trace {
            tr.tracer.instant(
                tr.track,
                name,
                "straggler",
                tr.tracer.now_ns(),
                &[
                    ("node", self.core.node as u64),
                    ("peer", peer as u64),
                    ("waited_ns", waited_ns),
                ],
            );
        }
    }

    fn chaos_instant(&self, name: &str) {
        if let Some(tr) = &self.core.trace {
            tr.tracer
                .instant(tr.track, name, "chaos", tr.tracer.now_ns(), &[]);
        }
    }

    fn ft_instant(&self, name: &str) {
        if let Some(tr) = &self.core.trace {
            tr.tracer
                .instant(tr.track, name, "ft", tr.tracer.now_ns(), &[]);
        }
    }

    // ------------------------------------------------------------------
    // Structured failures.

    fn aborted(&self, from: Option<usize>) -> Error {
        Error::sync(SyncFailure {
            kind: SyncFailureKind::Aborted,
            node: self.core.node,
            peer: from,
            task: None,
            detail: String::new(),
        })
    }

    fn dead_link(&self, peer: usize, dead: DeadLink) -> Error {
        Error::sync(SyncFailure {
            kind: SyncFailureKind::LinkDead,
            node: self.core.node,
            peer: Some(peer),
            task: dead.task.map(|t| t.0),
            detail: format!("{} transmissions unacknowledged", dead.attempts),
        })
    }

    fn recv_timeout(&self, peer: Option<usize>, detail: &str) -> Error {
        Error::sync(SyncFailure {
            kind: SyncFailureKind::RecvTimeout,
            node: self.core.node,
            peer,
            task: None,
            detail: detail.to_string(),
        })
    }
}

//! The fault-tolerant wire protocol for CaSync-RT.
//!
//! The fast path trusts its `mpsc` fabric the way the paper trusts
//! NCCL: messages arrive, once, intact. This module is what the
//! engine speaks when that trust is revoked (`run_chaos`): every
//! inter-node message becomes a sequence-numbered, checksummed
//! [`Envelope`]; receivers verify and deduplicate ([`LinkRx`]),
//! acknowledge good data, and nack corrupt data; senders keep
//! unacknowledged envelopes in a retransmission buffer with
//! exponential backoff and a bounded retry budget ([`LinkTx`]).
//!
//! The checksum covers everything delivery-relevant — source,
//! sequence number, task, payload bytes — but *not* the attempt
//! counter, so a retransmission carries the original digest and the
//! receiver cannot be confused by which attempt got through.

use crate::engine::Payload;
use hipress_core::graph::TaskId;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What an envelope carries.
#[derive(Debug, Clone)]
pub enum Body {
    /// A remote task completed; for `Send` tasks the payload rides
    /// along (the message *is* the transfer).
    Data {
        /// The completed task.
        task: TaskId,
        /// The payload, for `Send` completions.
        payload: Option<Arc<Payload>>,
    },
    /// Data `seq` arrived intact; the sender may drop it from its
    /// retransmission buffer.
    Ack {
        /// The acknowledged data sequence number.
        seq: u64,
    },
    /// Data `seq` arrived corrupt; the sender should retransmit now.
    Nack {
        /// The rejected data sequence number.
        seq: u64,
    },
    /// A peer hit an error; unwind. (Control-plane: never injected
    /// with faults, so an abort always gets through.)
    Abort,
    /// Every node has finished and drained its links; lingering peers
    /// may exit now instead of on their next poll. (Control-plane,
    /// like [`Body::Abort`]: purely a wake-up, carries no state.)
    Done,
    /// Periodic liveness probe. A node that is alive but busy (or
    /// simply has nothing to send) keeps pinging; a stalled or
    /// crashed node cannot, which is exactly the distinction the
    /// straggler detector needs — silence then means *stuck*, not
    /// *slow*. Control-plane: the fault model stalls nodes, not
    /// probes.
    Ping,
}

/// One message on the fault-tolerant fabric.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The sending node.
    pub src: usize,
    /// Per-link sequence number (data envelopes; 0 for control).
    pub seq: u64,
    /// Which attempt this is (0 = first transmission). Excluded from
    /// the checksum; fault injection uses it for its decision hash.
    pub attempt: u32,
    /// The message itself.
    pub body: Body,
    /// FNV-1a digest of `src`, `seq`, and the body content.
    pub checksum: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01B3;

/// FNV-1a folded a whole 64-bit word at a time (not per byte): one
/// xor-multiply per 8 payload bytes keeps checksumming multi-megabyte
/// raw gradients off the critical path. Single-bit flips anywhere in
/// a word still change the digest — the multiply diffuses them.
fn fnv(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

impl Envelope {
    /// Builds a sealed data envelope for `task` (attempt 0).
    pub fn data(src: usize, seq: u64, task: TaskId, payload: Option<Arc<Payload>>) -> Self {
        let mut e = Self {
            src,
            seq,
            attempt: 0,
            body: Body::Data { task, payload },
            checksum: 0,
        };
        e.checksum = e.digest();
        e
    }

    /// Builds a sealed control envelope (ack/nack/abort).
    pub fn control(src: usize, body: Body) -> Self {
        let mut e = Self {
            src,
            seq: 0,
            attempt: 0,
            body,
            checksum: 0,
        };
        e.checksum = e.digest();
        e
    }

    /// The checksum the envelope *should* carry: an FNV-1a fold over
    /// `src`, `seq`, a body tag, and the body's content (payload
    /// words included bit-exactly). The attempt counter is excluded —
    /// retransmissions carry the original digest.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv(h, self.src as u64);
        h = fnv(h, self.seq);
        match &self.body {
            Body::Data { task, payload } => {
                h = fnv(h, 1);
                h = fnv(h, u64::from(task.0));
                match payload.as_deref() {
                    None => h = fnv(h, 0),
                    Some(Payload::Raw(v)) => {
                        h = fnv(h, 1);
                        h = fnv(h, v.len() as u64);
                        for x in v {
                            h = fnv(h, u64::from(x.to_bits()));
                        }
                    }
                    Some(Payload::Compressed(b)) => {
                        h = fnv(h, 2);
                        h = fnv(h, b.len() as u64);
                        for chunk in b.chunks(8) {
                            let mut word = [0u8; 8];
                            word[..chunk.len()].copy_from_slice(chunk);
                            h = fnv(h, u64::from_le_bytes(word));
                        }
                    }
                    Some(Payload::Skipped) => h = fnv(h, 3),
                }
            }
            Body::Ack { seq } => {
                h = fnv(h, 2);
                h = fnv(h, *seq);
            }
            Body::Nack { seq } => {
                h = fnv(h, 3);
                h = fnv(h, *seq);
            }
            Body::Abort => h = fnv(h, 4),
            Body::Done => h = fnv(h, 5),
            Body::Ping => h = fnv(h, 6),
        }
        h
    }

    /// True when the carried checksum matches the content.
    pub fn verify(&self) -> bool {
        self.checksum == self.digest()
    }

    /// The task a data envelope announces, if it is one.
    pub fn data_task(&self) -> Option<TaskId> {
        match &self.body {
            Body::Data { task, .. } => Some(*task),
            _ => None,
        }
    }
}

impl hipress_chaos::Wire for Envelope {
    /// Only data payloads are corruptible: flipping gradient bits is
    /// the fault the checksum must catch. Control messages are
    /// loss-faulted but never mangled.
    fn payload_bits(&self) -> u64 {
        match &self.body {
            Body::Data {
                payload: Some(p), ..
            } => match p.as_ref() {
                Payload::Raw(v) => (v.len() * 32) as u64,
                Payload::Compressed(b) => (b.len() * 8) as u64,
                Payload::Skipped => 0,
            },
            _ => 0,
        }
    }

    fn flip_bit(&mut self, bit: u64) {
        if let Body::Data {
            payload: Some(p), ..
        } = &mut self.body
        {
            match Arc::make_mut(p) {
                Payload::Raw(v) => {
                    let i = (bit / 32) as usize;
                    v[i] = f32::from_bits(v[i].to_bits() ^ (1 << (bit % 32)));
                }
                Payload::Compressed(b) => {
                    b[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                Payload::Skipped => {}
            }
        }
    }
}

/// Why a sender-side link gave up: the peer never acknowledged
/// `seq` (announcing `task`) within the retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadLink {
    /// The unacknowledged sequence number.
    pub seq: u64,
    /// The task that data envelope announced.
    pub task: Option<TaskId>,
    /// How many transmissions were attempted (1 + retries).
    pub attempts: u32,
}

/// One in-flight (unacknowledged) data envelope.
#[derive(Debug)]
struct Inflight {
    env: Envelope,
    due: Instant,
}

/// Sender-side reliability state for one directed link.
///
/// Every data envelope enters the in-flight buffer with a
/// retransmission timer; [`LinkTx::due`] returns envelopes whose
/// timer expired (with exponentially backed-off next deadlines), and
/// [`LinkTx::on_ack`] / [`LinkTx::on_nack`] retire or fast-path
/// retransmit them. When one envelope exceeds the retry budget the
/// link is declared dead.
#[derive(Debug)]
pub struct LinkTx {
    next_seq: u64,
    inflight: BTreeMap<u64, Inflight>,
    retry_budget: u32,
    base_backoff: Duration,
    max_backoff: Duration,
}

impl LinkTx {
    /// A fresh link with the given retry budget and backoff range.
    pub fn new(retry_budget: u32, base_backoff: Duration, max_backoff: Duration) -> Self {
        Self {
            next_seq: 0,
            inflight: BTreeMap::new(),
            retry_budget,
            base_backoff,
            max_backoff,
        }
    }

    /// The retransmission timeout for attempt `attempt`:
    /// `base × 2^attempt`, capped.
    fn rto(base: Duration, max: Duration, attempt: u32) -> Duration {
        base.saturating_mul(1u32 << attempt.min(16)).min(max)
    }

    /// Assigns the next sequence number to a data envelope for
    /// `task`, arms its retransmission timer, and returns the sealed
    /// envelope (attempt 0) ready to send.
    pub fn prepare(
        &mut self,
        src: usize,
        task: TaskId,
        payload: Option<Arc<Payload>>,
        now: Instant,
    ) -> Envelope {
        let seq = self.next_seq;
        self.next_seq += 1;
        let env = Envelope::data(src, seq, task, payload);
        self.inflight.insert(
            seq,
            Inflight {
                env: env.clone(),
                due: now + Self::rto(self.base_backoff, self.max_backoff, 0),
            },
        );
        env
    }

    /// Retires an acknowledged envelope. Returns false for unknown
    /// (already-retired or forged) sequence numbers.
    pub fn on_ack(&mut self, seq: u64) -> bool {
        self.inflight.remove(&seq).is_some()
    }

    /// Handles a nack: bumps the attempt, re-arms the timer, and
    /// returns the envelope to retransmit immediately. `None` when
    /// the envelope is no longer in flight, or `Err` when the nack
    /// pushed it past the retry budget.
    pub fn on_nack(&mut self, seq: u64, now: Instant) -> Result<Option<Envelope>, DeadLink> {
        let (base, max) = (self.base_backoff, self.max_backoff);
        let Some(inf) = self.inflight.get_mut(&seq) else {
            return Ok(None);
        };
        inf.env.attempt += 1;
        if inf.env.attempt > self.retry_budget {
            return Err(DeadLink {
                seq,
                task: inf.env.data_task(),
                attempts: inf.env.attempt,
            });
        }
        inf.due = now + Self::rto(base, max, inf.env.attempt);
        Ok(Some(inf.env.clone()))
    }

    /// Collects every envelope whose retransmission timer expired,
    /// bumping attempts and re-arming timers. `Err` when any envelope
    /// exceeds the retry budget — the link is dead.
    pub fn due(&mut self, now: Instant) -> Result<Vec<Envelope>, DeadLink> {
        let (base, max) = (self.base_backoff, self.max_backoff);
        let mut out = Vec::new();
        for (seq, inf) in self.inflight.iter_mut() {
            if inf.due > now {
                continue;
            }
            inf.env.attempt += 1;
            if inf.env.attempt > self.retry_budget {
                return Err(DeadLink {
                    seq: *seq,
                    task: inf.env.data_task(),
                    attempts: inf.env.attempt,
                });
            }
            inf.due = now + Self::rto(base, max, inf.env.attempt);
            out.push(inf.env.clone());
        }
        Ok(out)
    }

    /// True when nothing is awaiting acknowledgement.
    pub fn idle(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Earliest retransmission deadline among in-flight envelopes, if
    /// any — lets the owner sleep until a timer can actually fire
    /// instead of polling on a fixed tick.
    pub fn next_due(&self) -> Option<Instant> {
        self.inflight.values().map(|inf| inf.due).min()
    }

    /// Drops all in-flight state (the peer is known to be gone and
    /// no longer needs anything from us).
    pub fn peer_gone(&mut self) {
        self.inflight.clear();
    }
}

/// The receiver's verdict on one data envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxVerdict {
    /// Intact and new: deliver to the protocol layer and ack.
    Deliver,
    /// Intact but already seen (duplicate or late retransmission):
    /// re-ack and otherwise ignore.
    Duplicate,
    /// Checksum mismatch: nack, never deliver.
    Corrupt,
}

/// Receiver-side integrity + dedup state for one directed link.
#[derive(Debug, Default)]
pub struct LinkRx {
    seen: HashSet<u64>,
}

impl LinkRx {
    /// A fresh receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a data envelope: verify the checksum, then dedup by
    /// sequence number. Verification comes first so *every* corrupt
    /// arrival is detected and counted — including a corrupted
    /// retransmission of a sequence that already delivered, which
    /// dedup-first would silently discard as a duplicate. Corrupt
    /// envelopes are *not* marked seen: the clean retransmission must
    /// still deliver.
    pub fn accept(&mut self, env: &Envelope) -> RxVerdict {
        if !env.verify() {
            return RxVerdict::Corrupt;
        }
        if self.seen.contains(&env.seq) {
            return RxVerdict::Duplicate;
        }
        self.seen.insert(env.seq);
        RxVerdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_chaos::Wire;

    fn raw(v: Vec<f32>) -> Option<Arc<Payload>> {
        Some(Arc::new(Payload::Raw(v)))
    }

    #[test]
    fn sealed_envelopes_verify() {
        let e = Envelope::data(1, 7, TaskId(3), raw(vec![1.0, -2.5, 0.0]));
        assert!(e.verify());
        let c = Envelope::control(0, Body::Ack { seq: 7 });
        assert!(c.verify());
    }

    #[test]
    fn any_single_payload_bitflip_is_detected() {
        let e = Envelope::data(0, 1, TaskId(9), raw(vec![0.5, 1.5, -3.25, 8.0]));
        for bit in 0..e.payload_bits() {
            let mut m = e.clone();
            m.flip_bit(bit);
            assert!(!m.verify(), "flip of payload bit {bit} went undetected");
        }
        let e = Envelope::data(
            0,
            2,
            TaskId(9),
            Some(Arc::new(Payload::Compressed(vec![
                0xAB, 0x00, 0xFF, 0x17, 0x80,
            ]))),
        );
        for bit in 0..e.payload_bits() {
            let mut m = e.clone();
            m.flip_bit(bit);
            assert!(!m.verify(), "flip of compressed bit {bit} went undetected");
        }
    }

    #[test]
    fn attempt_is_outside_the_checksum() {
        let mut e = Envelope::data(0, 1, TaskId(2), raw(vec![1.0]));
        e.attempt = 5;
        assert!(e.verify(), "retransmissions must carry a valid digest");
    }

    #[test]
    fn rx_dedups_but_never_delivers_corrupt() {
        let mut rx = LinkRx::new();
        let e = Envelope::data(0, 0, TaskId(1), raw(vec![2.0]));
        assert_eq!(rx.accept(&e), RxVerdict::Deliver);
        assert_eq!(rx.accept(&e), RxVerdict::Duplicate);
        let mut bad = Envelope::data(0, 1, TaskId(2), raw(vec![3.0]));
        bad.flip_bit(7);
        assert_eq!(rx.accept(&bad), RxVerdict::Corrupt);
        // The clean retransmission of seq 1 still delivers.
        let good = Envelope::data(0, 1, TaskId(2), raw(vec![3.0]));
        assert_eq!(rx.accept(&good), RxVerdict::Deliver);
    }

    #[test]
    fn tx_retransmits_with_backoff_until_dead() {
        let base = Duration::from_millis(5);
        let mut tx = LinkTx::new(2, base, Duration::from_millis(100));
        let now = Instant::now();
        let e = tx.prepare(0, TaskId(4), raw(vec![1.0]), now);
        assert_eq!(e.seq, 0);
        assert_eq!(e.attempt, 0);
        assert!(!tx.idle());
        // Before the timer: nothing due.
        assert!(tx.due(now).unwrap().is_empty());
        // First expiry: attempt 1.
        let r = tx.due(now + base).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].attempt, 1);
        // Second expiry (backoff doubled): attempt 2 = the budget.
        let r = tx.due(now + base * 4).unwrap();
        assert_eq!(r[0].attempt, 2);
        // Third expiry exceeds the budget: dead link, naming the task.
        let dead = tx.due(now + base * 20).unwrap_err();
        assert_eq!(dead.task, Some(TaskId(4)));
        assert_eq!(dead.attempts, 3);
    }

    #[test]
    fn ack_retires_and_nack_fast_retransmits() {
        let mut tx = LinkTx::new(3, Duration::from_millis(5), Duration::from_millis(100));
        let now = Instant::now();
        let a = tx.prepare(1, TaskId(10), None, now);
        let b = tx.prepare(1, TaskId(11), raw(vec![4.0]), now);
        assert_eq!((a.seq, b.seq), (0, 1));
        assert!(tx.on_ack(0));
        assert!(!tx.on_ack(0), "double-ack must be inert");
        let r = tx.on_nack(1, now).unwrap().expect("nack retransmits");
        assert_eq!(r.attempt, 1);
        assert!(r.verify(), "retransmission must still verify");
        assert!(tx.on_nack(99, now).unwrap().is_none(), "unknown seq");
        assert!(tx.on_ack(1));
        assert!(tx.idle());
    }

    #[test]
    fn nacks_exhaust_the_budget_too() {
        let mut tx = LinkTx::new(1, Duration::from_millis(5), Duration::from_millis(100));
        let now = Instant::now();
        tx.prepare(0, TaskId(5), raw(vec![1.0]), now);
        assert!(tx.on_nack(0, now).unwrap().is_some());
        let dead = tx.on_nack(0, now).unwrap_err();
        assert_eq!(dead.seq, 0);
        assert_eq!(dead.task, Some(TaskId(5)));
    }

    #[test]
    fn skipped_payload_checksums_and_carries_no_bits() {
        let e = Envelope::data(2, 3, TaskId(8), Some(Arc::new(Payload::Skipped)));
        assert!(e.verify());
        assert_eq!(e.payload_bits(), 0);
        // Distinct from an empty payload.
        let none = Envelope::data(2, 3, TaskId(8), None);
        assert_ne!(e.checksum, none.checksum);
    }
}

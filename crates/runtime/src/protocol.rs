//! The fault-tolerant wire protocol for CaSync-RT.
//!
//! The fast path trusts its `mpsc` fabric the way the paper trusts
//! NCCL: messages arrive, once, intact. This module is what the
//! engine speaks when that trust is revoked (`run_chaos`): every
//! inter-node message becomes a sequence-numbered, checksummed
//! [`Envelope`]; receivers verify and deduplicate ([`LinkRx`]),
//! acknowledge good data, and nack corrupt data; senders keep
//! unacknowledged envelopes in a retransmission buffer with
//! exponential backoff and a bounded retry budget ([`LinkTx`]).
//!
//! The checksum covers everything delivery-relevant — source,
//! sequence number, task, payload bytes — but *not* the attempt
//! counter, so a retransmission carries the original digest and the
//! receiver cannot be confused by which attempt got through.

use crate::engine::Payload;
use hipress_core::graph::TaskId;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What an envelope carries.
#[derive(Debug, Clone)]
pub enum Body {
    /// A remote task completed; for `Send` tasks the payload rides
    /// along (the message *is* the transfer).
    Data {
        /// The completed task.
        task: TaskId,
        /// The payload, for `Send` completions.
        payload: Option<Arc<Payload>>,
    },
    /// Data `seq` arrived intact; the sender may drop it from its
    /// retransmission buffer.
    Ack {
        /// The acknowledged data sequence number.
        seq: u64,
    },
    /// Data `seq` arrived corrupt; the sender should retransmit now.
    Nack {
        /// The rejected data sequence number.
        seq: u64,
    },
    /// A peer hit an error; unwind. (Control-plane: never injected
    /// with faults, so an abort always gets through.)
    Abort,
    /// Every node has finished and drained its links; lingering peers
    /// may exit now instead of on their next poll. (Control-plane,
    /// like [`Body::Abort`]: purely a wake-up, carries no state.)
    Done,
    /// Periodic liveness probe. A node that is alive but busy (or
    /// simply has nothing to send) keeps pinging; a stalled or
    /// crashed node cannot, which is exactly the distinction the
    /// straggler detector needs — silence then means *stuck*, not
    /// *slow*. Control-plane: the fault model stalls nodes, not
    /// probes.
    Ping,
}

/// One message on the fault-tolerant fabric.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The sending node.
    pub src: usize,
    /// Per-link sequence number (data envelopes; 0 for control).
    pub seq: u64,
    /// Which attempt this is (0 = first transmission). Excluded from
    /// the checksum; fault injection uses it for its decision hash.
    pub attempt: u32,
    /// The message itself.
    pub body: Body,
    /// FNV-1a digest of `src`, `seq`, and the body content.
    pub checksum: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01B3;

/// FNV-1a folded a whole 64-bit word at a time (not per byte): one
/// xor-multiply per 8 payload bytes keeps checksumming multi-megabyte
/// raw gradients off the critical path. Single-bit flips anywhere in
/// a word still change the digest — the multiply diffuses them.
fn fnv(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

impl Envelope {
    /// Builds a sealed data envelope for `task` (attempt 0).
    pub fn data(src: usize, seq: u64, task: TaskId, payload: Option<Arc<Payload>>) -> Self {
        let mut e = Self {
            src,
            seq,
            attempt: 0,
            body: Body::Data { task, payload },
            checksum: 0,
        };
        e.checksum = e.digest();
        e
    }

    /// Builds a sealed control envelope (ack/nack/abort).
    pub fn control(src: usize, body: Body) -> Self {
        let mut e = Self {
            src,
            seq: 0,
            attempt: 0,
            body,
            checksum: 0,
        };
        e.checksum = e.digest();
        e
    }

    /// The checksum the envelope *should* carry: an FNV-1a fold over
    /// `src`, `seq`, a body tag, and the body's content (payload
    /// words included bit-exactly). The attempt counter is excluded —
    /// retransmissions carry the original digest.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv(h, self.src as u64);
        h = fnv(h, self.seq);
        match &self.body {
            Body::Data { task, payload } => {
                h = fnv(h, 1);
                h = fnv(h, u64::from(task.0));
                match payload.as_deref() {
                    None => h = fnv(h, 0),
                    Some(Payload::Raw(v)) => {
                        h = fnv(h, 1);
                        h = fnv(h, v.len() as u64);
                        for x in v {
                            h = fnv(h, u64::from(x.to_bits()));
                        }
                    }
                    Some(Payload::Compressed(b)) => {
                        h = fnv(h, 2);
                        h = fnv(h, b.len() as u64);
                        for chunk in b.chunks(8) {
                            let mut word = [0u8; 8];
                            word[..chunk.len()].copy_from_slice(chunk);
                            h = fnv(h, u64::from_le_bytes(word));
                        }
                    }
                    Some(Payload::Skipped) => h = fnv(h, 3),
                }
            }
            Body::Ack { seq } => {
                h = fnv(h, 2);
                h = fnv(h, *seq);
            }
            Body::Nack { seq } => {
                h = fnv(h, 3);
                h = fnv(h, *seq);
            }
            Body::Abort => h = fnv(h, 4),
            Body::Done => h = fnv(h, 5),
            Body::Ping => h = fnv(h, 6),
        }
        h
    }

    /// True when the carried checksum matches the content.
    pub fn verify(&self) -> bool {
        self.checksum == self.digest()
    }

    /// The task a data envelope announces, if it is one.
    pub fn data_task(&self) -> Option<TaskId> {
        match &self.body {
            Body::Data { task, .. } => Some(*task),
            _ => None,
        }
    }
}

impl hipress_chaos::Wire for Envelope {
    /// Only data payloads are corruptible: flipping gradient bits is
    /// the fault the checksum must catch. Control messages are
    /// loss-faulted but never mangled.
    fn payload_bits(&self) -> u64 {
        match &self.body {
            Body::Data {
                payload: Some(p), ..
            } => match p.as_ref() {
                Payload::Raw(v) => (v.len() * 32) as u64,
                Payload::Compressed(b) => (b.len() * 8) as u64,
                Payload::Skipped => 0,
            },
            _ => 0,
        }
    }

    fn flip_bit(&mut self, bit: u64) {
        if let Body::Data {
            payload: Some(p), ..
        } = &mut self.body
        {
            match Arc::make_mut(p) {
                Payload::Raw(v) => {
                    let i = (bit / 32) as usize;
                    v[i] = f32::from_bits(v[i].to_bits() ^ (1 << (bit % 32)));
                }
                Payload::Compressed(b) => {
                    b[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
                Payload::Skipped => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pure transition functions.
//
// Every protocol *decision* — when to retransmit, when to give up,
// how to classify an arrival, when a peer counts as a straggler, how
// a degraded merge rescales — lives here as a side-effect-free
// function of its inputs. The runtime state machines ([`LinkTx`],
// [`LinkRx`], the FT worker, the engine's degraded merge) delegate to
// these, and `hipress-verify`'s bounded model checker drives the very
// same functions, so there is exactly one implementation of the
// protocol logic to trust.
// ---------------------------------------------------------------------------

/// EWMA smoothing factor for peer inter-arrival gaps: the straggler
/// detector weighs the newest gap at 20%.
pub const EWMA_ALPHA: f64 = 0.2;

/// The retransmission timeout for attempt `attempt`:
/// `base × 2^attempt`, capped at `max` (exponent itself clamped so
/// the shift cannot overflow).
pub fn rto(base: Duration, max: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(16)).min(max)
}

/// What a sender does about an in-flight envelope that needs another
/// transmission (timer expiry or nack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Still within budget: retransmit with backed-off timer.
    Retransmit,
    /// The bumped attempt exceeds the retry budget: the link is dead.
    Dead,
}

/// The bounded-retry rule: `attempt` is the transmission count
/// *after* the bump (1 = first retransmission). The link survives
/// while `attempt <= retry_budget`.
pub fn retry_decision(attempt: u32, retry_budget: u32) -> RetryDecision {
    if attempt > retry_budget {
        RetryDecision::Dead
    } else {
        RetryDecision::Retransmit
    }
}

/// The receiver classification rule: verify *then* dedup. Integrity
/// comes first so every corrupt arrival is detected — including a
/// corrupted retransmission of an already-delivered sequence, which
/// dedup-first would silently swallow as a duplicate.
pub fn classify(intact: bool, already_seen: bool) -> RxVerdict {
    if !intact {
        RxVerdict::Corrupt
    } else if already_seen {
        RxVerdict::Duplicate
    } else {
        RxVerdict::Deliver
    }
}

/// One EWMA step over a peer's inter-arrival gap (nanoseconds).
pub fn ewma_update(prev_ns: f64, gap_ns: f64) -> f64 {
    EWMA_ALPHA * gap_ns + (1.0 - EWMA_ALPHA) * prev_ns
}

/// The straggler silence threshold: a configured floor, or `factor`
/// times the observed EWMA gap, whichever is larger.
pub fn straggler_threshold_ns(floor_ns: u64, factor: f64, ewma_ns: f64) -> u64 {
    floor_ns.max((factor * ewma_ns) as u64)
}

/// True when a liveness probe is owed: `since_last` silence has
/// reached the heartbeat period.
pub fn heartbeat_due(since_last: Duration, period: Duration) -> bool {
    since_last >= period
}

/// The Partial-degrade rescale factor: a merge that gathered
/// `merged` remote contributions (plus the local one) instead of the
/// full `nodes` stands in for the missing peers by scaling up.
pub fn degrade_rescale(nodes: usize, merged: usize) -> f32 {
    nodes as f32 / (1 + merged) as f32
}

/// The whole-rank form of [`degrade_rescale`]: an aggregate standing
/// on the survivors of `nodes` members after `lost` of them died.
/// Equivalent to per-cell Partial degradation with every lost rank's
/// contribution skipped — `evict_rescale(n, 1) ==
/// degrade_rescale(n, n - 2)` — but stated over membership, which is
/// what the elastic drain boundary reasons in. `lost` must be less
/// than `nodes`.
pub fn evict_rescale(nodes: usize, lost: usize) -> f32 {
    debug_assert!(lost < nodes);
    nodes as f32 / (nodes - lost) as f32
}

// ---------------------------------------------------------------------------
// Elastic-membership transition rules.
//
// The same discipline as above: every *decision* the epoch state
// machine makes — which rendezvous frames to honour, where to drain
// to after a rank loss, how a member set maps onto mesh slots — is a
// pure function here, driven both by the elastic coordinator and by
// `hipress-verify`'s epoch-transition explorer.
// ---------------------------------------------------------------------------

/// The stale-epoch safety rule: a rendezvous-plane frame stamped with
/// `frame_epoch` is acted on only if it matches the current epoch.
/// A frame from a past epoch is a straggler from a membership that no
/// longer exists (acting on it could double-apply a handed-off
/// chunk); a frame from a future epoch cannot exist unless the
/// coordinator is lying about the bump order.
pub fn epoch_accepts(current: u64, frame_epoch: u64) -> bool {
    frame_epoch == current
}

/// The drain boundary after a rank loss: each survivor reports how
/// many segment iterations it had fully retired when the death
/// surfaced, and the segment's result stands at the *minimum*. Every
/// survivor has fully retired that iteration (so its flows are
/// committed everywhere), and no survivor's state past it is kept (so
/// nothing from a half-dead iteration — which may contain the
/// victim's last contributions — can be double-applied after the
/// re-plan).
pub fn drain_boundary(completed: &[u32]) -> u32 {
    completed.iter().copied().min().unwrap_or(0)
}

/// The dense mesh slot a global rank occupies in an epoch whose
/// (ascending) member list is `members` — or `None` if the rank is
/// not a member. Ownership of every chunk follows from the slot via
/// the strategy graph, so redistribution after a bump is a pure
/// function of the member set: every member computes the same mesh
/// without negotiation, and a survivor-set continuation is
/// bit-identical to a fresh run over the same set.
pub fn member_slot(members: &[u32], rank: u32) -> Option<u32> {
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
    members.binary_search(&rank).ok().map(|i| i as u32)
}

/// Why a sender-side link gave up: the peer never acknowledged
/// `seq` (announcing `task`) within the retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadLink {
    /// The unacknowledged sequence number.
    pub seq: u64,
    /// The task that data envelope announced.
    pub task: Option<TaskId>,
    /// How many transmissions were attempted (1 + retries).
    pub attempts: u32,
}

/// One in-flight (unacknowledged) data envelope.
#[derive(Debug, Clone)]
struct Inflight {
    env: Envelope,
    due: Instant,
}

/// Sender-side reliability state for one directed link.
///
/// Every data envelope enters the in-flight buffer with a
/// retransmission timer; [`LinkTx::due`] returns envelopes whose
/// timer expired (with exponentially backed-off next deadlines), and
/// [`LinkTx::on_ack`] / [`LinkTx::on_nack`] retire or fast-path
/// retransmit them. When one envelope exceeds the retry budget the
/// link is declared dead.
///
/// `Clone` so the model checker can fork a link mid-protocol and
/// explore both branches of a nondeterministic choice.
#[derive(Debug, Clone)]
pub struct LinkTx {
    next_seq: u64,
    inflight: BTreeMap<u64, Inflight>,
    retry_budget: u32,
    base_backoff: Duration,
    max_backoff: Duration,
}

impl LinkTx {
    /// A fresh link with the given retry budget and backoff range.
    pub fn new(retry_budget: u32, base_backoff: Duration, max_backoff: Duration) -> Self {
        Self {
            next_seq: 0,
            inflight: BTreeMap::new(),
            retry_budget,
            base_backoff,
            max_backoff,
        }
    }

    /// Assigns the next sequence number to a data envelope for
    /// `task`, arms its retransmission timer, and returns the sealed
    /// envelope (attempt 0) ready to send.
    pub fn prepare(
        &mut self,
        src: usize,
        task: TaskId,
        payload: Option<Arc<Payload>>,
        now: Instant,
    ) -> Envelope {
        let seq = self.next_seq;
        self.next_seq += 1;
        let env = Envelope::data(src, seq, task, payload);
        self.inflight.insert(
            seq,
            Inflight {
                env: env.clone(),
                due: now + rto(self.base_backoff, self.max_backoff, 0),
            },
        );
        env
    }

    /// Retires an acknowledged envelope. Returns false for unknown
    /// (already-retired or forged) sequence numbers.
    pub fn on_ack(&mut self, seq: u64) -> bool {
        self.inflight.remove(&seq).is_some()
    }

    /// Handles a nack: bumps the attempt, re-arms the timer, and
    /// returns the envelope to retransmit immediately. `None` when
    /// the envelope is no longer in flight, or `Err` when the nack
    /// pushed it past the retry budget.
    pub fn on_nack(&mut self, seq: u64, now: Instant) -> Result<Option<Envelope>, DeadLink> {
        let (base, max) = (self.base_backoff, self.max_backoff);
        let Some(inf) = self.inflight.get_mut(&seq) else {
            return Ok(None);
        };
        inf.env.attempt += 1;
        if retry_decision(inf.env.attempt, self.retry_budget) == RetryDecision::Dead {
            return Err(DeadLink {
                seq,
                task: inf.env.data_task(),
                attempts: inf.env.attempt,
            });
        }
        inf.due = now + rto(base, max, inf.env.attempt);
        Ok(Some(inf.env.clone()))
    }

    /// Collects every envelope whose retransmission timer expired,
    /// bumping attempts and re-arming timers. `Err` when any envelope
    /// exceeds the retry budget — the link is dead.
    pub fn due(&mut self, now: Instant) -> Result<Vec<Envelope>, DeadLink> {
        let (base, max) = (self.base_backoff, self.max_backoff);
        let mut out = Vec::new();
        for (seq, inf) in self.inflight.iter_mut() {
            if inf.due > now {
                continue;
            }
            inf.env.attempt += 1;
            if retry_decision(inf.env.attempt, self.retry_budget) == RetryDecision::Dead {
                return Err(DeadLink {
                    seq: *seq,
                    task: inf.env.data_task(),
                    attempts: inf.env.attempt,
                });
            }
            inf.due = now + rto(base, max, inf.env.attempt);
            out.push(inf.env.clone());
        }
        Ok(out)
    }

    /// True when nothing is awaiting acknowledgement.
    pub fn idle(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Earliest retransmission deadline among in-flight envelopes, if
    /// any — lets the owner sleep until a timer can actually fire
    /// instead of polling on a fixed tick.
    pub fn next_due(&self) -> Option<Instant> {
        self.inflight.values().map(|inf| inf.due).min()
    }

    /// Drops all in-flight state (the peer is known to be gone and
    /// no longer needs anything from us).
    pub fn peer_gone(&mut self) {
        self.inflight.clear();
    }

    /// `(seq, attempt)` for every in-flight envelope, ascending seq.
    /// The model checker fingerprints link state through this (timer
    /// deadlines deliberately excluded — the checker is untimed).
    pub fn inflight_meta(&self) -> Vec<(u64, u32)> {
        self.inflight
            .iter()
            .map(|(seq, inf)| (*seq, inf.env.attempt))
            .collect()
    }

    /// The configured retry budget (transmissions allowed past the
    /// first before the link is declared dead).
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// The sequence number the next [`LinkTx::prepare`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// The receiver's verdict on one data envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxVerdict {
    /// Intact and new: deliver to the protocol layer and ack.
    Deliver,
    /// Intact but already seen (duplicate or late retransmission):
    /// re-ack and otherwise ignore.
    Duplicate,
    /// Checksum mismatch: nack, never deliver.
    Corrupt,
}

/// Receiver-side integrity + dedup state for one directed link.
#[derive(Debug, Default, Clone)]
pub struct LinkRx {
    seen: HashSet<u64>,
}

impl LinkRx {
    /// A fresh receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a data envelope by delegating to the pure
    /// [`classify`] rule (verify the checksum, *then* dedup by
    /// sequence number), and marks delivered sequences seen. Corrupt
    /// envelopes are *not* marked seen: the clean retransmission must
    /// still deliver.
    pub fn accept(&mut self, env: &Envelope) -> RxVerdict {
        let verdict = classify(env.verify(), self.seen.contains(&env.seq));
        if verdict == RxVerdict::Deliver {
            self.seen.insert(env.seq);
        }
        verdict
    }

    /// Every sequence number delivered so far, ascending — the model
    /// checker fingerprints receiver state through this.
    pub fn seen_seqs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.seen.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_chaos::Wire;

    fn raw(v: Vec<f32>) -> Option<Arc<Payload>> {
        Some(Arc::new(Payload::Raw(v)))
    }

    #[test]
    fn sealed_envelopes_verify() {
        let e = Envelope::data(1, 7, TaskId(3), raw(vec![1.0, -2.5, 0.0]));
        assert!(e.verify());
        let c = Envelope::control(0, Body::Ack { seq: 7 });
        assert!(c.verify());
    }

    #[test]
    fn any_single_payload_bitflip_is_detected() {
        let e = Envelope::data(0, 1, TaskId(9), raw(vec![0.5, 1.5, -3.25, 8.0]));
        for bit in 0..e.payload_bits() {
            let mut m = e.clone();
            m.flip_bit(bit);
            assert!(!m.verify(), "flip of payload bit {bit} went undetected");
        }
        let e = Envelope::data(
            0,
            2,
            TaskId(9),
            Some(Arc::new(Payload::Compressed(vec![
                0xAB, 0x00, 0xFF, 0x17, 0x80,
            ]))),
        );
        for bit in 0..e.payload_bits() {
            let mut m = e.clone();
            m.flip_bit(bit);
            assert!(!m.verify(), "flip of compressed bit {bit} went undetected");
        }
    }

    #[test]
    fn attempt_is_outside_the_checksum() {
        let mut e = Envelope::data(0, 1, TaskId(2), raw(vec![1.0]));
        e.attempt = 5;
        assert!(e.verify(), "retransmissions must carry a valid digest");
    }

    #[test]
    fn rx_dedups_but_never_delivers_corrupt() {
        let mut rx = LinkRx::new();
        let e = Envelope::data(0, 0, TaskId(1), raw(vec![2.0]));
        assert_eq!(rx.accept(&e), RxVerdict::Deliver);
        assert_eq!(rx.accept(&e), RxVerdict::Duplicate);
        let mut bad = Envelope::data(0, 1, TaskId(2), raw(vec![3.0]));
        bad.flip_bit(7);
        assert_eq!(rx.accept(&bad), RxVerdict::Corrupt);
        // The clean retransmission of seq 1 still delivers.
        let good = Envelope::data(0, 1, TaskId(2), raw(vec![3.0]));
        assert_eq!(rx.accept(&good), RxVerdict::Deliver);
    }

    #[test]
    fn tx_retransmits_with_backoff_until_dead() {
        let base = Duration::from_millis(5);
        let mut tx = LinkTx::new(2, base, Duration::from_millis(100));
        let now = Instant::now();
        let e = tx.prepare(0, TaskId(4), raw(vec![1.0]), now);
        assert_eq!(e.seq, 0);
        assert_eq!(e.attempt, 0);
        assert!(!tx.idle());
        // Before the timer: nothing due.
        assert!(tx.due(now).unwrap().is_empty());
        // First expiry: attempt 1.
        let r = tx.due(now + base).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].attempt, 1);
        // Second expiry (backoff doubled): attempt 2 = the budget.
        let r = tx.due(now + base * 4).unwrap();
        assert_eq!(r[0].attempt, 2);
        // Third expiry exceeds the budget: dead link, naming the task.
        let dead = tx.due(now + base * 20).unwrap_err();
        assert_eq!(dead.task, Some(TaskId(4)));
        assert_eq!(dead.attempts, 3);
    }

    #[test]
    fn ack_retires_and_nack_fast_retransmits() {
        let mut tx = LinkTx::new(3, Duration::from_millis(5), Duration::from_millis(100));
        let now = Instant::now();
        let a = tx.prepare(1, TaskId(10), None, now);
        let b = tx.prepare(1, TaskId(11), raw(vec![4.0]), now);
        assert_eq!((a.seq, b.seq), (0, 1));
        assert!(tx.on_ack(0));
        assert!(!tx.on_ack(0), "double-ack must be inert");
        let r = tx.on_nack(1, now).unwrap().expect("nack retransmits");
        assert_eq!(r.attempt, 1);
        assert!(r.verify(), "retransmission must still verify");
        assert!(tx.on_nack(99, now).unwrap().is_none(), "unknown seq");
        assert!(tx.on_ack(1));
        assert!(tx.idle());
    }

    #[test]
    fn nacks_exhaust_the_budget_too() {
        let mut tx = LinkTx::new(1, Duration::from_millis(5), Duration::from_millis(100));
        let now = Instant::now();
        tx.prepare(0, TaskId(5), raw(vec![1.0]), now);
        assert!(tx.on_nack(0, now).unwrap().is_some());
        let dead = tx.on_nack(0, now).unwrap_err();
        assert_eq!(dead.seq, 0);
        assert_eq!(dead.task, Some(TaskId(5)));
    }

    /// The runtime path must *provably* delegate to the pure
    /// transition functions: sweep the sender through every attempt
    /// and assert the observable behaviour (timer deadlines, the
    /// exact attempt at which the link dies) matches what the pure
    /// `rto`/`retry_decision` rules predict for the same inputs.
    #[test]
    fn link_tx_delegates_to_pure_rto_and_retry_decision() {
        for budget in [0u32, 1, 2, 5, 8] {
            let base = Duration::from_millis(3);
            let max = Duration::from_millis(200);
            let mut tx = LinkTx::new(budget, base, max);
            let now = Instant::now();
            tx.prepare(0, TaskId(1), raw(vec![1.0]), now);
            let mut fired = now;
            let mut attempt = 0u32;
            loop {
                // The armed deadline is exactly the pure rule's rto
                // for the current attempt.
                let due = tx.next_due().expect("envelope in flight");
                assert_eq!(due, fired + rto(base, max, attempt));
                attempt += 1;
                match (retry_decision(attempt, budget), tx.due(due)) {
                    (RetryDecision::Retransmit, Ok(r)) => {
                        assert_eq!(r.len(), 1);
                        assert_eq!(r[0].attempt, attempt);
                        fired = due;
                    }
                    (RetryDecision::Dead, Err(dead)) => {
                        assert_eq!(dead.attempts, attempt);
                        break;
                    }
                    (want, got) => {
                        panic!("budget {budget} attempt {attempt}: pure rule says {want:?}, runtime did {got:?}")
                    }
                }
            }
        }
        // The rto curve itself: doubling, then capped; shift-safe at
        // absurd attempts.
        let base = Duration::from_millis(5);
        let max = Duration::from_millis(60);
        assert_eq!(rto(base, max, 0), Duration::from_millis(5));
        assert_eq!(rto(base, max, 1), Duration::from_millis(10));
        assert_eq!(rto(base, max, 3), Duration::from_millis(40));
        assert_eq!(rto(base, max, 4), max);
        assert_eq!(rto(base, max, 1000), max);
    }

    /// [`LinkRx::accept`] must agree with the pure [`classify`] rule
    /// on every (intact, seen) combination, in every order.
    #[test]
    fn link_rx_delegates_to_pure_classify() {
        let mut rx = LinkRx::new();
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mk = |seq: u64, corrupt: bool| {
            let mut e = Envelope::data(0, seq, TaskId(seq as u32), raw(vec![seq as f32 + 0.5]));
            if corrupt {
                e.flip_bit(3);
            }
            e
        };
        // Arrivals chosen to hit: fresh, duplicate, corrupt-fresh,
        // corrupt-of-seen, clean retransmit after corrupt.
        for (seq, corrupt) in [
            (0, false),
            (0, false),
            (1, true),
            (1, false),
            (1, true),
            (2, true),
            (2, false),
            (0, true),
        ] {
            let env = mk(seq, corrupt);
            let want = classify(env.verify(), seen.contains(&seq));
            assert_eq!(rx.accept(&env), want, "seq {seq} corrupt {corrupt}");
            if want == RxVerdict::Deliver {
                seen.insert(seq);
            }
            let mut mirror: Vec<u64> = seen.iter().copied().collect();
            mirror.sort_unstable();
            assert_eq!(rx.seen_seqs(), mirror);
        }
    }

    /// Pin the pure FT decision rules the worker and engine delegate
    /// to (their delegation is by direct call — see `ft.rs` /
    /// `engine.rs` — so pinning the functions pins the runtime).
    #[test]
    fn pure_ft_decisions_are_pinned() {
        // EWMA: 0.2 × new + 0.8 × old.
        assert_eq!(ewma_update(1000.0, 2000.0), 1200.0);
        assert_eq!(ewma_update(0.0, 500.0), 100.0);
        // Straggler threshold: floor wins until factor × ewma passes it.
        assert_eq!(straggler_threshold_ns(1_000, 8.0, 50.0), 1_000);
        assert_eq!(straggler_threshold_ns(1_000, 8.0, 200.0), 1_600);
        // Heartbeat: due exactly at the period boundary.
        let period = Duration::from_millis(50);
        assert!(!heartbeat_due(Duration::from_millis(49), period));
        assert!(heartbeat_due(period, period));
        // Degrade rescale: 4 nodes, merged 2 remote + 1 local = 3
        // contributions standing in for 4.
        let f = degrade_rescale(4, 2);
        assert!((f - 4.0 / 3.0).abs() < 1e-6);
        assert_eq!(degrade_rescale(3, 2), 1.0, "no holes, no scaling");
    }

    /// Whole-rank loss is the membership-level statement of Partial
    /// degradation. A rank that dies *between* encode and aggregate
    /// leaves a mixed picture — cells it reached before dying merged
    /// all `n - 1` remote contributions, cells it never reached
    /// merged `n - 2` — and the per-cell rule must rescale only the
    /// cells with the hole, by exactly the survivor ratio.
    #[test]
    fn whole_rank_loss_reduces_to_per_cell_partial() {
        for n in 2..=8usize {
            // A cell the dying rank reached: complete, no scaling.
            assert_eq!(degrade_rescale(n, n - 1), 1.0, "n = {n}");
            // A cell it never reached: one hole, survivor ratio.
            let per_cell = degrade_rescale(n, n - 2);
            let whole_rank = evict_rescale(n, 1);
            assert!(
                (per_cell - whole_rank).abs() < 1e-6,
                "n = {n}: per-cell {per_cell} vs whole-rank {whole_rank}"
            );
            assert!((whole_rank - n as f32 / (n - 1) as f32).abs() < 1e-6);
        }
        // Multi-rank loss: the survivors' mean stands in for every
        // hole at once.
        assert!((evict_rescale(4, 2) - 2.0).abs() < 1e-6);
        assert_eq!(evict_rescale(5, 0), 1.0, "no loss, no scaling");
    }

    #[test]
    fn membership_transition_rules_are_pinned() {
        // Stale-epoch rule: only the current epoch is honoured.
        assert!(epoch_accepts(3, 3));
        assert!(!epoch_accepts(3, 2), "straggler from a dead membership");
        assert!(!epoch_accepts(3, 4), "bump order violation");

        // Drain boundary: the minimum fully-retired count wins, so no
        // survivor carries state past the handoff point.
        assert_eq!(drain_boundary(&[5, 3, 7]), 3);
        assert_eq!(drain_boundary(&[4, 4, 4]), 4);
        assert_eq!(drain_boundary(&[0, 9]), 0);
        assert_eq!(drain_boundary(&[]), 0, "no survivors reporting yet");

        // Slot assignment is dense, order-preserving, and a pure
        // function of the member set.
        let members = [0, 2, 5];
        assert_eq!(member_slot(&members, 0), Some(0));
        assert_eq!(member_slot(&members, 2), Some(1));
        assert_eq!(member_slot(&members, 5), Some(2));
        assert_eq!(member_slot(&members, 1), None, "evicted rank has no slot");
        assert_eq!(member_slot(&[], 0), None);
    }

    #[test]
    fn skipped_payload_checksums_and_carries_no_bits() {
        let e = Envelope::data(2, 3, TaskId(8), Some(Arc::new(Payload::Skipped)));
        assert!(e.verify());
        assert_eq!(e.payload_bits(), 0);
        // Distinct from an empty payload.
        let none = Envelope::data(2, 3, TaskId(8), None);
        assert_ne!(e.checksum, none.checksum);
    }
}

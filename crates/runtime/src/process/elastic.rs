//! Elastic membership for multi-process CaSync-RT: survive whole-rank
//! loss by re-planning over the survivors, and re-admit restarted
//! workers mid-training.
//!
//! An elastic run is a sequence of **epoch segments**. Each segment is
//! a complete pipelined run over the current member set: every member
//! re-announces on the control channel ([`Ctl::Hello`] with a fresh
//! mesh port), takes a [`Job`] stamped with the segment's epoch and
//! base iteration, rebuilds the TCP mesh from scratch over the
//! segment's dense slot numbering, and drives [`crate::pipeline`] for
//! the segment's share of the run. Workers keep **one control stream
//! and one clock epoch** for their whole lifetime, so clock
//! synchronization stays valid across every segment.
//!
//! When a rank dies mid-segment, survivors report [`Ctl::Halted`]
//! with how many segment iterations they had fully retired; the
//! coordinator drains to the **minimum** of those counts (the drain
//! boundary — no survivor keeps state past it, so nothing from a
//! half-dead iteration can be double-applied), removes the victim,
//! bumps the epoch, and re-plans the rest of the run over the
//! survivors. Because the pipelined protocol is bit-deterministic in
//! (member set, gradients, seed), the survivor-set continuation is
//! **bit-identical to a from-scratch run over the same member set**
//! — the epoch boundary *is* the checkpoint, and it costs nothing to
//! write.
//!
//! A restarted worker dials the same rendezvous address and opens
//! with [`Msg::Join`]; the coordinator admits it only at an epoch
//! boundary, answers [`Msg::Welcome`] naming the epoch it joins, and
//! tells the incumbents with [`Msg::EpochBump`]. Each segment's mesh
//! is stamped with its epoch (the Hello frame's sequence field), so a
//! zombie segment's late dial can never splice into the rebuilt mesh.

use super::*;
use crate::protocol::drain_boundary;
use hipress_chaos::MembershipPlan;
use hipress_trace::TrackId;

/// How long the coordinator waits for a respawned joiner to dial in
/// at an epoch boundary.
const JOIN_DEADLINE: Duration = Duration::from_secs(10);

/// How one member's segment concluded, from the coordinator's side of
/// its control stream.
enum SegRes {
    /// The member retired every segment iteration and reported its
    /// updated chunks, keyed `(flow, part)`.
    Done {
        cells: HashMap<(u32, u32), Cell>,
        report: RuntimeReport,
        trace: Option<Trace>,
        metrics: Option<String>,
    },
    /// The member survived a peer's death: `completed` segment
    /// iterations fully retired, blaming segment slot `dead_slot`.
    Halt { completed: u32, dead_slot: u32 },
    /// The member's control stream closed without a report — it died.
    Lost,
    /// A non-elastic failure; the run must abort.
    Fail(Error),
}

/// Reads one member's control stream until it yields a segment result,
/// republishing interleaved live-progress frames into the hub.
fn collect_member(
    stream: &mut TcpStream,
    run_deadline: Duration,
    progress: Option<&hipress_obs::Telemetry>,
) -> SegRes {
    if let Err(e) = stream.set_read_timeout(Some(run_deadline)) {
        return SegRes::Fail(ctl_io(e));
    }
    loop {
        match read_ctl(stream) {
            Ok(Ctl::Progress { rec }) => {
                if let Some(t) = progress {
                    t.publish(rec);
                }
            }
            Ok(Ctl::Outcome {
                cells,
                report,
                trace,
                metrics,
                flight: _,
            }) => {
                return SegRes::Done {
                    cells: cells
                        .into_iter()
                        .map(|(f, p, v)| {
                            (
                                (f, p),
                                Cell {
                                    updated: Some(v),
                                    ..Cell::default()
                                },
                            )
                        })
                        .collect(),
                    report,
                    trace,
                    metrics,
                }
            }
            Ok(Ctl::Halted { completed, dead }) => {
                return SegRes::Halt {
                    completed,
                    dead_slot: dead,
                }
            }
            Ok(Ctl::Failed { error, flight: _ }) => return SegRes::Fail(error),
            Ok(_) => return SegRes::Fail(ctl_io("worker sent an unexpected message")),
            // EOF or timeout without a report: the worker died.
            Err(_) => return SegRes::Lost,
        }
    }
}

/// The coordinator's state for one elastic run: the control streams
/// and latest clock syncs of every live member, keyed by global rank.
struct Roster {
    streams: HashMap<u32, TcpStream>,
    syncs: HashMap<u32, ClockSync>,
    /// Ranks whose segment-opening `Hello` was already consumed (the
    /// initial rendezvous reads it to learn who dialed in); their
    /// mesh ports for the upcoming segment sit in `ports`.
    greeted: Vec<u32>,
    ports: HashMap<u32, u16>,
}

/// Accepts the initial full-membership rendezvous: every rank dials
/// in, says Hello, and answers a clock-probe burst.
fn accept_initial(
    listener: &TcpListener,
    nodes: usize,
    deadline: Duration,
    clock_epoch: Instant,
) -> Result<Roster> {
    listener.set_nonblocking(true).map_err(ctl_io)?;
    let hard_deadline = Instant::now() + deadline;
    let mut roster = Roster {
        streams: HashMap::new(),
        syncs: HashMap::new(),
        greeted: Vec::new(),
        ports: HashMap::new(),
    };
    while roster.streams.len() < nodes {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false).map_err(ctl_io)?;
                stream.set_nodelay(true).map_err(ctl_io)?;
                stream.set_read_timeout(Some(deadline)).map_err(ctl_io)?;
                let Ctl::Hello { rank, mesh_port } = read_ctl(&mut stream)? else {
                    return Err(ctl_io("worker spoke before saying Hello"));
                };
                if rank as usize >= nodes || roster.streams.contains_key(&rank) {
                    return Err(ctl_io(format!("bad or duplicate Hello from rank {rank}")));
                }
                let sync = probe_clock(&mut stream, clock_epoch)?;
                roster.syncs.insert(rank, sync);
                roster.ports.insert(rank, mesh_port);
                roster.greeted.push(rank);
                roster.streams.insert(rank, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= hard_deadline {
                    return Err(ctl_io(format!(
                        "rendezvous timed out with {} of {nodes} workers",
                        roster.streams.len()
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(ctl_io(e)),
        }
    }
    Ok(roster)
}

/// Accepts one respawned joiner at an epoch boundary: its connection
/// opens with [`Msg::Join`]; answer with [`Msg::Welcome`] naming the
/// epoch, handoff iteration, and member set it joins.
fn admit_joiner(
    listener: &TcpListener,
    expect_rank: u32,
    current_epoch: u64,
    welcome: &Msg,
    roster: &mut Roster,
) -> Result<()> {
    let hard_deadline = Instant::now() + JOIN_DEADLINE;
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false).map_err(ctl_io)?;
                stream.set_nodelay(true).map_err(ctl_io)?;
                stream
                    .set_read_timeout(Some(JOIN_DEADLINE))
                    .map_err(ctl_io)?;
                let Ctl::Member(Msg::Join { rank, epoch }) = read_ctl(&mut stream)? else {
                    return Err(ctl_io("joiner spoke before asking to Join"));
                };
                if rank != expect_rank {
                    return Err(ctl_io(format!(
                        "Join from rank {rank}, expected {expect_rank}"
                    )));
                }
                // The stale-epoch rule, rendezvous-plane edition: a
                // joiner claiming to have seen an epoch the run has
                // not reached is lying about the bump order.
                if epoch > current_epoch {
                    return Err(ctl_io(format!(
                        "Join from rank {rank} claims future epoch {epoch} (current {current_epoch})"
                    )));
                }
                write_ctl(&mut stream, &Ctl::Member(welcome.clone()))?;
                roster.streams.insert(rank, stream);
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= hard_deadline {
                    return Err(ctl_io(format!(
                        "rejoining rank {expect_rank} never dialed in"
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(ctl_io(e)),
        }
    }
}

/// Emits the membership-epoch bookkeeping every boundary shares: the
/// report record, the trace instants (the same `membership` category
/// [`RuntimeReport::from_trace`] rebuilds the records from), and the
/// telemetry hub's latched `MembershipChange` alert.
fn record_epoch(
    report: &mut RuntimeReport,
    tracer: Option<&Tracer>,
    mem_track: Option<TrackId>,
    progress: Option<&hipress_obs::Telemetry>,
    epoch: u64,
    from_iter: u32,
    members: &[u32],
    evicted: &[u32],
    changed_rank: u32,
) {
    report.membership.push(crate::report::EpochRecord {
        epoch,
        from_iter: u64::from(from_iter),
        members: members.to_vec(),
    });
    report.evicted.extend_from_slice(evicted);
    if let (Some(tr), Some(track)) = (tracer, mem_track) {
        let ts = tr.now_ns();
        for &r in evicted {
            tr.instant(track, "evict", "membership", ts, &[("rank", u64::from(r))]);
        }
        let mask = members
            .iter()
            .filter(|&&r| r < 64)
            .fold(0u64, |m, &r| m | (1 << r));
        tr.instant(
            track,
            "epoch",
            "membership",
            ts,
            &[
                ("epoch", epoch),
                ("from_iter", u64::from(from_iter)),
                ("members_mask", mask),
            ],
        );
    }
    if let Some(t) = progress {
        if epoch > 0 {
            t.bump_epoch(epoch, changed_rank, from_iter);
        }
    }
}

/// The elastic coordinator: runs `pcfg.iterations` total iterations
/// over a membership that shrinks when scripted crashes fire and
/// grows back when scripted rejoins come due, one epoch segment at a
/// time. `respawn` is invoked with a global rank when its rejoin
/// comes due; it must start a fresh worker that dials `listener` and
/// opens with [`Msg::Join`].
#[allow(clippy::too_many_arguments)]
fn coordinate_elastic(
    listener: &TcpListener,
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    worker_grads: &[Vec<Tensor>],
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    pconf: &ProcessConfig,
    plan: &MembershipPlan,
    respawn: &dyn Fn(u32) -> Result<()>,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    let nodes = worker_grads.len();
    let total = pcfg.iterations;
    let grad_lens: Vec<u32> = worker_grads[0].iter().map(|t| t.len() as u32).collect();
    plan.validate(nodes, total).map_err(Error::config)?;

    let clock_epoch = instruments
        .tracer
        .map(Tracer::epoch)
        .unwrap_or_else(Instant::now);
    let run_start_ns = instruments.tracer.map(Tracer::now_ns);
    let started = Instant::now();
    let mem_track = instruments.tracer.map(|t| t.thread_track("membership"));

    let mut members: Vec<u32> = (0..nodes as u32).collect();
    let mut epoch: u64 = 0;
    let mut from: u32 = 0;
    let mut pending_crashes: Vec<(u32, u32)> = plan.crashes.clone();
    // Rejoins in due order, each clamped so it still has a boundary
    // before the run ends.
    let mut pending_rejoins: Vec<(u32, u32)> = plan
        .rejoins
        .iter()
        .map(|&(r, due)| (r, due.min(total - 1)))
        .collect();
    pending_rejoins.sort_by_key(|&(_, due)| due);

    let mut report = RuntimeReport {
        nodes,
        iterations: u64::from(total),
        pipeline_window: u64::from(pcfg.window),
        per_node_busy_ns: vec![0; nodes],
        ..Default::default()
    };

    let mut roster = accept_initial(listener, nodes, pconf.connect_deadline(), clock_epoch)?;
    record_epoch(
        &mut report,
        instruments.tracer,
        mem_track,
        instruments.progress,
        0,
        0,
        &members,
        &[],
        0,
    );

    // Aborts the run: best-effort Shutdown to every live member so no
    // worker is left blocking on its post-segment control read.
    let shutdown_all = |roster: &mut Roster| {
        for stream in roster.streams.values_mut() {
            let _ = write_ctl(stream, &Ctl::Shutdown);
        }
    };

    loop {
        // ---- Plan this segment ------------------------------------
        // Run to the end unless a rejoin comes due first: admission
        // happens only at epoch boundaries, so the segment is cut
        // short to create one.
        let seg_end = pending_rejoins
            .first()
            .map_or(total, |&(_, due)| due.max(from + 1).min(total));
        let seg_iters = seg_end - from;

        // ---- Rendezvous over the current member set ---------------
        // Every member re-announces with a fresh mesh port and takes
        // a fresh clock-probe burst (the initial rendezvous already
        // consumed both for ranks in `greeted`).
        for &g in &members {
            if let Some(i) = roster.greeted.iter().position(|&r| r == g) {
                roster.greeted.swap_remove(i);
                continue;
            }
            let stream = roster
                .streams
                .get_mut(&g)
                .expect("live member has a control stream");
            stream
                .set_read_timeout(Some(pconf.connect_deadline()))
                .map_err(ctl_io)?;
            let hello = read_ctl(stream);
            let Ok(Ctl::Hello { rank, mesh_port }) = hello else {
                shutdown_all(&mut roster);
                return Err(ctl_io(format!(
                    "rank {g} did not re-announce at epoch {epoch}"
                )));
            };
            if rank != g {
                shutdown_all(&mut roster);
                return Err(ctl_io(format!("rank {g} re-announced as {rank}")));
            }
            let sync = probe_clock(stream, clock_epoch)?;
            roster.syncs.insert(g, sync);
            roster.ports.insert(g, mesh_port);
        }

        // ---- Dispatch ---------------------------------------------
        let mesh_ports: Vec<u16> = members.iter().map(|g| roster.ports[g]).collect();
        for (slot, &g) in members.iter().enumerate() {
            // Arm the earliest scripted crash for this rank that lands
            // inside the segment, translated to a segment-local count.
            let die_at_iter = pending_crashes
                .iter()
                .filter(|&&(r, i)| r == g && i >= from && i < seg_end)
                .map(|&(_, i)| i - from)
                .min();
            let job = Job {
                strategy,
                algorithm,
                partitions: partitions as u32,
                seed,
                nodes: members.len() as u32,
                rank: slot as u32,
                config: *config,
                iterations: seg_iters,
                window: pcfg.window,
                kill: false,
                want_trace: instruments.tracer.is_some(),
                want_metrics: instruments.metrics.is_some(),
                want_progress: instruments.progress.is_some(),
                grad_lens: grad_lens.clone(),
                grads: worker_grads[g as usize]
                    .iter()
                    .map(|t| t.as_slice().to_vec())
                    .collect(),
                mesh_ports: mesh_ports.clone(),
                elastic: true,
                epoch,
                base_iter: from,
                die_at_iter,
            };
            let stream = roster.streams.get_mut(&g).expect("member stream");
            write_ctl(stream, &Ctl::Job(Box::new(job)))?;
        }
        if let Some(t) = instruments.progress {
            for &g in &members {
                t.beat(g);
            }
        }

        // ---- Collect ----------------------------------------------
        let run_deadline = pconf.run_deadline();
        let progress = instruments.progress;
        let mut results: HashMap<u32, SegRes> = if progress.is_some() {
            // One collector per member, so live-progress frames keep
            // draining while slower members still run.
            std::thread::scope(|s| {
                let handles: Vec<(u32, _)> = roster
                    .streams
                    .iter_mut()
                    .filter(|(g, _)| members.contains(*g))
                    .map(|(&g, stream)| {
                        (
                            g,
                            s.spawn(move || collect_member(stream, run_deadline, progress)),
                        )
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(g, h)| {
                        (
                            g,
                            h.join().unwrap_or_else(|_| {
                                SegRes::Fail(Error::sim(format!("rank {g} collector panicked")))
                            }),
                        )
                    })
                    .collect()
            })
        } else {
            members
                .iter()
                .map(|&g| {
                    let stream = roster.streams.get_mut(&g).expect("member stream");
                    (g, collect_member(stream, run_deadline, None))
                })
                .collect()
        };

        // A real (non-elastic) failure anywhere aborts the whole run.
        if results.values().any(|r| matches!(r, SegRes::Fail(_))) {
            shutdown_all(&mut roster);
            let worst = results
                .into_values()
                .filter_map(|r| match r {
                    SegRes::Fail(e) => Some(e),
                    _ => None,
                })
                .min_by_key(error_rank)
                .expect("at least one failure");
            return Err(worst);
        }

        let deads: Vec<u32> = members
            .iter()
            .copied()
            .filter(|g| matches!(results.get(g), Some(SegRes::Lost)))
            .collect();

        if deads.is_empty() {
            // ---- Clean segment ------------------------------------
            let mut cells_per_slot: Vec<HashMap<(u32, u32), Cell>> =
                Vec::with_capacity(members.len());
            for &g in &members {
                let (cells, node_report, trace, metrics) = match results.remove(&g) {
                    Some(SegRes::Done {
                        cells,
                        report,
                        trace,
                        metrics,
                    }) => (cells, report, trace, metrics),
                    // A Halt without any dead control stream means a
                    // member blamed a peer that is demonstrably alive
                    // — a protocol violation, not a survivable death.
                    Some(SegRes::Halt { dead_slot, .. }) => {
                        shutdown_all(&mut roster);
                        return Err(ctl_io(format!(
                            "rank {g} halted blaming slot {dead_slot} although every member is alive"
                        )));
                    }
                    _ => {
                        shutdown_all(&mut roster);
                        return Err(ctl_io(format!("rank {g} never reported its segment")));
                    }
                };
                report.absorb(&node_report);
                report.per_node_busy_ns[g as usize] += node_report.total_busy_ns();
                if let Some(tracer) = instruments.tracer {
                    if let Some(t) = &trace {
                        replay_into(tracer, t, &roster.syncs[&g]);
                        record_clock_meta(tracer, g as usize, &roster.syncs[&g]);
                    }
                }
                if let Some(scope) = instruments.metrics {
                    if let Some(json) = &metrics {
                        let snap = MetricsSnapshot::from_json(json)
                            .map_err(|e| ctl_io(format!("rank {g} metrics snapshot: {e}")))?;
                        scope.absorb_snapshot(&snap);
                    }
                }
                cells_per_slot.push(cells);
            }
            if seg_end == total {
                // ---- Final segment: assemble and shut down --------
                shutdown_all(&mut roster);
                let sub: Vec<Vec<Tensor>> = members
                    .iter()
                    .map(|&g| worker_grads[g as usize].clone())
                    .collect();
                let flows = hipress_core::interp::gradient_flows(&sub);
                let replicated = replicate(&flows);
                let graph =
                    build_graph(strategy, algorithm, partitions, &grad_lens, members.len())?;
                let layout = FlowLayout::derive(&graph, members.len(), &replicated)?;
                let flows_out = layout.assemble(&cells_per_slot)?;
                report.wall_ns = started.elapsed().as_nanos() as u64;
                record_run_span(
                    instruments.tracer,
                    run_start_ns,
                    report.wall_ns,
                    nodes,
                    u64::from(total),
                    u64::from(pcfg.window),
                    report.membership.len() as u64,
                );
                if let Some(scope) = instruments.metrics {
                    record_run_metrics(scope, &report);
                }
                return Ok(RunOutcome {
                    flows: flows_out,
                    report,
                });
            }
            // A deliberate boundary: the segment was cut short so a
            // rejoin could be admitted. The retired work stands.
            from = seg_end;
        } else {
            // ---- A rank died: drain, evict, re-plan ---------------
            // The segment's result stands at the minimum fully-retired
            // count across survivors; everything past it re-runs next
            // epoch, which is safe because iterations are idempotent
            // in (members, gradients, seed).
            let seg_start = from;
            let completions: Vec<u32> = members
                .iter()
                .filter(|g| !deads.contains(*g))
                .map(|&g| match results.get(&g) {
                    Some(SegRes::Halt { completed, .. }) => *completed,
                    Some(SegRes::Done { .. }) => seg_iters,
                    _ => 0,
                })
                .collect();
            from = seg_start + drain_boundary(&completions);
            for &d in &deads {
                roster.streams.remove(&d);
                roster.syncs.remove(&d);
                roster.ports.remove(&d);
                // The armed crash fired; retire its script entry so a
                // later rejoin can crash the same rank again.
                if let Some(i) = pending_crashes
                    .iter()
                    .position(|&(r, i)| r == d && i >= seg_start && i < seg_end)
                {
                    pending_crashes.remove(i);
                }
            }
            members.retain(|g| !deads.contains(g));
            if members.len() < 2 {
                shutdown_all(&mut roster);
                return Err(Error::config(format!(
                    "elastic run cannot continue: {} survivor(s) after evicting {deads:?}",
                    members.len()
                )));
            }
            epoch += 1;
            // Admit any rejoins already due at this boundary, then
            // bump the incumbents. (A rejoin due later gets its own
            // boundary via the segment-planning cut above.)
            let mut joined: Vec<u32> = Vec::new();
            while let Some(&(r, due)) = pending_rejoins.first() {
                if due > from || deads.contains(&r) {
                    break;
                }
                pending_rejoins.remove(0);
                members.push(r);
                members.sort_unstable();
                joined.push(r);
            }
            let welcome = Msg::Welcome {
                epoch,
                from_iter: from,
                members: members.clone(),
            };
            for &r in &joined {
                respawn(r)?;
                admit_joiner(listener, r, epoch, &welcome, &mut roster)?;
            }
            let changed = deads.first().copied().unwrap_or(0);
            record_epoch(
                &mut report,
                instruments.tracer,
                mem_track,
                instruments.progress,
                epoch,
                from,
                &members,
                &deads,
                changed,
            );
            let bump = Ctl::Member(Msg::EpochBump {
                epoch,
                evicted: deads.first().copied(),
                from_iter: from,
                members: members.clone(),
            });
            for &g in &members {
                if joined.contains(&g) {
                    continue; // The Welcome already carries the epoch.
                }
                let stream = roster.streams.get_mut(&g).expect("member stream");
                write_ctl(stream, &bump)?;
            }
            continue;
        }

        // ---- Clean admission boundary -----------------------------
        epoch += 1;
        let mut joined: Vec<u32> = Vec::new();
        while let Some(&(r, due)) = pending_rejoins.first() {
            if due > from {
                break;
            }
            pending_rejoins.remove(0);
            members.push(r);
            members.sort_unstable();
            joined.push(r);
        }
        let welcome = Msg::Welcome {
            epoch,
            from_iter: from,
            members: members.clone(),
        };
        for &r in &joined {
            respawn(r)?;
            admit_joiner(listener, r, epoch, &welcome, &mut roster)?;
        }
        let changed = joined.first().copied().unwrap_or(0);
        record_epoch(
            &mut report,
            instruments.tracer,
            mem_track,
            instruments.progress,
            epoch,
            from,
            &members,
            &[],
            changed,
        );
        let bump = Ctl::Member(Msg::EpochBump {
            epoch,
            evicted: None,
            from_iter: from,
            members: members.clone(),
        });
        for &g in &members {
            if joined.contains(&g) {
                continue;
            }
            let stream = roster.streams.get_mut(&g).expect("member stream");
            write_ctl(stream, &bump)?;
        }
    }
}

/// Executes an elastic job as real OS processes: like
/// [`run_processes`][super::run_processes], plus a scripted
/// [`MembershipPlan`] of crashes and rejoins. Crashed ranks exit hard
/// (code 13) and are evicted at the drain boundary; rejoining ranks
/// are respawned with `node --join` and admitted at the next epoch
/// boundary.
///
/// The returned flows are the **final epoch's** member set's result —
/// over the survivors when ranks were lost for good, over the full
/// membership when every crash was paired with a rejoin. The report
/// carries the full epoch history (`membership`) and every evicted
/// rank.
///
/// # Errors
///
/// Configuration errors for bad shapes or plans; control-channel or
/// protocol failures; a configuration error when fewer than two
/// members would survive an eviction.
#[allow(clippy::too_many_arguments)]
pub fn run_elastic_processes(
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    worker_grads: &[Vec<Tensor>],
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    pconf: &ProcessConfig,
    plan: &MembershipPlan,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    let nodes = worker_grads.len();
    validate_grads(worker_grads)?;
    validate(pcfg)?;
    if std::env::var_os(SPAWN_GUARD_ENV).is_some() {
        return Err(Error::config(
            "recursive worker spawn: the worker binary re-entered run_elastic_processes — \
             point ProcessConfig.binary (or HIPRESS_NODE_BIN) at a binary that dispatches \
             `node` to node_main",
        ));
    }

    let listener = TcpListener::bind("127.0.0.1:0").map_err(ctl_io)?;
    let addr = listener.local_addr().map_err(ctl_io)?;
    let binary = resolve_binary(pconf)?;

    let children: Mutex<Vec<std::process::Child>> = Mutex::new(Vec::with_capacity(nodes));
    let spawn_one = |rank: u32, join: bool| -> Result<()> {
        let mut cmd = std::process::Command::new(&binary);
        cmd.env(SPAWN_GUARD_ENV, "1")
            .arg("node")
            .arg("--connect")
            .arg(addr.to_string())
            .arg("--rank")
            .arg(rank.to_string());
        if join {
            cmd.arg("--join");
        } else {
            cmd.arg("--nodes").arg(nodes.to_string());
        }
        let child = cmd
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| {
                Error::config(format!(
                    "failed to spawn worker {rank} ({}): {e}",
                    binary.display()
                ))
            })?;
        children.lock().expect("children lock").push(child);
        Ok(())
    };
    for rank in 0..nodes {
        spawn_one(rank as u32, false)?;
    }
    let respawn = |rank: u32| spawn_one(rank, true);

    let result = coordinate_elastic(
        &listener,
        strategy,
        algorithm,
        partitions,
        worker_grads,
        seed,
        config,
        pcfg,
        pconf,
        plan,
        &respawn,
        instruments,
    );
    reap(&mut children.lock().expect("children lock"));
    result
}

/// The joiner's rendezvous: dial the coordinator, ask to [`Msg::Join`]
/// as `rank`, and block until the [`Msg::Welcome`] that admits us at
/// the next epoch boundary. Returns the control stream (ready for the
/// normal per-segment protocol) and the member set joined.
fn attach(connect: &str, rank: usize) -> Result<(TcpStream, Vec<u32>)> {
    let mut ctl = TcpStream::connect(connect)
        .map_err(|e| ctl_io(format!("node {rank}: dial coordinator {connect}: {e}")))?;
    ctl.set_nodelay(true).map_err(ctl_io)?;
    write_ctl(
        &mut ctl,
        &Ctl::Member(Msg::Join {
            rank: rank as u32,
            epoch: 0,
        }),
    )?;
    // Admission happens only at an epoch boundary, which can be most
    // of a segment away; wait generously.
    ctl.set_read_timeout(Some(Duration::from_secs(600)))
        .map_err(ctl_io)?;
    let members = match read_ctl(&mut ctl)? {
        Ctl::Member(Msg::Welcome { members, .. }) => members,
        _ => return Err(ctl_io(format!("node {rank}: expected a Welcome"))),
    };
    if !members.contains(&(rank as u32)) {
        return Err(ctl_io(format!(
            "node {rank}: welcomed into a membership that excludes it"
        )));
    }
    Ok((ctl, members))
}

/// Entry point for the `hipress node --join` subcommand: a restarted
/// worker re-attaching to a running elastic job. Dials `connect`,
/// asks to join as `rank`, and on [`Msg::Welcome`] enters the normal
/// per-segment worker protocol.
///
/// # Errors
///
/// Transport or protocol failures talking to the coordinator or the
/// mesh. Exits the process with code 13 when a scripted crash fires.
pub fn join_main(connect: &str, rank: usize) -> Result<()> {
    let (ctl, members) = attach(connect, rank)?;
    match run_node(ctl, rank, members.len())? {
        NodeRun::Completed => Ok(()),
        NodeRun::Killed => {
            eprintln!("node {rank}: scripted crash after rejoin");
            std::process::exit(13);
        }
    }
}

/// Runs the full elastic coordinator protocol with worker *threads*
/// standing in for worker processes — same control channel, same TCP
/// mesh, same rendezvous, crash, and rejoin paths; only `fork/exec`
/// is skipped. The crash victim's thread returns instead of exiting,
/// dropping its sockets exactly as a dead process would.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn run_elastic_threaded(
    strategy: Strategy,
    algorithm: Algorithm,
    partitions: usize,
    worker_grads: &[Vec<Tensor>],
    seed: u64,
    config: &RuntimeConfig,
    pcfg: &PipelineConfig,
    plan: &MembershipPlan,
    instruments: Instruments<'_>,
) -> Result<RunOutcome> {
    let nodes = worker_grads.len();
    validate_grads(worker_grads)?;
    validate(pcfg)?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(ctl_io)?;
    let addr = listener.local_addr().map_err(ctl_io)?;

    let handles: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    let spawn_worker = |rank: usize, join: bool| -> Result<()> {
        let connect = addr.to_string();
        let handle = std::thread::Builder::new()
            .name(format!("elastic-node{rank}"))
            .spawn(move || {
                let run = || -> Result<NodeRun> {
                    if join {
                        let (ctl, members) = attach(&connect, rank)?;
                        run_node(ctl, rank, members.len())
                    } else {
                        let ctl = TcpStream::connect(&connect).map_err(ctl_io)?;
                        run_node(ctl, rank, nodes)
                    }
                };
                // A Killed return *is* the crash: the thread drops its
                // sockets and vanishes without a word, exactly like a
                // killed process. Errors are also silent — the
                // coordinator diagnoses them from the stream.
                let _ = run();
            })
            .map_err(|e| Error::config(format!("spawn worker thread {rank}: {e}")))?;
        handles.lock().expect("handles lock").push(handle);
        Ok(())
    };
    for rank in 0..nodes {
        spawn_worker(rank, false)?;
    }
    let respawn = |rank: u32| spawn_worker(rank as usize, true);

    let pconf = ProcessConfig::default();
    let result = coordinate_elastic(
        &listener,
        strategy,
        algorithm,
        partitions,
        worker_grads,
        seed,
        config,
        pcfg,
        &pconf,
        plan,
        &respawn,
        instruments,
    );
    for handle in handles.lock().expect("handles lock").drain(..) {
        let _ = handle.join();
    }
    result
}

/// Asserts the slot-reassignment rule the dispatch loop relies on:
/// the slot a member gets in the Job equals the pure
/// [`member_slot`] decision over the sorted member list.
#[cfg(test)]
mod tests {
    use crate::protocol::member_slot;

    #[test]
    fn dispatch_slots_match_the_pure_reassignment_rule() {
        let members = [0u32, 2, 3, 5];
        for (slot, &g) in members.iter().enumerate() {
            assert_eq!(member_slot(&members, g), Some(slot as u32));
        }
        assert_eq!(member_slot(&members, 1), None);
    }
}

//! Deterministic fault injection for the CaSync fabric.
//!
//! A [`FaultPlan`] is a *seeded, pure* description of how a fabric
//! misbehaves: per-link probabilities for message **drop**, **delay**,
//! **duplication**, **reorder**, and payload **corruption**
//! (bit-flips on encoded gradients), plus per-node **stall** (pause
//! mid-protocol) and **crash** (stop mid-protocol) triggers. The plan
//! never touches global randomness: every decision is a hash of
//! `(plan seed, link, sequence number, attempt)`, so the *same message
//! on the same link suffers the same fate* on every run and on every
//! thread interleaving — which is what makes chaos runs reproducible
//! and recoverability a property of the plan, not of scheduling luck.
//!
//! Recoverability is structural, not probabilistic: once a message has
//! been attempted [`FaultPlan::fault_cap`] times, every further
//! attempt (and its acknowledgements) is delivered clean. A plan with
//! a cap below the runtime's retry budget therefore *cannot* defeat a
//! retransmitting protocol, while `fault_cap == u32::MAX` plans (e.g.
//! [`FaultPlan::blackhole`]) model genuinely dead links.
//!
//! [`ChaosLink`] wraps an `mpsc::Sender` of any [`Wire`] message type
//! and applies a plan's verdicts on the way out; the runtime drives
//! its held-message buffer from its poll loop, so delayed and
//! reordered deliveries need no extra threads.

#![forbid(unsafe_code)]

use hipress_util::rng::{Rng64, SplitMix64};
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};

/// Per-link fault probabilities, all in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a delivered message is delivered twice.
    pub duplicate: f64,
    /// Probability a delivered message is held back so later traffic
    /// on the link overtakes it.
    pub reorder: f64,
    /// Probability a delivered message is delayed.
    pub delay: f64,
    /// Upper bound on an injected delay, nanoseconds (uniform in
    /// `[1, max_delay_ns]` when a delay fires).
    pub max_delay_ns: u64,
    /// Probability one payload bit of a delivered message is flipped.
    pub corrupt: f64,
}

impl LinkFaults {
    /// A perfectly healthy link.
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        delay: 0.0,
        max_delay_ns: 0,
        corrupt: 0.0,
    };

    /// True when every probability is zero.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.delay == 0.0
            && self.corrupt == 0.0
    }
}

/// A stall trigger: before executing its `at_task`-th local task the
/// node pauses for `dur_ns` wall-clock nanoseconds (a wedged-but-alive
/// peer; straggler detectors should notice it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// Zero-based index into the node's local execution order.
    pub at_task: usize,
    /// How long the node sleeps, nanoseconds.
    pub dur_ns: u64,
}

/// A crash trigger: before executing its `at_task`-th local task the
/// node stops mid-protocol without telling anyone (its channels
/// disconnect; peers must diagnose the silence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// Zero-based index into the node's local execution order.
    pub at_task: usize,
}

/// Per-node fault triggers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeFaults {
    /// Pause mid-protocol (recoverable by waiting or degrading).
    pub stall: Option<Stall>,
    /// Stop mid-protocol (never recoverable).
    pub crash: Option<Crash>,
}

/// A complete, seeded fault-injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision hash.
    pub seed: u64,
    /// Faults applied to links without a dedicated entry.
    pub default_link: LinkFaults,
    /// Per-link overrides, keyed by `(src, dst)`.
    pub links: Vec<((usize, usize), LinkFaults)>,
    /// Per-node stall/crash triggers.
    pub nodes: Vec<(usize, NodeFaults)>,
    /// After this many faulty attempts of one message, every further
    /// attempt (and its acks) is delivered clean. `u32::MAX` means the
    /// plan may defeat any retry budget (unrecoverable links).
    pub fault_cap: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none(0)
    }
}

/// Decision-stream salts: one per fault kind, so a message's drop,
/// duplicate, reorder, delay, and corruption draws are independent.
const SALT_DROP: u64 = 1;
const SALT_DUP: u64 = 2;
const SALT_REORDER: u64 = 3;
const SALT_DELAY: u64 = 4;
const SALT_CORRUPT: u64 = 5;

impl FaultPlan {
    /// A plan that injects nothing (the identity fabric).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            default_link: LinkFaults::NONE,
            links: Vec::new(),
            nodes: Vec::new(),
            fault_cap: 0,
        }
    }

    /// A lively but always-recoverable plan: every link drops ~15% of
    /// first attempts, duplicates and reorders ~10%, delays ~20% by up
    /// to 500µs, and corrupts ~10% of payloads — but the fault cap of
    /// 2 guarantees the third attempt of anything goes through clean.
    pub fn recoverable(seed: u64) -> Self {
        Self {
            seed,
            default_link: LinkFaults {
                drop: 0.15,
                duplicate: 0.10,
                reorder: 0.10,
                delay: 0.20,
                max_delay_ns: 500_000,
                corrupt: 0.10,
            },
            links: Vec::new(),
            nodes: Vec::new(),
            fault_cap: 2,
        }
    }

    /// Heavy loss on every link (~60% drop), still capped at 2 faulty
    /// attempts per message — stress for the retransmission path.
    pub fn drop_storm(seed: u64) -> Self {
        Self {
            seed,
            default_link: LinkFaults {
                drop: 0.60,
                max_delay_ns: 0,
                ..LinkFaults::NONE
            },
            links: Vec::new(),
            nodes: Vec::new(),
            fault_cap: 2,
        }
    }

    /// Heavy payload corruption on every link (~60% of payloads get a
    /// flipped bit), capped at 2 — stress for checksum verification
    /// and nack-driven retransmission.
    pub fn corruption_storm(seed: u64) -> Self {
        Self {
            seed,
            default_link: LinkFaults {
                corrupt: 0.60,
                max_delay_ns: 0,
                ..LinkFaults::NONE
            },
            links: Vec::new(),
            nodes: Vec::new(),
            fault_cap: 2,
        }
    }

    /// A single stalled node: `node` pauses `dur` before its second
    /// local task; links stay healthy. What happens next is the
    /// degradation policy's call.
    pub fn stall(seed: u64, node: usize, dur: Duration) -> Self {
        let mut p = Self::none(seed);
        p.nodes.push((
            node,
            NodeFaults {
                stall: Some(Stall {
                    at_task: 1,
                    dur_ns: dur.as_nanos() as u64,
                }),
                crash: None,
            },
        ));
        p
    }

    /// A crashing node: `node` stops cold before its `at_task`-th
    /// local task. Never recoverable; peers must produce a clean
    /// structured error within their deadlines.
    pub fn crash(seed: u64, node: usize, at_task: usize) -> Self {
        let mut p = Self::none(seed);
        p.nodes.push((
            node,
            NodeFaults {
                stall: None,
                crash: Some(Crash { at_task }),
            },
        ));
        p
    }

    /// One dead link: everything from `src` to `dst` vanishes, with no
    /// fault cap — no retry budget survives it. The sender's
    /// retransmission budget must exhaust into a structured dead-link
    /// error.
    pub fn blackhole(seed: u64, src: usize, dst: usize) -> Self {
        let mut p = Self::none(seed);
        p.links.push((
            (src, dst),
            LinkFaults {
                drop: 1.0,
                max_delay_ns: 0,
                ..LinkFaults::NONE
            },
        ));
        p.fault_cap = u32::MAX;
        p
    }

    /// Adds or replaces a per-link override.
    #[must_use]
    pub fn with_link(mut self, src: usize, dst: usize, faults: LinkFaults) -> Self {
        self.links.retain(|(l, _)| *l != (src, dst));
        self.links.push(((src, dst), faults));
        self
    }

    /// Adds or replaces a per-node trigger set.
    #[must_use]
    pub fn with_node(mut self, node: usize, faults: NodeFaults) -> Self {
        self.nodes.retain(|(n, _)| *n != node);
        self.nodes.push((node, faults));
        self
    }

    /// The faults applied to the `src → dst` link.
    pub fn link_faults(&self, src: usize, dst: usize) -> &LinkFaults {
        self.links
            .iter()
            .find(|(l, _)| *l == (src, dst))
            .map(|(_, f)| f)
            .unwrap_or(&self.default_link)
    }

    /// The triggers for `node`, if any.
    pub fn node_faults(&self, node: usize) -> Option<&NodeFaults> {
        self.nodes.iter().find(|(n, _)| *n == node).map(|(_, f)| f)
    }

    /// True when a protocol with `retry_budget` retransmissions per
    /// message is guaranteed to complete under this plan: the fault
    /// cap leaves headroom inside the budget and no node crashes.
    /// (Stalls are recoverable — by waiting — so they do not count
    /// against this.)
    pub fn is_recoverable(&self, retry_budget: u32) -> bool {
        self.fault_cap < retry_budget && self.nodes.iter().all(|(_, f)| f.crash.is_none())
    }

    /// True when the plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.default_link.is_none()
            && self.links.iter().all(|(_, f)| f.is_none())
            && self.nodes.iter().all(|(_, f)| *f == NodeFaults::default())
    }

    /// One deterministic uniform draw in `[0, 1)` for a fault decision.
    fn draw(&self, salt: u64, src: usize, dst: usize, seq: u64, attempt: u32) -> f64 {
        self.decision_rng(salt, src, dst, seq, attempt).next_f64()
    }

    /// An independent generator per `(kind, link, seq, attempt)`.
    fn decision_rng(
        &self,
        salt: u64,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
    ) -> SplitMix64 {
        let mut k = self.seed;
        for v in [salt, src as u64, dst as u64, seq, u64::from(attempt)] {
            k = (k ^ v)
                .wrapping_mul(0x0100_0000_01B3)
                .rotate_left(23)
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        SplitMix64::new(k)
    }

    /// The fate of attempt `attempt` of message `seq` on `src → dst`.
    ///
    /// Pure: the same arguments always return the same verdict.
    /// `payload_bits` is the corruptible size of the message (0 for
    /// control messages, which are never corrupted — only data
    /// payloads carry checksummable gradient bytes).
    pub fn verdict(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        payload_bits: u64,
    ) -> Verdict {
        let lf = *self.link_faults(src, dst);
        if lf.is_none() || attempt >= self.fault_cap {
            return Verdict::Deliver(Delivery::clean());
        }
        if self.draw(SALT_DROP, src, dst, seq, attempt) < lf.drop {
            return Verdict::Drop;
        }
        let mut d = Delivery::clean();
        if self.draw(SALT_DUP, src, dst, seq, attempt) < lf.duplicate {
            d.duplicate = true;
        }
        if self.draw(SALT_REORDER, src, dst, seq, attempt) < lf.reorder {
            d.reorder = true;
        }
        if lf.max_delay_ns > 0 && self.draw(SALT_DELAY, src, dst, seq, attempt) < lf.delay {
            let mut rng = self.decision_rng(SALT_DELAY ^ 0x5D, src, dst, seq, attempt);
            d.delay_ns = 1 + rng.next_below(lf.max_delay_ns);
        }
        if payload_bits > 0 && self.draw(SALT_CORRUPT, src, dst, seq, attempt) < lf.corrupt {
            let mut rng = self.decision_rng(SALT_CORRUPT ^ 0x5D, src, dst, seq, attempt);
            d.corrupt_bit = Some(rng.next_below(payload_bits));
        }
        Verdict::Deliver(d)
    }
}

/// A scripted membership schedule for an *elastic* run: which ranks
/// crash at which global iterations, and when crashed ranks come
/// back. Unlike [`FaultPlan`]'s probabilistic link faults this is a
/// pure script — elastic chaos is about surviving whole-rank loss,
/// and the interesting schedules (lose one worker, lose it and get it
/// back, lose it repeatedly) are enumerable by hand.
///
/// Crashes kill the rank *hard* right before it runs the named global
/// iteration: no abort broadcast, no goodbye on any channel — peers
/// must discover the loss through the transport, exactly as they
/// would a real `kill -9`. Rejoins respawn the rank and admit it at
/// the first epoch boundary at or after the named iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipPlan {
    /// `(global rank, global iteration)`: the rank crashes right
    /// before running that iteration.
    pub crashes: Vec<(u32, u32)>,
    /// `(global rank, global iteration)`: respawn the rank and admit
    /// it at the first epoch boundary at or after that iteration.
    pub rejoins: Vec<(u32, u32)>,
}

impl MembershipPlan {
    /// A schedule that changes nothing — the run stays at epoch 0.
    pub fn none() -> Self {
        Self::default()
    }

    /// Lose `rank` for good: it crashes before global iteration
    /// `at_iter` and never comes back. The survivors re-plan and
    /// finish the run without it.
    pub fn crash(rank: u32, at_iter: u32) -> Self {
        MembershipPlan {
            crashes: vec![(rank, at_iter)],
            rejoins: Vec::new(),
        }
    }

    /// Lose `rank` at `at_iter`, then get it back: a fresh process is
    /// respawned and re-admitted at the first epoch boundary at or
    /// after `rejoin_at`. The final membership equals the initial one.
    pub fn crash_then_rejoin(rank: u32, at_iter: u32, rejoin_at: u32) -> Self {
        MembershipPlan {
            crashes: vec![(rank, at_iter)],
            rejoins: vec![(rank, rejoin_at)],
        }
    }

    /// A flapping worker: `rank` crashes at `first_crash`, rejoins
    /// `period` iterations later, crashes again `period` iterations
    /// after that, and so on for `times` crash/rejoin cycles. Ends
    /// rejoined, so the final membership equals the initial one.
    pub fn flap(rank: u32, first_crash: u32, period: u32, times: u32) -> Self {
        let period = period.max(1);
        let mut plan = MembershipPlan::default();
        for cycle in 0..times {
            let crash_at = first_crash + cycle * 2 * period;
            plan.crashes.push((rank, crash_at));
            plan.rejoins.push((rank, crash_at + period));
        }
        plan
    }

    /// True when the schedule changes nothing.
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty() && self.rejoins.is_empty()
    }

    /// Rejects schedules the elastic runtime cannot honour: a crash
    /// or rejoin naming a rank outside `0..nodes`, a crash at or past
    /// the last iteration (there is no later boundary to re-plan at),
    /// or a schedule that could take the membership below two ranks
    /// at once (more simultaneous crashes than `nodes - 2`).
    pub fn validate(&self, nodes: usize, iterations: u32) -> Result<(), String> {
        for &(rank, iter) in self.crashes.iter().chain(&self.rejoins) {
            if rank as usize >= nodes {
                return Err(format!("membership plan names rank {rank} of {nodes}"));
            }
            if iter >= iterations {
                return Err(format!(
                    "membership plan event at iteration {iter} of {iterations}"
                ));
            }
        }
        if self.crashes.len() > nodes.saturating_sub(2) + self.rejoins.len() {
            return Err(format!(
                "{} crashes could leave fewer than 2 of {nodes} ranks",
                self.crashes.len()
            ));
        }
        Ok(())
    }
}

/// The fate of one message attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The message vanishes.
    Drop,
    /// The message is delivered, possibly mangled on the way.
    Deliver(Delivery),
}

/// How a delivered message is mangled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Deliver this many nanoseconds late (0 = immediately).
    pub delay_ns: u64,
    /// Deliver a second copy as well.
    pub duplicate: bool,
    /// Hold the message briefly so later traffic overtakes it.
    pub reorder: bool,
    /// Flip this payload bit before delivery.
    pub corrupt_bit: Option<u64>,
}

impl Delivery {
    /// An unmangled, immediate delivery.
    pub fn clean() -> Self {
        Self {
            delay_ns: 0,
            duplicate: false,
            reorder: false,
            corrupt_bit: None,
        }
    }

    /// True when nothing at all was injected.
    pub fn is_clean(&self) -> bool {
        *self == Self::clean()
    }
}

/// A message type the injector can corrupt: it exposes how many
/// payload bits it carries and lets the injector flip one of them.
/// Control messages report zero bits and are never corrupted.
pub trait Wire {
    /// Corruptible payload size in bits (0 = nothing to corrupt).
    fn payload_bits(&self) -> u64;
    /// Flips payload bit `bit` (callers guarantee
    /// `bit < payload_bits()`).
    fn flip_bit(&mut self, bit: u64);
}

/// What a [`ChaosLink::send`] actually did to the message — the
/// caller's hook for fault accounting (reports, metrics, traces).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendEffects {
    /// The message was dropped (nothing was sent).
    pub dropped: bool,
    /// A duplicate copy was delivered as well.
    pub duplicated: bool,
    /// The message was held back for later traffic to overtake.
    pub reordered: bool,
    /// The message was held back `delay_ns` nanoseconds.
    pub delayed: bool,
    /// One payload bit was flipped before delivery.
    pub corrupted: bool,
}

impl SendEffects {
    /// True when the message went through untouched.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Why a message is sitting in the held buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeldKind {
    Delay,
    Reorder,
}

/// How long a reordered message is held when no later traffic shows
/// up to overtake it (it degrades into a short delay).
const REORDER_HOLD: Duration = Duration::from_millis(1);

/// A fault-injecting wrapper around an `mpsc::Sender`.
///
/// Sends consult the plan's [`FaultPlan::verdict`] for the message's
/// `(seq, attempt)`; drops vanish, duplicates send twice, corruptions
/// flip a payload bit, and delays/reorders park the message in a held
/// buffer that the owner drains from its poll loop via
/// [`ChaosLink::flush_due`] — no timer threads. Disconnected receivers
/// are ignored (the peer exited; the protocol layer decides whether
/// that is fine or an error).
pub struct ChaosLink<T> {
    src: usize,
    dst: usize,
    tx: Sender<T>,
    held: Vec<(Instant, HeldKind, T)>,
}

impl<T: Wire + Clone> ChaosLink<T> {
    /// Wraps the `src → dst` sender.
    pub fn new(src: usize, dst: usize, tx: Sender<T>) -> Self {
        Self {
            src,
            dst,
            tx,
            held: Vec::new(),
        }
    }

    /// Sends `msg` as attempt `attempt` of sequence `seq`, applying
    /// the plan's verdict. Returns what was injected.
    pub fn send(&mut self, plan: &FaultPlan, seq: u64, attempt: u32, mut msg: T) -> SendEffects {
        let mut fx = SendEffects::default();
        match plan.verdict(self.src, self.dst, seq, attempt, msg.payload_bits()) {
            Verdict::Drop => {
                fx.dropped = true;
            }
            Verdict::Deliver(d) => {
                if let Some(bit) = d.corrupt_bit {
                    msg.flip_bit(bit);
                    fx.corrupted = true;
                }
                if d.duplicate {
                    let _ = self.tx.send(msg.clone());
                    fx.duplicated = true;
                }
                if d.delay_ns > 0 {
                    self.held.push((
                        Instant::now() + Duration::from_nanos(d.delay_ns),
                        HeldKind::Delay,
                        msg,
                    ));
                    fx.delayed = true;
                } else if d.reorder {
                    self.held
                        .push((Instant::now() + REORDER_HOLD, HeldKind::Reorder, msg));
                    fx.reordered = true;
                } else {
                    let _ = self.tx.send(msg);
                    // A later message overtaking a held one is exactly
                    // the reorder we promised; release reorder-held
                    // messages now that something has passed them.
                    self.release_overtaken();
                }
            }
        }
        fx
    }

    /// Releases reorder-held messages (they have been overtaken).
    fn release_overtaken(&mut self) {
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].1 == HeldKind::Reorder {
                let (_, _, msg) = self.held.remove(i);
                let _ = self.tx.send(msg);
            } else {
                i += 1;
            }
        }
    }

    /// Delivers every held message whose due time has passed; returns
    /// how many went out. Call this from the owner's poll loop.
    pub fn flush_due(&mut self, now: Instant) -> usize {
        let mut sent = 0;
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 <= now {
                let (_, _, msg) = self.held.remove(i);
                let _ = self.tx.send(msg);
                sent += 1;
            } else {
                i += 1;
            }
        }
        sent
    }

    /// Delivers every held message regardless of due time (shutdown).
    pub fn flush_all(&mut self) -> usize {
        let mut sent = 0;
        for (_, _, msg) in self.held.drain(..) {
            let _ = self.tx.send(msg);
            sent += 1;
        }
        sent
    }

    /// Messages currently parked in the held buffer.
    pub fn held(&self) -> usize {
        self.held.len()
    }

    /// Earliest due time among held messages, if any — lets the owner
    /// sleep until something actually needs flushing instead of
    /// polling on a fixed tick.
    pub fn next_release(&self) -> Option<Instant> {
        self.held.iter().map(|(due, _, _)| *due).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A trivial Wire message: a vector of bytes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Blob(Vec<u8>);

    impl Wire for Blob {
        fn payload_bits(&self) -> u64 {
            (self.0.len() * 8) as u64
        }
        fn flip_bit(&mut self, bit: u64) {
            self.0[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn verdicts_are_deterministic() {
        let plan = FaultPlan::recoverable(42);
        for seq in 0..50u64 {
            for attempt in 0..3u32 {
                let a = plan.verdict(0, 1, seq, attempt, 1024);
                let b = plan.verdict(0, 1, seq, attempt, 1024);
                assert_eq!(a, b, "seq {seq} attempt {attempt}");
            }
        }
    }

    #[test]
    fn distinct_links_draw_distinct_streams() {
        let plan = FaultPlan::recoverable(7);
        let mut differs = false;
        for seq in 0..100u64 {
            if plan.verdict(0, 1, seq, 0, 64) != plan.verdict(1, 0, seq, 0, 64) {
                differs = true;
                break;
            }
        }
        assert!(differs, "links 0→1 and 1→0 should not share fates");
    }

    #[test]
    fn fault_cap_guarantees_clean_delivery() {
        // Even a storm plan delivers everything clean at the cap.
        for seed in 0..20 {
            let plan = FaultPlan::drop_storm(seed);
            for seq in 0..100u64 {
                assert_eq!(
                    plan.verdict(0, 1, seq, plan.fault_cap, 1 << 20),
                    Verdict::Deliver(Delivery::clean()),
                    "seed {seed} seq {seq}"
                );
            }
            let plan = FaultPlan::corruption_storm(seed);
            for seq in 0..100u64 {
                assert_eq!(
                    plan.verdict(2, 0, seq, plan.fault_cap + 1, 1 << 20),
                    Verdict::Deliver(Delivery::clean())
                );
            }
        }
    }

    #[test]
    fn blackhole_eats_everything_forever() {
        let plan = FaultPlan::blackhole(1, 0, 2);
        for seq in 0..50u64 {
            for attempt in [0u32, 1, 7, 100] {
                assert_eq!(plan.verdict(0, 2, seq, attempt, 128), Verdict::Drop);
            }
        }
        // Other links stay pristine.
        assert_eq!(
            plan.verdict(2, 0, 3, 0, 128),
            Verdict::Deliver(Delivery::clean())
        );
        assert!(!plan.is_recoverable(8));
        assert!(FaultPlan::recoverable(0).is_recoverable(8));
        assert!(!FaultPlan::crash(0, 1, 2).is_recoverable(8));
    }

    #[test]
    fn corruption_targets_a_real_bit() {
        let plan = FaultPlan::corruption_storm(3);
        let mut saw = false;
        for seq in 0..50u64 {
            if let Verdict::Deliver(d) = plan.verdict(0, 1, seq, 0, 256) {
                if let Some(bit) = d.corrupt_bit {
                    assert!(bit < 256);
                    saw = true;
                }
            }
        }
        assert!(saw, "a 60% corruption plan must corrupt something");
    }

    #[test]
    fn control_messages_are_never_corrupted() {
        let plan = FaultPlan::corruption_storm(3);
        for seq in 0..50u64 {
            if let Verdict::Deliver(d) = plan.verdict(0, 1, seq, 0, 0) {
                assert_eq!(d.corrupt_bit, None);
            }
        }
    }

    #[test]
    fn chaos_link_drops_and_duplicates() {
        let plan = FaultPlan {
            seed: 9,
            default_link: LinkFaults {
                drop: 0.5,
                duplicate: 0.5,
                max_delay_ns: 0,
                ..LinkFaults::NONE
            },
            links: Vec::new(),
            nodes: Vec::new(),
            fault_cap: 10,
        };
        let (tx, rx) = mpsc::channel();
        let mut link = ChaosLink::new(0, 1, tx);
        let (mut dropped, mut dup) = (0, 0);
        for seq in 0..200u64 {
            let fx = link.send(&plan, seq, 0, Blob(vec![seq as u8]));
            if fx.dropped {
                dropped += 1;
            }
            if fx.duplicated {
                dup += 1;
            }
        }
        link.flush_all();
        let delivered = rx.try_iter().count();
        assert!(dropped > 50, "~50% drop plan dropped only {dropped}");
        assert!(dup > 25, "duplication never fired");
        assert_eq!(delivered, 200 - dropped + dup);
    }

    #[test]
    fn chaos_link_corrupts_payload_bits() {
        let plan = FaultPlan::corruption_storm(5);
        let (tx, rx) = mpsc::channel();
        let mut link = ChaosLink::new(0, 1, tx);
        let mut corrupted = 0;
        for seq in 0..100u64 {
            let fx = link.send(&plan, seq, 0, Blob(vec![0u8; 16]));
            if fx.corrupted {
                corrupted += 1;
            }
        }
        link.flush_all();
        let mangled = rx
            .try_iter()
            .filter(|b: &Blob| b.0 != vec![0u8; 16])
            .count();
        assert_eq!(mangled, corrupted);
        assert!(corrupted >= 30, "60% corruption plan corrupted {corrupted}");
    }

    #[test]
    fn delayed_messages_wait_for_flush() {
        let plan = FaultPlan {
            seed: 1,
            default_link: LinkFaults {
                delay: 1.0,
                max_delay_ns: 1, // 1ns: due essentially immediately
                ..LinkFaults::NONE
            },
            links: Vec::new(),
            nodes: Vec::new(),
            fault_cap: 10,
        };
        let (tx, rx) = mpsc::channel();
        let mut link = ChaosLink::new(0, 1, tx);
        let fx = link.send(&plan, 0, 0, Blob(vec![7]));
        assert!(fx.delayed);
        assert!(rx.try_recv().is_err(), "delayed message delivered early");
        assert_eq!(link.held(), 1);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(link.flush_due(Instant::now()), 1);
        assert_eq!(rx.try_recv().unwrap(), Blob(vec![7]));
    }

    #[test]
    fn reordered_message_is_overtaken_by_later_traffic() {
        let plan = FaultPlan {
            seed: 2,
            default_link: LinkFaults {
                reorder: 1.0,
                max_delay_ns: 0,
                ..LinkFaults::NONE
            },
            links: Vec::new(),
            nodes: Vec::new(),
            // Attempt 0 reorders; attempt-free later sends use seq+1
            // which also reorders — so use the cap to let the second
            // message through clean and overtake.
            fault_cap: 1,
        };
        let (tx, rx) = mpsc::channel();
        let mut link = ChaosLink::new(0, 1, tx);
        let fx = link.send(&plan, 0, 0, Blob(vec![1]));
        assert!(fx.reordered);
        // Second message: attempt at the cap ⇒ clean ⇒ overtakes.
        let fx = link.send(&plan, 1, 1, Blob(vec![2]));
        assert!(fx.is_clean());
        let first: Blob = rx.try_recv().unwrap();
        let second: Blob = rx.try_recv().unwrap();
        assert_eq!(first, Blob(vec![2]), "later send must overtake");
        assert_eq!(second, Blob(vec![1]));
    }

    #[test]
    fn none_plan_is_identity() {
        let plan = FaultPlan::none(99);
        assert!(plan.is_none());
        let (tx, rx) = mpsc::channel();
        let mut link = ChaosLink::new(0, 1, tx);
        for seq in 0..50u64 {
            assert!(link.send(&plan, seq, 0, Blob(vec![seq as u8])).is_clean());
        }
        assert_eq!(rx.try_iter().count(), 50);
        assert_eq!(link.held(), 0);
    }

    #[test]
    fn with_link_and_with_node_replace() {
        let plan = FaultPlan::none(0)
            .with_link(0, 1, LinkFaults::NONE)
            .with_link(
                0,
                1,
                LinkFaults {
                    drop: 1.0,
                    ..LinkFaults::NONE
                },
            )
            .with_node(
                2,
                NodeFaults {
                    stall: Some(Stall {
                        at_task: 0,
                        dur_ns: 5,
                    }),
                    crash: None,
                },
            );
        assert_eq!(plan.links.len(), 1);
        assert_eq!(plan.link_faults(0, 1).drop, 1.0);
        assert_eq!(plan.link_faults(1, 0).drop, 0.0);
        assert!(plan.node_faults(2).unwrap().stall.is_some());
        assert!(plan.node_faults(0).is_none());
    }

    #[test]
    fn membership_constructors_script_the_expected_schedules() {
        assert!(MembershipPlan::none().is_none());
        let crash = MembershipPlan::crash(2, 5);
        assert_eq!(crash.crashes, vec![(2, 5)]);
        assert!(crash.rejoins.is_empty());

        let ctr = MembershipPlan::crash_then_rejoin(1, 3, 7);
        assert_eq!(ctr.crashes, vec![(1, 3)]);
        assert_eq!(ctr.rejoins, vec![(1, 7)]);

        // Two full flap cycles: crash, back, crash again, back again.
        let flap = MembershipPlan::flap(0, 2, 3, 2);
        assert_eq!(flap.crashes, vec![(0, 2), (0, 8)]);
        assert_eq!(flap.rejoins, vec![(0, 5), (0, 11)]);
        // A zero period still makes forward progress.
        assert_eq!(MembershipPlan::flap(0, 1, 0, 1).rejoins, vec![(0, 2)]);
    }

    #[test]
    fn membership_plans_validate_rank_and_iteration_bounds() {
        assert!(MembershipPlan::crash(1, 4).validate(4, 8).is_ok());
        assert!(MembershipPlan::crash(4, 4).validate(4, 8).is_err());
        assert!(MembershipPlan::crash(1, 8).validate(4, 8).is_err());
        assert!(MembershipPlan::crash_then_rejoin(1, 2, 9)
            .validate(4, 8)
            .is_err());
        // A 2-rank cluster cannot survive any permanent loss...
        assert!(MembershipPlan::crash(0, 1).validate(2, 8).is_err());
        // ...but a crash paired with a rejoin is allowed to flap.
        assert!(MembershipPlan::crash_then_rejoin(0, 1, 3)
            .validate(3, 8)
            .is_ok());
    }
}

//! Deterministic discrete-event simulation engine.
//!
//! Every simulated component of the HiPress reproduction — cluster
//! nodes, NICs, GPU streams, the CaSync coordinator — runs on this
//! engine. The design is a minimal actor model:
//!
//! * time is a monotone integer nanosecond counter ([`SimTime`]),
//! * components are [`Actor`]s registered with the [`Engine`],
//! * all interaction is message passing: an actor handles one event at
//!   a time and may schedule future events for itself or others via
//!   the [`Ctx`] it receives,
//! * events at equal timestamps are delivered in schedule order
//!   (FIFO), making runs bit-reproducible,
//! * [`FifoResource`] models serially-shared hardware (a NIC
//!   direction, a GPU stream) as a busy-until timeline,
//! * [`Timeline`] records named busy intervals for utilization plots
//!   (Figure 9 of the paper).

#![forbid(unsafe_code)]

mod resource;
mod time;
mod timeline;

pub use resource::FifoResource;
pub use time::SimTime;
pub use timeline::{Timeline, TrackId};

use hipress_util::{Error, Result};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies an actor registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

/// A simulated component.
///
/// `M` is the simulation's message type, chosen by whoever assembles
/// the actor graph (the CaSync runtime defines one message enum for
/// the whole synchronization simulation).
pub trait Actor<M: 'static>: Any {
    /// Handles one delivered message at the current simulation time.
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, msg: M);
}

/// What an actor can do while handling an event: read the clock,
/// schedule messages, and record trace intervals.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ActorId,
    pending: &'a mut Vec<(SimTime, ActorId, M)>,
    timeline: &'a mut Timeline,
    stop_requested: &'a mut bool,
}

impl<M> Ctx<'_, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor handling this event.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Schedules `msg` for `target` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (event-ordering would break).
    pub fn send_at(&mut self, at: SimTime, target: ActorId, msg: M) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        self.pending.push((at, target, msg));
    }

    /// Schedules `msg` for `target` after `delay_ns` nanoseconds.
    pub fn send_after(&mut self, delay_ns: u64, target: ActorId, msg: M) {
        self.send_at(self.now + delay_ns, target, msg);
    }

    /// Schedules `msg` for the current actor after `delay_ns`.
    pub fn send_self_after(&mut self, delay_ns: u64, msg: M) {
        self.send_after(delay_ns, self.self_id, msg);
    }

    /// Schedules `msg` for `target` at the current time (delivered
    /// after all already-scheduled events at this time).
    pub fn send_now(&mut self, target: ActorId, msg: M) {
        self.send_at(self.now, target, msg);
    }

    /// The shared trace timeline.
    pub fn timeline(&mut self) -> &mut Timeline {
        self.timeline
    }

    /// Asks the engine to stop after this event is handled. Remaining
    /// queued events are discarded.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// Ordering key: earliest time first, then schedule order.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, u64);

/// The discrete-event engine: an event queue plus the actor registry.
pub struct Engine<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(Key, usize)>>,
    // Payloads are stored out-of-heap, indexed by the second tuple
    // element, so `M` needs no ordering.
    payloads: Vec<Option<(ActorId, M)>>,
    free_payload_slots: Vec<usize>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    timeline: Timeline,
    events_handled: u64,
    max_events: u64,
}

impl<M: 'static> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: 'static> Engine<M> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            free_payload_slots: Vec::new(),
            actors: Vec::new(),
            timeline: Timeline::new(),
            events_handled: 0,
            // A generous default backstop against runaway event loops.
            max_events: 200_000_000,
        }
    }

    /// Caps the total number of events the engine will process before
    /// reporting a runaway simulation.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Registers an actor and returns its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        self.actors.push(Some(actor));
        ActorId(self.actors.len() - 1)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// The shared trace timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Mutable access to the trace timeline (for registering tracks
    /// before the run).
    pub fn timeline_mut(&mut self) -> &mut Timeline {
        &mut self.timeline
    }

    /// Schedules `msg` for `target` at absolute time `at` (must not be
    /// in the past).
    ///
    /// # Panics
    ///
    /// Panics if `at < self.now()` or `target` is unknown.
    pub fn schedule(&mut self, at: SimTime, target: ActorId, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        assert!(target.0 < self.actors.len(), "unknown actor {target:?}");
        let slot = match self.free_payload_slots.pop() {
            Some(i) => {
                self.payloads[i] = Some((target, msg));
                i
            }
            None => {
                self.payloads.push(Some((target, msg)));
                self.payloads.len() - 1
            }
        };
        self.queue.push(Reverse((Key(at, self.seq), slot)));
        self.seq += 1;
    }

    /// Runs until the queue is empty, an actor calls [`Ctx::stop`], or
    /// `until` (if given) is passed. Returns the finish time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] if the event cap is exceeded, which
    /// indicates a livelocked simulation.
    pub fn run(&mut self, until: Option<SimTime>) -> Result<SimTime> {
        let mut pending: Vec<(SimTime, ActorId, M)> = Vec::new();
        let mut stop = false;
        while let Some(&Reverse((Key(at, _), slot))) = self.queue.peek() {
            if let Some(limit) = until {
                if at > limit {
                    self.now = limit;
                    return Ok(self.now);
                }
            }
            self.queue.pop();
            let (target, msg) = self.payloads[slot]
                .take()
                .expect("payload slot must be filled for queued event");
            self.free_payload_slots.push(slot);
            self.now = at;
            self.events_handled += 1;
            if self.events_handled > self.max_events {
                return Err(Error::sim(format!(
                    "event cap exceeded ({} events): livelocked simulation?",
                    self.max_events
                )));
            }
            // Take the actor out so it can receive a context borrowing
            // the engine's queue-side state.
            let mut actor = self.actors[target.0]
                .take()
                .unwrap_or_else(|| panic!("event for unregistered or re-entered actor {target:?}"));
            {
                let mut ctx = Ctx {
                    now: self.now,
                    self_id: target,
                    pending: &mut pending,
                    timeline: &mut self.timeline,
                    stop_requested: &mut stop,
                };
                actor.on_event(&mut ctx, msg);
            }
            self.actors[target.0] = Some(actor);
            for (at, target, msg) in pending.drain(..) {
                self.schedule(at, target, msg);
            }
            if stop {
                break;
            }
        }
        Ok(self.now)
    }

    /// Borrows a registered actor, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the type does not match.
    pub fn actor<T: Actor<M>>(&self, id: ActorId) -> &T {
        let boxed = self.actors[id.0]
            .as_ref()
            .expect("actor is present outside of dispatch");
        let any: &dyn Any = boxed.as_ref();
        any.downcast_ref::<T>().expect("actor type mismatch")
    }

    /// Mutably borrows a registered actor, downcast to its concrete
    /// type.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the type does not match.
    pub fn actor_mut<T: Actor<M>>(&mut self, id: ActorId) -> &mut T {
        let boxed = self.actors[id.0]
            .as_mut()
            .expect("actor is present outside of dispatch");
        let any: &mut dyn Any = boxed.as_mut();
        any.downcast_mut::<T>().expect("actor type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple ping-pong pair: each actor forwards the counter to the
    /// other with a 10ns delay, until it reaches zero.
    struct PingPong {
        peer: Option<ActorId>,
        received: Vec<(SimTime, u32)>,
    }

    impl Actor<u32> for PingPong {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
            self.received.push((ctx.now(), msg));
            if msg > 0 {
                let peer = self.peer.expect("peer wired");
                ctx.send_after(10, peer, msg - 1);
            }
        }
    }

    #[test]
    fn ping_pong_alternates() {
        let mut engine: Engine<u32> = Engine::new();
        let a = engine.add_actor(Box::new(PingPong {
            peer: None,
            received: vec![],
        }));
        let b = engine.add_actor(Box::new(PingPong {
            peer: None,
            received: vec![],
        }));
        engine.actor_mut::<PingPong>(a).peer = Some(b);
        engine.actor_mut::<PingPong>(b).peer = Some(a);
        engine.schedule(SimTime::ZERO, a, 5);
        let end = engine.run(None).unwrap();
        assert_eq!(end, SimTime::from_ns(50));
        let pa = engine.actor::<PingPong>(a);
        let pb = engine.actor::<PingPong>(b);
        assert_eq!(pa.received.len(), 3); // 5, 3, 1
        assert_eq!(pb.received.len(), 3); // 4, 2, 0
        assert_eq!(pa.received[0], (SimTime::ZERO, 5));
        assert_eq!(pb.received[2], (SimTime::from_ns(50), 0));
    }

    /// An actor that records delivery order of same-time events.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<u32>,
    }

    impl Actor<u32> for Recorder {
        fn on_event(&mut self, _ctx: &mut Ctx<'_, u32>, msg: u32) {
            self.seen.push(msg);
        }
    }

    #[test]
    fn same_time_events_fifo() {
        let mut engine: Engine<u32> = Engine::new();
        let r = engine.add_actor(Box::new(Recorder::default()));
        for i in 0..10 {
            engine.schedule(SimTime::from_ns(100), r, i);
        }
        engine.schedule(SimTime::from_ns(50), r, 100);
        engine.run(None).unwrap();
        let rec = engine.actor::<Recorder>(r);
        assert_eq!(rec.seen[0], 100);
        assert_eq!(&rec.seen[1..], &(0..10).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn until_limit_stops_cleanly() {
        let mut engine: Engine<u32> = Engine::new();
        let r = engine.add_actor(Box::new(Recorder::default()));
        engine.schedule(SimTime::from_ns(10), r, 1);
        engine.schedule(SimTime::from_ns(1000), r, 2);
        let t = engine.run(Some(SimTime::from_ns(500))).unwrap();
        assert_eq!(t, SimTime::from_ns(500));
        assert_eq!(engine.actor::<Recorder>(r).seen, vec![1]);
        // Resuming picks up the rest.
        let t = engine.run(None).unwrap();
        assert_eq!(t, SimTime::from_ns(1000));
        assert_eq!(engine.actor::<Recorder>(r).seen, vec![1, 2]);
    }

    /// Self-perpetuating actor for the runaway guard.
    struct Livelock;

    impl Actor<u32> for Livelock {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
            ctx.send_self_after(1, msg);
        }
    }

    #[test]
    fn event_cap_detects_livelock() {
        let mut engine: Engine<u32> = Engine::new();
        engine.set_max_events(1000);
        let a = engine.add_actor(Box::new(Livelock));
        engine.schedule(SimTime::ZERO, a, 0);
        assert!(engine.run(None).is_err());
    }

    /// An actor that stops the engine on the first event.
    struct Stopper {
        fired: bool,
    }

    impl Actor<u32> for Stopper {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
            self.fired = true;
            ctx.stop();
        }
    }

    #[test]
    fn stop_request_halts_engine() {
        let mut engine: Engine<u32> = Engine::new();
        let s = engine.add_actor(Box::new(Stopper { fired: false }));
        engine.schedule(SimTime::from_ns(5), s, 0);
        engine.schedule(SimTime::from_ns(10), s, 1);
        engine.run(None).unwrap();
        assert!(engine.actor::<Stopper>(s).fired);
        assert_eq!(engine.now(), SimTime::from_ns(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut engine: Engine<u32> = Engine::new();
        let r = engine.add_actor(Box::new(Recorder::default()));
        engine.schedule(SimTime::from_ns(10), r, 1);
        engine.run(None).unwrap();
        engine.schedule(SimTime::from_ns(5), r, 2);
    }

    #[test]
    fn deterministic_replay() {
        // Two identical engines process identical workloads with
        // identical event counts and end times.
        let build = || {
            let mut engine: Engine<u32> = Engine::new();
            let a = engine.add_actor(Box::new(PingPong {
                peer: None,
                received: vec![],
            }));
            let b = engine.add_actor(Box::new(PingPong {
                peer: None,
                received: vec![],
            }));
            engine.actor_mut::<PingPong>(a).peer = Some(b);
            engine.actor_mut::<PingPong>(b).peer = Some(a);
            engine.schedule(SimTime::ZERO, a, 100);
            engine.run(None).unwrap();
            (engine.events_handled(), engine.now())
        };
        assert_eq!(build(), build());
    }
}

//! Serially-shared hardware as a busy-until timeline.

use crate::SimTime;

/// A FIFO resource: something that serves one request at a time, in
/// arrival order — a NIC direction serializing packets, a GPU stream
/// executing kernels, a PCIe link moving copies.
///
/// `acquire` reserves the resource for a duration starting no earlier
/// than the request time, returning the actual `[start, end)` window.
/// Total busy time is tracked for utilization reporting.
#[derive(Debug, Clone)]
pub struct FifoResource {
    free_at: SimTime,
    busy_ns: u64,
    served: u64,
}

impl Default for FifoResource {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self {
            free_at: SimTime::ZERO,
            busy_ns: 0,
            served: 0,
        }
    }

    /// Reserves the resource for `duration_ns` starting at or after
    /// `now`. Returns the scheduled `(start, end)`.
    pub fn acquire(&mut self, now: SimTime, duration_ns: u64) -> (SimTime, SimTime) {
        let start = now.max(self.free_at);
        let end = start + duration_ns;
        self.free_at = end;
        self.busy_ns += duration_ns;
        self.served += 1;
        (start, end)
    }

    /// Reserves the resource for `[start, start + duration_ns)` where
    /// `start` was computed externally (e.g., coordinated across two
    /// resources by the network fabric).
    ///
    /// # Panics
    ///
    /// Panics if `start` precedes the resource's free time — that
    /// would overlap an existing reservation.
    pub fn reserve(&mut self, start: SimTime, duration_ns: u64) -> (SimTime, SimTime) {
        assert!(
            start >= self.free_at,
            "reservation at {start:?} overlaps busy-until {:?}",
            self.free_at
        );
        let end = start + duration_ns;
        self.free_at = end;
        self.busy_ns += duration_ns;
        self.served += 1;
        (start, end)
    }

    /// Earliest time a new request issued at `now` would start.
    pub fn next_free(&self, now: SimTime) -> SimTime {
        now.max(self.free_at)
    }

    /// Whether the resource would be idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total reserved (busy) nanoseconds.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over `[0, horizon)` as a fraction in `[0, 1]`.
    ///
    /// Returns 0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_ns as f64 / horizon.as_ns() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = FifoResource::new();
        let (s, e) = r.acquire(SimTime::from_ns(100), 50);
        assert_eq!(s, SimTime::from_ns(100));
        assert_eq!(e, SimTime::from_ns(150));
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = FifoResource::new();
        r.acquire(SimTime::ZERO, 100);
        // A request arriving at t=10 waits until t=100.
        let (s, e) = r.acquire(SimTime::from_ns(10), 20);
        assert_eq!(s, SimTime::from_ns(100));
        assert_eq!(e, SimTime::from_ns(120));
        // A later request after the backlog drains starts immediately.
        let (s, _) = r.acquire(SimTime::from_ns(500), 10);
        assert_eq!(s, SimTime::from_ns(500));
    }

    #[test]
    fn accounting() {
        let mut r = FifoResource::new();
        r.acquire(SimTime::ZERO, 100);
        r.acquire(SimTime::ZERO, 300);
        assert_eq!(r.busy_ns(), 400);
        assert_eq!(r.served(), 2);
        assert!((r.utilization(SimTime::from_ns(800)) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
        // Utilization is capped at 1 even while backlogged.
        assert_eq!(r.utilization(SimTime::from_ns(100)), 1.0);
    }

    #[test]
    fn next_free_and_idle() {
        let mut r = FifoResource::new();
        assert!(r.is_idle_at(SimTime::ZERO));
        r.acquire(SimTime::ZERO, 100);
        assert!(!r.is_idle_at(SimTime::from_ns(50)));
        assert!(r.is_idle_at(SimTime::from_ns(100)));
        assert_eq!(r.next_free(SimTime::from_ns(10)), SimTime::from_ns(100));
        assert_eq!(r.next_free(SimTime::from_ns(200)), SimTime::from_ns(200));
    }

    #[test]
    fn zero_duration_request() {
        let mut r = FifoResource::new();
        let (s, e) = r.acquire(SimTime::from_ns(5), 0);
        assert_eq!(s, e);
        assert_eq!(r.busy_ns(), 0);
    }
}

//! Busy-interval tracing for utilization analysis.
//!
//! Figure 9 of the paper compares GPU utilization timelines between
//! Ring-allreduce and HiPress. Simulated components record their busy
//! intervals on named tracks here; the analysis side computes
//! utilization and renders textual timelines.

use crate::SimTime;

/// Identifies a registered track (one per traced component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(usize);

/// A recorded busy interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Interval start.
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
}

/// A named collection of busy intervals per component.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    names: Vec<String>,
    intervals: Vec<Vec<Interval>>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a track by name.
    pub fn track(&mut self, name: &str) -> TrackId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return TrackId(i);
        }
        self.names.push(name.to_string());
        self.intervals.push(Vec::new());
        TrackId(self.names.len() - 1)
    }

    /// Looks up an existing track by name.
    pub fn find_track(&self, name: &str) -> Option<TrackId> {
        self.names.iter().position(|n| n == name).map(TrackId)
    }

    /// Records a busy interval on `track`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record(&mut self, track: TrackId, start: SimTime, end: SimTime) {
        assert!(end >= start, "interval must not be reversed");
        if end > start {
            self.intervals[track.0].push(Interval { start, end });
        }
    }

    /// All intervals recorded on `track`, in recording order.
    pub fn intervals(&self, track: TrackId) -> &[Interval] {
        &self.intervals[track.0]
    }

    /// Track names in registration order.
    pub fn tracks(&self) -> impl Iterator<Item = (TrackId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TrackId(i), n.as_str()))
    }

    /// Total busy nanoseconds on `track`, merging overlapping
    /// intervals so concurrent kernels are not double counted.
    pub fn busy_ns(&self, track: TrackId) -> u64 {
        let mut iv: Vec<Interval> = self.intervals[track.0].clone();
        iv.sort_by_key(|i| i.start);
        let mut total = 0u64;
        let mut cur: Option<Interval> = None;
        for i in iv {
            match &mut cur {
                None => cur = Some(i),
                Some(c) => {
                    if i.start <= c.end {
                        c.end = c.end.max(i.end);
                    } else {
                        total += c.end - c.start;
                        cur = Some(i);
                    }
                }
            }
        }
        if let Some(c) = cur {
            total += c.end - c.start;
        }
        total
    }

    /// Utilization of `track` over `[0, horizon)`.
    pub fn utilization(&self, track: TrackId, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_ns(track) as f64 / horizon.as_ns() as f64
    }

    /// Samples the busy fraction of `track` in `buckets` equal slices
    /// of `[0, horizon)` — the data behind a utilization-over-time
    /// plot like Figure 9.
    pub fn utilization_curve(&self, track: TrackId, horizon: SimTime, buckets: usize) -> Vec<f64> {
        assert!(buckets > 0, "need at least one bucket");
        let width = (horizon.as_ns() as f64 / buckets as f64).max(1.0);
        let mut busy = vec![0.0f64; buckets];
        for iv in &self.intervals[track.0] {
            let (s, e) = (iv.start.as_ns() as f64, iv.end.as_ns() as f64);
            let first = ((s / width).floor() as usize).min(buckets - 1);
            let last = ((e / width).ceil() as usize).min(buckets);
            for (b, slot) in busy.iter_mut().enumerate().take(last).skip(first) {
                let blo = b as f64 * width;
                let bhi = blo + width;
                let overlap = (e.min(bhi) - s.max(blo)).max(0.0);
                *slot += overlap;
            }
        }
        busy.into_iter().map(|b| (b / width).min(1.0)).collect()
    }

    /// Lowers the timeline into the unified trace model: one thread
    /// track per component, one `busy`-category span per recorded
    /// interval. The result exports to Chrome trace JSON and renders
    /// next to CaSync-RT traces through `hipress-trace`'s views.
    pub fn to_trace(&self, process: &str) -> hipress_trace::Trace {
        let mut trace = hipress_trace::Trace::new(process);
        for (id, name) in self.tracks() {
            let track = trace.thread_track(name);
            for iv in self.intervals(id) {
                trace.push_span(
                    track,
                    "busy",
                    "busy",
                    iv.start.as_ns(),
                    iv.end.as_ns() - iv.start.as_ns(),
                    &[],
                );
            }
        }
        trace
    }

    /// Lowers the timeline into a metrics scope: every busy interval
    /// on every track lands in a `busy_ns` histogram labelled
    /// `track=<name>`, and each track's merged total goes to a
    /// `busy_ns_total{track=...}` gauge. The names follow the shared
    /// catalogue in `hipress-metrics::names`, so a simulated
    /// utilization profile diffs directly against any other snapshot.
    pub fn record_metrics(&self, scope: &hipress_metrics::Scope) {
        for (id, name) in self.tracks() {
            let labels = [("track", name)];
            let hist = scope.histogram(hipress_metrics::names::BUSY_NS, &labels);
            for iv in self.intervals(id) {
                hist.record(iv.end.as_ns() - iv.start.as_ns());
            }
            scope
                .gauge("busy_ns_total", &labels)
                .set(self.busy_ns(id) as f64);
        }
    }

    /// Renders `track` as an ASCII strip (`#` busy, `.` idle), one
    /// character per bucket — a quick-look Figure 9.
    pub fn ascii_strip(&self, track: TrackId, horizon: SimTime, buckets: usize) -> String {
        self.utilization_curve(track, horizon, buckets)
            .into_iter()
            .map(|u| {
                if u > 0.66 {
                    '#'
                } else if u > 0.33 {
                    '+'
                } else if u > 0.01 {
                    '-'
                } else {
                    '.'
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_registration_is_idempotent() {
        let mut t = Timeline::new();
        let a = t.track("gpu0");
        let b = t.track("gpu0");
        assert_eq!(a, b);
        assert_eq!(t.find_track("gpu0"), Some(a));
        assert_eq!(t.find_track("gpu1"), None);
    }

    #[test]
    fn busy_merges_overlaps() {
        let mut t = Timeline::new();
        let g = t.track("g");
        t.record(g, SimTime::from_ns(0), SimTime::from_ns(100));
        t.record(g, SimTime::from_ns(50), SimTime::from_ns(150));
        t.record(g, SimTime::from_ns(300), SimTime::from_ns(400));
        assert_eq!(t.busy_ns(g), 150 + 100);
        assert!((t.utilization(g, SimTime::from_ns(500)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_length_intervals_ignored() {
        let mut t = Timeline::new();
        let g = t.track("g");
        t.record(g, SimTime::from_ns(10), SimTime::from_ns(10));
        assert_eq!(t.intervals(g).len(), 0);
        assert_eq!(t.busy_ns(g), 0);
    }

    #[test]
    fn utilization_curve_localizes_busy_time() {
        let mut t = Timeline::new();
        let g = t.track("g");
        // Busy during the first half only.
        t.record(g, SimTime::ZERO, SimTime::from_ns(500));
        let curve = t.utilization_curve(g, SimTime::from_ns(1000), 10);
        assert_eq!(curve.len(), 10);
        for &u in &curve[..5] {
            assert!((u - 1.0).abs() < 1e-9);
        }
        for &u in &curve[5..] {
            assert!(u.abs() < 1e-9);
        }
    }

    #[test]
    fn ascii_strip_shape() {
        let mut t = Timeline::new();
        let g = t.track("g");
        t.record(g, SimTime::ZERO, SimTime::from_ns(250));
        let strip = t.ascii_strip(g, SimTime::from_ns(1000), 4);
        assert_eq!(strip, "#...");
    }

    #[test]
    fn to_trace_preserves_tracks_and_intervals() {
        let mut t = Timeline::new();
        let g = t.track("gpu0");
        let u = t.track("uplink0");
        t.record(g, SimTime::from_ns(10), SimTime::from_ns(40));
        t.record(u, SimTime::from_ns(40), SimTime::from_ns(90));
        let trace = t.to_trace("sim");
        assert_eq!(trace.process, "sim");
        let names: Vec<_> = trace.tracks().iter().map(|tr| tr.name.as_str()).collect();
        assert_eq!(names, vec!["gpu0", "uplink0"]);
        let spans: Vec<_> = trace.events_of("busy").collect();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].ts_ns, spans[0].dur_ns), (10, 30));
        assert_eq!((spans[1].ts_ns, spans[1].dur_ns), (40, 50));
    }

    #[test]
    fn record_metrics_matches_busy_totals() {
        let mut t = Timeline::new();
        let g = t.track("gpu0");
        let u = t.track("uplink0");
        t.record(g, SimTime::from_ns(0), SimTime::from_ns(100));
        t.record(g, SimTime::from_ns(50), SimTime::from_ns(150));
        t.record(u, SimTime::from_ns(200), SimTime::from_ns(260));
        let registry = hipress_metrics::Registry::new();
        t.record_metrics(&registry.root());
        let snap = registry.snapshot();
        // Histogram sums count raw interval durations; the gauge
        // carries the overlap-merged busy total.
        let (count, sum) = snap.hist_totals(hipress_metrics::names::BUSY_NS);
        assert_eq!(count, 3);
        assert_eq!(sum, 100 + 100 + 60);
        let gauges: Vec<f64> = snap
            .iter()
            .filter(|(k, _)| k.name == "busy_ns_total")
            .map(|(_, v)| v.scalar())
            .collect();
        assert_eq!(gauges, vec![150.0, 60.0]);
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn reversed_interval_panics() {
        let mut t = Timeline::new();
        let g = t.track("g");
        t.record(g, SimTime::from_ns(10), SimTime::from_ns(5));
    }
}

//! Simulation time: integer nanoseconds since the start of the run.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds.
///
/// Integer nanoseconds keep the simulation exactly reproducible (no
/// floating-point drift) while being fine-grained enough for both
/// microsecond-scale kernel launches and multi-second training epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from (possibly fractional) seconds, rounding to
    /// the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "time must be non-negative");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(&self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier` in nanoseconds.
    pub fn since(&self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of the two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    /// Difference in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", hipress_util::units::fmt_ns(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(3), SimTime::from_ns(3_000));
        assert_eq!(SimTime::from_ms(2), SimTime::from_ns(2_000_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_ns(1_500_000_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100);
        assert_eq!(t + 50, SimTime::from_ns(150));
        assert_eq!(SimTime::from_ns(150) - t, 50);
        assert_eq!(t.since(SimTime::from_ns(200)), 0); // Saturates.
        assert_eq!(SimTime::from_ns(200).since(t), 100);
        let mut u = t;
        u += 10;
        assert_eq!(u.as_ns(), 110);
    }

    #[test]
    fn conversions() {
        let t = SimTime::from_ms(1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn display_uses_adaptive_units() {
        assert_eq!(SimTime::from_ns(500).to_string(), "500 ns");
        assert_eq!(SimTime::from_ms(3).to_string(), "3.000 ms");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        SimTime::from_secs_f64(-1.0);
    }
}

//! The byte-level codec: little-endian primitive writers and readers
//! with structured, panic-free decode errors.
//!
//! Every wire structure in the workspace — frames, runtime messages,
//! process-coordinator envelopes — serializes through [`Writer`] and
//! parses through [`Reader`]. The reader *never* panics and never
//! allocates more than the input holds: length prefixes are validated
//! against the remaining input before any allocation, so truncated,
//! bit-flipped, or garbage inputs yield a [`DecodeError`], not an
//! abort or an out-of-memory hang.

use std::fmt;

/// A structured decode failure. Every variant names what went wrong
/// so protocol layers can distinguish framing damage (retransmit)
/// from version skew (abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a field: `needed` more bytes, `left`
    /// remained.
    Truncated {
        /// Bytes the next field required.
        needed: usize,
        /// Bytes actually remaining.
        left: usize,
    },
    /// The frame did not start with the fabric magic.
    BadMagic(u32),
    /// The frame's protocol version is not one this build speaks.
    BadVersion(u16),
    /// An unknown frame kind byte.
    BadKind(u8),
    /// An enum tag no variant claims; `what` names the enum.
    BadTag {
        /// The enum being decoded.
        what: &'static str,
        /// The unrecognized tag value.
        tag: u64,
    },
    /// A declared length exceeds the fabric's frame-size ceiling.
    FrameTooLarge(u64),
    /// The value decoded cleanly but input bytes were left over.
    TrailingBytes(usize),
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, left } => {
                write!(f, "truncated: needed {needed} bytes, {left} left")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            DecodeError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds the ceiling"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::BadUtf8 => write!(f, "length-prefixed string is not UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends little-endian primitives to a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f32` (bit pattern, so NaNs
    /// round-trip bit-exactly).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a little-endian IEEE-754 `f64` (bit pattern).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` element-count prefix followed by each `f32`.
    pub fn put_f32s(&mut self, v: &[f32]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Parses little-endian primitives from a byte slice, returning
/// [`DecodeError::Truncated`] instead of panicking when input runs
/// out.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                left: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a little-endian `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed byte string. The declared length
    /// is validated against the remaining input *before* any
    /// allocation, so a flipped length byte cannot trigger a huge
    /// allocation.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when the prefix or body runs past
    /// the input.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a `u32`-count-prefixed `f32` vector (same pre-allocation
    /// validation as [`Self::bytes`]).
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when the prefix or body runs past
    /// the input.
    pub fn f32s(&mut self) -> Result<Vec<f32>, DecodeError> {
        let n = self.u32()? as usize;
        let raw = self.take(n.saturating_mul(4))?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input,
    /// [`DecodeError::BadUtf8`] on invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| DecodeError::BadUtf8)
    }

    /// Asserts the input was fully consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TrailingBytes`] when bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-0.5);
        w.put_f64(f64::NAN);
        w.put_bytes(b"abc");
        w.put_f32s(&[1.0, f32::NEG_INFINITY]);
        w.put_str("hé");
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap(), -0.5);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.bytes().unwrap(), b"abc");
        let v = r.f32s().unwrap();
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], f32::NEG_INFINITY);
        assert_eq!(r.str().unwrap(), "hé");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_structured() {
        let mut w = Writer::new();
        w.put_bytes(&[1, 2, 3, 4, 5]);
        let buf = w.into_vec();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(matches!(r.bytes(), Err(DecodeError::Truncated { .. })));
        }
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // A length prefix claiming 4 GiB with 2 bytes of body must be
        // rejected before any allocation happens.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        w.put_u8(0);
        w.put_u8(0);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes(), Err(DecodeError::Truncated { .. })));
        let mut r = Reader::new(&buf);
        assert!(matches!(r.f32s(), Err(DecodeError::Truncated { .. })));
    }
}

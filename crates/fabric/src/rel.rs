//! Per-link reliability over frames: bounded retransmission with
//! exponential backoff on the send side, verify-then-dedup on the
//! receive side, heartbeats on idle links.
//!
//! This is the chaos envelope protocol promoted to the framing layer:
//! the same seq/ack/nack/retry discipline the in-process
//! fault-tolerant runtime runs over channels, restated over
//! [`Frame`]s so the socket fabric (and anything else that moves
//! frames) gets it for free. TCP already retransmits lost segments,
//! but it cannot detect payload corruption above the transport or
//! survive a deliberately faulty link in tests — the frame layer's
//! checksums and nacks can, and the discipline is what the chaos
//! fabric exercises deterministically.

use crate::frame::{Frame, FrameKind};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Retry, backoff, and heartbeat knobs for one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTuning {
    /// Retransmissions allowed per frame before the link is declared
    /// dead.
    pub retry_budget: u32,
    /// First retransmission timeout; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on the per-attempt backoff.
    pub max_backoff: Duration,
    /// Idle interval after which a ping is sent.
    pub heartbeat: Duration,
}

impl Default for LinkTuning {
    fn default() -> Self {
        Self {
            retry_budget: 8,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            heartbeat: Duration::from_millis(25),
        }
    }
}

/// A link whose retry budget ran out: `seq` went unacknowledged for
/// `attempts` sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDead {
    /// The sequence number that exhausted the budget.
    pub seq: u64,
    /// Total send attempts made.
    pub attempts: u32,
}

/// Send-side reliability state for one directed link.
#[derive(Debug)]
pub struct RelTx {
    src: u32,
    next_seq: u64,
    tuning: LinkTuning,
    /// seq → (frame, next retransmission deadline).
    pending: HashMap<u64, (Frame, Instant)>,
    /// Retransmissions performed (for fabric counters).
    retransmits: u64,
    last_sent: Instant,
}

fn rto(tuning: &LinkTuning, attempt: u32) -> Duration {
    tuning
        .base_backoff
        .saturating_mul(1 << attempt.min(16))
        .min(tuning.max_backoff)
}

impl RelTx {
    /// Send state for frames originating at rank `src`.
    pub fn new(src: u32, tuning: LinkTuning, now: Instant) -> Self {
        Self {
            src,
            next_seq: 0,
            tuning,
            pending: HashMap::new(),
            retransmits: 0,
            last_sent: now,
        }
    }

    /// Wraps `payload` in the next data frame and retains it for
    /// retransmission until acknowledged.
    pub fn prepare(&mut self, payload: Vec<u8>, now: Instant) -> Frame {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = Frame::new(FrameKind::Data, self.src, seq, payload);
        self.pending
            .insert(seq, (frame.clone(), now + rto(&self.tuning, 0)));
        self.last_sent = now;
        frame
    }

    /// Clears `seq` from the retransmission set. Returns whether the
    /// ack matched an outstanding frame.
    pub fn on_ack(&mut self, seq: u64) -> bool {
        self.pending.remove(&seq).is_some()
    }

    /// Answers a nack: an immediate retransmission of `seq` (attempt
    /// bumped), or `Ok(None)` when the seq is no longer outstanding.
    ///
    /// # Errors
    ///
    /// [`LinkDead`] when the retry budget is exhausted.
    pub fn on_nack(&mut self, seq: u64, now: Instant) -> Result<Option<Frame>, LinkDead> {
        let Some((frame, deadline)) = self.pending.get_mut(&seq) else {
            return Ok(None);
        };
        if frame.attempt >= self.tuning.retry_budget {
            return Err(LinkDead {
                seq,
                attempts: frame.attempt + 1,
            });
        }
        frame.attempt += 1;
        let attempt = frame.attempt;
        *deadline = now + rto(&self.tuning, attempt);
        self.retransmits += 1;
        self.last_sent = now;
        Ok(Some(frame.clone()))
    }

    /// Collects timer-driven retransmissions due at `now`.
    ///
    /// # Errors
    ///
    /// [`LinkDead`] when any frame exhausts the retry budget.
    pub fn due(&mut self, now: Instant) -> Result<Vec<Frame>, LinkDead> {
        let mut out = Vec::new();
        let mut dead: Option<LinkDead> = None;
        for (&seq, (frame, deadline)) in self.pending.iter_mut() {
            if *deadline > now {
                continue;
            }
            if frame.attempt >= self.tuning.retry_budget {
                dead = Some(LinkDead {
                    seq,
                    attempts: frame.attempt + 1,
                });
                break;
            }
            frame.attempt += 1;
            *deadline = now + rto(&self.tuning, frame.attempt);
            out.push(frame.clone());
        }
        if let Some(d) = dead {
            return Err(d);
        }
        if !out.is_empty() {
            self.retransmits += out.len() as u64;
            self.last_sent = now;
        }
        Ok(out)
    }

    /// A heartbeat ping when the link has been idle past the tuning's
    /// heartbeat interval; `None` otherwise.
    pub fn heartbeat(&mut self, now: Instant) -> Option<Frame> {
        if now.duration_since(self.last_sent) >= self.tuning.heartbeat {
            self.last_sent = now;
            return Some(Frame::control(FrameKind::Ping, self.src, 0));
        }
        None
    }

    /// True when nothing awaits acknowledgement.
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// Retransmissions performed so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }
}

/// What the receive side decided about an arriving data frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxVerdict {
    /// Intact and new: deliver the payload, send an ack.
    Deliver,
    /// Intact but already seen (a retransmission raced its ack):
    /// re-ack, do not re-deliver.
    Duplicate,
    /// The checksum does not match: request a retransmission.
    Corrupt,
}

/// Receive-side reliability state for one directed link:
/// verify-then-dedup, in that order — a corrupt frame is *not* marked
/// seen, so its clean retransmission still delivers.
#[derive(Debug, Default)]
pub struct RelRx {
    seen: HashSet<u64>,
}

impl RelRx {
    /// Fresh receive state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Judges one arriving data frame.
    pub fn accept(&mut self, frame: &Frame) -> RxVerdict {
        if !frame.verify() {
            return RxVerdict::Corrupt;
        }
        if !self.seen.insert(frame.seq) {
            return RxVerdict::Duplicate;
        }
        RxVerdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuning() -> LinkTuning {
        LinkTuning {
            retry_budget: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            heartbeat: Duration::from_millis(5),
        }
    }

    #[test]
    fn ack_clears_pending() {
        let now = Instant::now();
        let mut tx = RelTx::new(0, tuning(), now);
        let f = tx.prepare(vec![1, 2, 3], now);
        assert!(!tx.idle());
        assert!(tx.on_ack(f.seq));
        assert!(tx.idle());
        assert!(!tx.on_ack(f.seq));
    }

    #[test]
    fn nack_resends_until_budget_then_dead() {
        let now = Instant::now();
        let mut tx = RelTx::new(0, tuning(), now);
        let f = tx.prepare(vec![9], now);
        let r1 = tx.on_nack(f.seq, now).unwrap().unwrap();
        assert_eq!(r1.attempt, 1);
        let r2 = tx.on_nack(f.seq, now).unwrap().unwrap();
        assert_eq!(r2.attempt, 2);
        assert!(tx.on_nack(f.seq, now).is_err());
        assert_eq!(tx.retransmits(), 2);
    }

    #[test]
    fn timer_retransmits_when_due() {
        let now = Instant::now();
        let mut tx = RelTx::new(0, tuning(), now);
        let f = tx.prepare(vec![7], now);
        assert!(tx.due(now).unwrap().is_empty());
        let later = now + Duration::from_millis(2);
        let resent = tx.due(later).unwrap();
        assert_eq!(resent.len(), 1);
        assert_eq!(resent[0].seq, f.seq);
        assert_eq!(resent[0].attempt, 1);
    }

    #[test]
    fn rx_verifies_then_dedups() {
        let now = Instant::now();
        let mut tx = RelTx::new(0, tuning(), now);
        let mut rx = RelRx::new();
        let mut f = tx.prepare(vec![1, 2, 3, 4], now);
        let clean = f.clone();
        use hipress_chaos::Wire;
        f.flip_bit(3);
        // Corrupt first: nacked, and *not* marked seen.
        assert_eq!(rx.accept(&f), RxVerdict::Corrupt);
        // Clean retransmission still delivers.
        assert_eq!(rx.accept(&clean), RxVerdict::Deliver);
        assert_eq!(rx.accept(&clean), RxVerdict::Duplicate);
    }

    #[test]
    fn heartbeat_fires_on_idle_only() {
        let now = Instant::now();
        let mut tx = RelTx::new(3, tuning(), now);
        assert!(tx.heartbeat(now).is_none());
        let ping = tx.heartbeat(now + Duration::from_millis(6)).unwrap();
        assert_eq!(ping.kind, FrameKind::Ping);
        assert_eq!(ping.src, 3);
    }
}

//! The flight recorder: an always-on, fixed-size, lock-free ring of
//! protocol events.
//!
//! Every rank on the socket fabric keeps the last few hundred
//! frame-level events — data sends and deliveries, acks, nacks,
//! retransmissions, heartbeats, peer losses — in a ring of atomic
//! slots. Recording is a handful of relaxed atomic stores on the hot
//! path (no lock, no allocation, no syscall beyond the monotonic
//! clock read), cheap enough to leave on for every run. When a
//! synchronization fails, the coordinator collects each rank's ring
//! and `hipress postmortem` renders the merged, clock-corrected
//! last-seconds narrative that ends at the root cause.
//!
//! Concurrency contract: writers claim a slot with one
//! `fetch_add` on the global cursor, store the event fields relaxed,
//! then publish the slot's stamp (cursor value + 1) with a release
//! store. [`FlightRecorder::dump`] acquires stamps and skips empty
//! slots. A dump racing an active writer may observe one slot
//! mid-overwrite (mixed fields from two events); dumps are taken
//! after a failure, when the fabric has gone quiet, so in practice
//! the ring is stable — and a torn slot can at worst mislabel one
//! event, never corrupt memory or panic.

use crate::codec::{DecodeError, Reader, Writer};
use crate::WireMsg;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default number of events one ring retains.
pub const DEFAULT_CAPACITY: usize = 256;

/// What a recorded protocol event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A data frame was handed to the transport.
    SendData,
    /// An intact, first-delivery data frame arrived.
    RecvData,
    /// An intact but already-seen data frame arrived (re-acked).
    DupData,
    /// A data frame arrived with a bad checksum (nacked).
    CorruptData,
    /// An ack was sent for a received data frame.
    AckSent,
    /// An ack arrived, clearing a pending frame.
    AckRecv,
    /// A nack was sent, requesting retransmission.
    NackSent,
    /// A nack arrived; the frame will be retransmitted.
    NackRecv,
    /// A frame was retransmitted (nack- or timer-driven).
    Retransmit,
    /// A liveness ping was sent on an idle link.
    HeartbeatSent,
    /// A liveness ping arrived.
    HeartbeatRecv,
    /// The peer's stream closed or failed.
    PeerLost,
    /// A mesh-construction Hello was exchanged.
    Hello,
    /// A runtime-level decision (e.g. a degrade verdict) noted into
    /// the ring by a layer above the fabric.
    Mark,
}

impl FlightKind {
    fn tag(self) -> u8 {
        match self {
            FlightKind::SendData => 1,
            FlightKind::RecvData => 2,
            FlightKind::DupData => 3,
            FlightKind::CorruptData => 4,
            FlightKind::AckSent => 5,
            FlightKind::AckRecv => 6,
            FlightKind::NackSent => 7,
            FlightKind::NackRecv => 8,
            FlightKind::Retransmit => 9,
            FlightKind::HeartbeatSent => 10,
            FlightKind::HeartbeatRecv => 11,
            FlightKind::PeerLost => 12,
            FlightKind::Hello => 13,
            FlightKind::Mark => 14,
        }
    }

    fn from_tag(t: u8) -> Result<Self, DecodeError> {
        Ok(match t {
            1 => FlightKind::SendData,
            2 => FlightKind::RecvData,
            3 => FlightKind::DupData,
            4 => FlightKind::CorruptData,
            5 => FlightKind::AckSent,
            6 => FlightKind::AckRecv,
            7 => FlightKind::NackSent,
            8 => FlightKind::NackRecv,
            9 => FlightKind::Retransmit,
            10 => FlightKind::HeartbeatSent,
            11 => FlightKind::HeartbeatRecv,
            12 => FlightKind::PeerLost,
            13 => FlightKind::Hello,
            14 => FlightKind::Mark,
            other => {
                return Err(DecodeError::BadTag {
                    what: "FlightKind",
                    tag: u64::from(other),
                })
            }
        })
    }

    /// A short human label for postmortem rendering.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::SendData => "send",
            FlightKind::RecvData => "recv",
            FlightKind::DupData => "dup",
            FlightKind::CorruptData => "corrupt",
            FlightKind::AckSent => "ack-sent",
            FlightKind::AckRecv => "ack-recv",
            FlightKind::NackSent => "nack-sent",
            FlightKind::NackRecv => "nack-recv",
            FlightKind::Retransmit => "retransmit",
            FlightKind::HeartbeatSent => "ping-sent",
            FlightKind::HeartbeatRecv => "ping-recv",
            FlightKind::PeerLost => "peer-lost",
            FlightKind::Hello => "hello",
            FlightKind::Mark => "mark",
        }
    }
}

/// One event read back out of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the recorder's epoch (the owning process's
    /// trace epoch, so flight events and trace spans share one clock).
    pub ts_ns: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The peer rank involved (the far end of the link).
    pub peer: u32,
    /// The frame sequence number involved, when one applies.
    pub seq: u64,
    /// Payload bytes involved, when they apply.
    pub bytes: u64,
}

impl WireMsg for FlightEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.ts_ns);
        w.put_u8(self.kind.tag());
        w.put_u32(self.peer);
        w.put_u64(self.seq);
        w.put_u64(self.bytes);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FlightEvent {
            ts_ns: r.u64()?,
            kind: FlightKind::from_tag(r.u8()?)?,
            peer: r.u32()?,
            seq: r.u64()?,
            bytes: r.u64()?,
        })
    }
}

/// One ring slot. `stamp` is the claiming cursor value plus one (so
/// zero means never written) and is stored last, with release
/// ordering, to publish the other fields.
#[derive(Debug, Default)]
struct Slot {
    stamp: AtomicU64,
    ts_ns: AtomicU64,
    /// `kind` tag in the high 32 bits, peer rank in the low 32.
    meta: AtomicU64,
    seq: AtomicU64,
    bytes: AtomicU64,
}

/// The lock-free event ring. Shared as an `Arc` between the link's
/// send path, its reader threads, and the process runtime.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

impl FlightRecorder {
    /// A ring of [`DEFAULT_CAPACITY`] events timestamped against
    /// `epoch` — pass the process's trace epoch so flight events and
    /// trace spans share one clock.
    pub fn new(epoch: Instant) -> Self {
        Self::with_capacity(epoch, DEFAULT_CAPACITY)
    }

    /// A ring of `capacity` events (minimum 1).
    pub fn with_capacity(epoch: Instant, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            epoch,
            cursor: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::default()).collect(),
        }
    }

    /// The epoch event timestamps count from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records one event. Lock-free: one `fetch_add` plus five
    /// relaxed/release stores.
    pub fn record(&self, kind: FlightKind, peer: u32, seq: u64, bytes: u64) {
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.meta.store(
            (u64::from(kind.tag()) << 32) | u64::from(peer),
            Ordering::Relaxed,
        );
        slot.seq.store(seq, Ordering::Relaxed);
        slot.bytes.store(bytes, Ordering::Relaxed);
        slot.stamp.store(idx + 1, Ordering::Release);
    }

    /// Total events recorded over the ring's lifetime (not just the
    /// ones still retained).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Reads the retained events oldest-first. Slots whose kind tag
    /// was torn by a racing writer are skipped rather than
    /// misreported.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut stamped: Vec<(u64, FlightEvent)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == 0 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let Ok(kind) = FlightKind::from_tag((meta >> 32) as u8) else {
                continue;
            };
            stamped.push((
                stamp,
                FlightEvent {
                    ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                    kind,
                    peer: meta as u32,
                    seq: slot.seq.load(Ordering::Relaxed),
                    bytes: slot.bytes.load(Ordering::Relaxed),
                },
            ));
        }
        stamped.sort_unstable_by_key(|&(stamp, _)| stamp);
        stamped.into_iter().map(|(_, ev)| ev).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn retains_the_last_capacity_events_in_order() {
        let rec = FlightRecorder::with_capacity(Instant::now(), 8);
        for i in 0..20u64 {
            rec.record(FlightKind::SendData, (i % 3) as u32, i, i * 10);
        }
        let events = rec.dump();
        assert_eq!(events.len(), 8);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        assert_eq!(rec.recorded(), 20);
        // Timestamps are monotone within one writer.
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn empty_ring_dumps_empty() {
        let rec = FlightRecorder::new(Instant::now());
        assert!(rec.dump().is_empty());
        assert_eq!(rec.recorded(), 0);
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring() {
        let rec = Arc::new(FlightRecorder::with_capacity(Instant::now(), 64));
        let mut joins = Vec::new();
        for t in 0..4u32 {
            let rec = Arc::clone(&rec);
            joins.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    rec.record(FlightKind::RecvData, t, i, 0);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(rec.recorded(), 2000);
        let events = rec.dump();
        assert_eq!(events.len(), 64);
        for e in &events {
            assert!(e.peer < 4);
            assert!(e.seq < 500);
            assert_eq!(e.kind, FlightKind::RecvData);
        }
    }

    #[test]
    fn flight_event_round_trips_through_the_codec() {
        let ev = FlightEvent {
            ts_ns: 123_456_789,
            kind: FlightKind::Retransmit,
            peer: 3,
            seq: u64::MAX - 5,
            bytes: 4096,
        };
        let back = FlightEvent::from_bytes(&ev.to_bytes()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn every_kind_tag_round_trips() {
        for tag in 1..=14u8 {
            let kind = FlightKind::from_tag(tag).unwrap();
            assert_eq!(kind.tag(), tag);
            assert!(!kind.label().is_empty());
        }
        assert!(FlightKind::from_tag(0).is_err());
        assert!(FlightKind::from_tag(15).is_err());
    }
}

//! The in-process channel fabric: `std::sync::mpsc` moving messages
//! by value, exactly as the thread engine's original fabric did. No
//! serialization, no framing, no copies beyond the send itself — the
//! zero-overhead baseline the framed TCP fabric is measured against.

use crate::{Fabric, FabricError, Link, LinkCounters};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::Duration;

/// One node's endpoint on the channel fabric.
#[derive(Debug)]
pub struct ChannelLink<M> {
    me: usize,
    txs: Vec<Sender<M>>,
    rx: Receiver<M>,
    counters: LinkCounters,
}

impl<M: Send> Link for ChannelLink<M> {
    type Msg = M;

    fn me(&self) -> usize {
        self.me
    }

    fn nodes(&self) -> usize {
        self.txs.len()
    }

    fn send(&mut self, to: usize, msg: M) -> Result<(), FabricError> {
        self.counters.frames += 1;
        self.txs[to].send(msg).map_err(|_| FabricError::PeerLost {
            peer: to,
            detail: "channel receiver dropped".into(),
        })
    }

    fn try_recv(&mut self) -> Result<Option<M>, FabricError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(FabricError::Closed),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<M>, FabricError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(FabricError::Closed),
        }
    }

    fn counters(&self) -> LinkCounters {
        self.counters
    }
}

/// An in-process fabric: all `n` links minted up front, each holding
/// senders to every peer (including itself, for symmetry — the
/// runtime never self-sends).
#[derive(Debug)]
pub struct ChannelFabric<M> {
    links: Vec<Option<ChannelLink<M>>>,
}

impl<M: Send> ChannelFabric<M> {
    /// A fabric connecting `nodes` endpoints.
    pub fn new(nodes: usize) -> Self {
        let mut txs = Vec::with_capacity(nodes);
        let mut rxs = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = mpsc::channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let links = rxs
            .into_iter()
            .enumerate()
            .map(|(me, rx)| {
                Some(ChannelLink {
                    me,
                    txs: txs.clone(),
                    rx,
                    counters: LinkCounters::default(),
                })
            })
            .collect();
        Self { links }
    }
}

impl<M: Send> Fabric for ChannelFabric<M> {
    type Msg = M;
    type Link = ChannelLink<M>;

    fn nodes(&self) -> usize {
        self.links.len()
    }

    fn link(&mut self, rank: usize) -> Option<ChannelLink<M>> {
        self.links.get_mut(rank)?.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fabric_moves_values() {
        let mut fabric: ChannelFabric<(usize, u64)> = ChannelFabric::new(3);
        let mut a = fabric.link(0).unwrap();
        let mut b = fabric.link(1).unwrap();
        assert!(fabric.link(0).is_none());
        a.send(1, (0, 42)).unwrap();
        a.send(1, (0, 43)).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some((0, 42)));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(100)).unwrap(),
            Some((0, 43))
        );
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(a.counters().frames, 2);
        assert_eq!(a.counters().bytes_framed, 0);
    }
}

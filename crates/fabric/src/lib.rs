//! The CaSync-RT transport fabric: one message-passing abstraction,
//! two transports.
//!
//! The runtime's node workers speak to each other through a
//! [`Link`] — a per-node endpoint with `send`/`recv` of one
//! application message type — and a [`Fabric`] hands each node its
//! link. Two fabrics implement the contract:
//!
//! * [`ChannelFabric`]: the original in-process transport,
//!   `std::sync::mpsc` channels moving messages by value. No
//!   serialization, no framing — the fast path the thread engine has
//!   always run on.
//! * [`TcpLink`] (built by [`tcp::connect_mesh`]): a full mesh of
//!   loopback TCP streams between real OS processes. Messages
//!   serialize through the [`WireMsg`] codec into checksummed,
//!   versioned [`frame::Frame`]s, with the chaos envelope discipline
//!   (sequence numbers, ack/nack, bounded retransmission, heartbeats)
//!   running at the framing layer ([`rel`]).
//!
//! The split mirrors what CGX argues for: the compression stack and
//! task manager never learn which transport they are on, so swapping
//! channels for sockets (or a fault-injecting wrapper) is a
//! constructor choice, not a rewrite.

#![forbid(unsafe_code)]

pub mod codec;
pub mod frame;
pub mod recorder;
pub mod rel;
pub mod tcp;

mod channel;

pub use channel::{ChannelFabric, ChannelLink};
pub use codec::{DecodeError, Reader, Writer};
pub use recorder::{FlightEvent, FlightKind, FlightRecorder};
pub use rel::{LinkDead, LinkTuning, RelRx, RelTx, RxVerdict};
pub use tcp::TcpLink;

use std::fmt;
use std::time::Duration;

/// A message type that can cross a serializing fabric: encodes into
/// and decodes from the fabric's byte codec. In-process fabrics move
/// values directly and never call these.
pub trait WireMsg: Sized + Send + 'static {
    /// Appends the message's wire form to `w`.
    fn encode(&self, w: &mut Writer);

    /// Parses one message.
    ///
    /// # Errors
    ///
    /// A structured [`DecodeError`] for any malformed input; never
    /// panics.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: the message as a standalone byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_vec()
    }

    /// Convenience: parses a standalone byte vector, requiring full
    /// consumption.
    ///
    /// # Errors
    ///
    /// As [`WireMsg::decode`], plus [`DecodeError::TrailingBytes`].
    fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Traffic counters one link accumulates; the runtime folds them into
/// its report's fabric section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Data frames (or in-process messages) sent.
    pub frames: u64,
    /// Total bytes of encoded frames sent, headers included. Zero on
    /// the channel fabric, which never serializes.
    pub bytes_framed: u64,
    /// Bytes of application payload inside those frames. Zero on the
    /// channel fabric.
    pub bytes_payload: u64,
    /// Frame retransmissions (nack- or timer-driven).
    pub retransmits: u64,
}

impl LinkCounters {
    /// Adds `other`'s counts into `self`.
    pub fn absorb(&mut self, other: &LinkCounters) {
        self.frames += other.frames;
        self.bytes_framed += other.bytes_framed;
        self.bytes_payload += other.bytes_payload;
        self.retransmits += other.retransmits;
    }
}

/// A fabric failure, always naming the peer involved so callers can
/// build structured synchronization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A received payload failed to decode.
    Decode(DecodeError),
    /// The peer's stream closed or reset mid-protocol.
    PeerLost {
        /// The vanished peer's rank.
        peer: usize,
        /// Transport-level detail.
        detail: String,
    },
    /// A frame to `peer` exhausted its retry budget unacknowledged.
    DeadLink {
        /// The unresponsive peer's rank.
        peer: usize,
        /// The sequence number that gave up.
        seq: u64,
        /// Send attempts made.
        attempts: u32,
    },
    /// A transport I/O failure talking to `peer`.
    Io {
        /// The peer involved.
        peer: usize,
        /// The underlying I/O diagnostic.
        detail: String,
    },
    /// The fabric was shut down (every sender dropped).
    Closed,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Decode(e) => write!(f, "payload decode failed: {e}"),
            FabricError::PeerLost { peer, detail } => {
                write!(f, "peer node {peer} lost: {detail}")
            }
            FabricError::DeadLink {
                peer,
                seq,
                attempts,
            } => write!(
                f,
                "link to node {peer} dead: seq {seq} unacknowledged after {attempts} attempts"
            ),
            FabricError::Io { peer, detail } => write!(f, "i/o with node {peer}: {detail}"),
            FabricError::Closed => write!(f, "fabric closed"),
        }
    }
}

impl std::error::Error for FabricError {}

/// One node's endpoint on a fabric: send to any peer, receive from
/// all of them (merged into one inbox, like the engine's per-node
/// channel).
pub trait Link: Send {
    /// The application message the link moves.
    type Msg;

    /// This endpoint's rank.
    fn me(&self) -> usize;

    /// Total nodes on the fabric.
    fn nodes(&self) -> usize;

    /// Sends `msg` to `to`.
    ///
    /// # Errors
    ///
    /// [`FabricError`] on transport failure. A lost peer may also
    /// surface later on the receive side; callers that only care
    /// about protocol completion may ignore send errors and let the
    /// receive path name the failure.
    fn send(&mut self, to: usize, msg: Self::Msg) -> Result<(), FabricError>;

    /// Receives the next message without blocking; `Ok(None)` when
    /// the inbox is empty.
    ///
    /// # Errors
    ///
    /// [`FabricError`] on transport failure (a dead or lost peer, a
    /// payload that does not decode).
    fn try_recv(&mut self) -> Result<Option<Self::Msg>, FabricError>;

    /// Receives the next message, waiting up to `timeout`; `Ok(None)`
    /// on timeout. Serializing fabrics also use the wait to drive
    /// their retransmission and heartbeat timers.
    ///
    /// # Errors
    ///
    /// As [`Link::try_recv`].
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Self::Msg>, FabricError>;

    /// Traffic this endpoint has generated.
    fn counters(&self) -> LinkCounters;
}

/// A transport for one synchronization job: hands each rank its
/// [`Link`]. In-process fabrics mint all links up front; the process
/// fabric holds exactly the local rank's link.
pub trait Fabric {
    /// The application message the fabric moves.
    type Msg;
    /// The endpoint type.
    type Link: Link<Msg = Self::Msg>;

    /// Total nodes on the fabric.
    fn nodes(&self) -> usize;

    /// Takes rank `rank`'s endpoint; `None` once taken (or if the
    /// fabric never held it).
    fn link(&mut self, rank: usize) -> Option<Self::Link>;
}

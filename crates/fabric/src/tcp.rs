//! The loopback TCP fabric: a full mesh of framed socket streams
//! between real OS processes (or threads, in tests).
//!
//! Every rank owns one [`TcpLink`]: a stream per peer, one reader
//! thread per stream decoding [`Frame`]s into a single merged inbox,
//! and the reliability layer ([`crate::rel`]) running at the framing
//! layer — data frames are checksummed, acknowledged, nacked when
//! they arrive damaged, retransmitted with bounded exponential
//! backoff, and deduplicated on arrival. TCP alone already orders and
//! retransmits bytes; the frame discipline adds what TCP cannot:
//! end-to-end payload integrity above the transport, explicit
//! liveness (heartbeats, dead-link verdicts with a named peer), and a
//! protocol the chaos fabric can attack deterministically in tests.
//!
//! Mesh construction is rendezvous-ordered: every rank binds its
//! listener *before* any address is shared, each rank dials every
//! lower rank and accepts from every higher rank, and the first frame
//! on a connection is a [`FrameKind::Hello`] naming the dialer — so
//! construction cannot deadlock and needs no global lock step.

use crate::frame::{Frame, FrameKind};
use crate::recorder::{FlightKind, FlightRecorder};
use crate::rel::{LinkTuning, RelRx, RelTx, RxVerdict};
use crate::{FabricError, Link, LinkCounters, WireMsg};
use std::io::Write;
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Construction and polling knobs for one mesh endpoint.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Frame-layer retry/backoff/heartbeat tuning.
    pub tuning: LinkTuning,
    /// How long mesh construction may wait for peers to dial in.
    pub connect_timeout: Duration,
    /// Smallest slice a blocking receive waits between protocol-timer
    /// polls.
    pub poll_floor: Duration,
    /// Largest slice a blocking receive waits between protocol-timer
    /// polls.
    pub poll_ceiling: Duration,
    /// Flight recorder every protocol event is noted into (shared
    /// with the link's reader threads). `None` disables recording.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Membership epoch this mesh belongs to, carried in every Hello
    /// frame's sequence field. An elastic run rebuilds the mesh once
    /// per epoch; a dial whose Hello names a different epoch is a
    /// straggler from a membership that no longer exists (a zombie
    /// segment's reconnect) and is rejected at accept. Fixed runs
    /// leave this 0 on both sides and never reject.
    pub epoch: u64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self {
            tuning: LinkTuning::default(),
            connect_timeout: Duration::from_secs(10),
            poll_floor: Duration::from_micros(200),
            poll_ceiling: Duration::from_millis(10),
            recorder: None,
            epoch: 0,
        }
    }
}

/// Notes one event into the optional recorder — a no-op when
/// recording is off, so call sites stay unconditional.
fn note(
    recorder: &Option<Arc<FlightRecorder>>,
    kind: FlightKind,
    peer: usize,
    seq: u64,
    bytes: u64,
) {
    if let Some(rec) = recorder {
        rec.record(kind, peer as u32, seq, bytes);
    }
}

/// What a reader thread reports into the merged inbox.
enum Event {
    /// An intact, first-delivery payload.
    Deliver { payload: Vec<u8> },
    /// `peer`'s stream closed or failed.
    PeerLost { peer: usize, detail: String },
    /// The send state for `peer` exhausted its retry budget.
    Dead {
        peer: usize,
        seq: u64,
        attempts: u32,
    },
}

/// Per-peer send-side handles: the stream (all writes are
/// frame-atomic under its lock) and the reliability state (shared
/// with the peer's reader thread, which clears acks and answers
/// nacks).
struct PeerHandle {
    stream: Arc<Mutex<TcpStream>>,
    tx: Arc<Mutex<RelTx>>,
}

fn write_frame(
    stream: &Mutex<TcpStream>,
    counters: &Mutex<LinkCounters>,
    frame: &Frame,
) -> std::io::Result<()> {
    let buf = frame.encode();
    {
        let mut c = counters.lock().expect("counter lock poisoned");
        c.bytes_framed += buf.len() as u64;
    }
    let mut s = stream.lock().expect("stream lock poisoned");
    s.write_all(&buf)
}

/// One rank's endpoint on the TCP mesh. Build with [`connect_mesh`].
pub struct TcpLink<M> {
    me: usize,
    nodes: usize,
    peers: Vec<Option<PeerHandle>>,
    inbox: Receiver<Event>,
    config: MeshConfig,
    counters: Arc<Mutex<LinkCounters>>,
    _msg: PhantomData<fn() -> M>,
}

impl<M> TcpLink<M> {
    /// Drives the protocol timers: timer-due retransmissions and
    /// idle-link heartbeats, for every peer.
    fn tick(&mut self) -> Result<(), FabricError> {
        let now = Instant::now();
        for (peer, handle) in self.peers.iter().enumerate() {
            let Some(h) = handle else { continue };
            let (resend, ping) = {
                let mut tx = h.tx.lock().expect("rel-tx lock poisoned");
                let resend = tx.due(now).map_err(|d| FabricError::DeadLink {
                    peer,
                    seq: d.seq,
                    attempts: d.attempts,
                })?;
                let ping = if resend.is_empty() && tx.idle() {
                    tx.heartbeat(now)
                } else {
                    None
                };
                (resend, ping)
            };
            for f in &resend {
                note(
                    &self.config.recorder,
                    FlightKind::Retransmit,
                    peer,
                    f.seq,
                    f.payload.len() as u64,
                );
                let _ = write_frame(&h.stream, &self.counters, f);
            }
            if !resend.is_empty() {
                let mut c = self.counters.lock().expect("counter lock poisoned");
                c.retransmits += resend.len() as u64;
            }
            if let Some(p) = ping {
                note(&self.config.recorder, FlightKind::HeartbeatSent, peer, 0, 0);
                let _ = write_frame(&h.stream, &self.counters, &p);
            }
        }
        Ok(())
    }

    fn accept_event(&mut self, ev: Event) -> Result<Option<Vec<u8>>, FabricError>
    where
        M: WireMsg,
    {
        match ev {
            Event::Deliver { payload } => Ok(Some(payload)),
            Event::PeerLost { peer, detail } => Err(FabricError::PeerLost { peer, detail }),
            Event::Dead {
                peer,
                seq,
                attempts,
            } => Err(FabricError::DeadLink {
                peer,
                seq,
                attempts,
            }),
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<M, FabricError>
    where
        M: WireMsg,
    {
        M::from_bytes(payload).map_err(FabricError::Decode)
    }
}

impl<M> Drop for TcpLink<M> {
    /// Shuts the sockets down (not merely drops them): reader
    /// threads — ours and the peers' — hold cloned descriptors, so
    /// only an explicit shutdown reliably propagates end-of-stream
    /// and lets every side unwind.
    fn drop(&mut self) {
        for h in self.peers.iter().flatten() {
            if let Ok(s) = h.stream.lock() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl<M: WireMsg> Link for TcpLink<M> {
    type Msg = M;

    fn me(&self) -> usize {
        self.me
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn send(&mut self, to: usize, msg: M) -> Result<(), FabricError> {
        let Some(h) = self.peers.get(to).and_then(Option::as_ref) else {
            return Err(FabricError::Io {
                peer: to,
                detail: "no stream to that rank".into(),
            });
        };
        let payload = msg.to_bytes();
        {
            let mut c = self.counters.lock().expect("counter lock poisoned");
            c.frames += 1;
            c.bytes_payload += payload.len() as u64;
        }
        let frame = {
            let mut tx = h.tx.lock().expect("rel-tx lock poisoned");
            tx.prepare(payload, Instant::now())
        };
        note(
            &self.config.recorder,
            FlightKind::SendData,
            to,
            frame.seq,
            frame.payload.len() as u64,
        );
        write_frame(&h.stream, &self.counters, &frame).map_err(|e| FabricError::Io {
            peer: to,
            detail: e.to_string(),
        })
    }

    fn try_recv(&mut self) -> Result<Option<M>, FabricError> {
        self.tick()?;
        loop {
            match self.inbox.try_recv() {
                Ok(ev) => {
                    if let Some(payload) = self.accept_event(ev)? {
                        return Ok(Some(Self::decode_payload(&payload)?));
                    }
                }
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(FabricError::Closed),
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<M>, FabricError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.tick()?;
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let slice = (deadline - now)
                .min(self.config.poll_ceiling)
                .max(self.config.poll_floor);
            match self.inbox.recv_timeout(slice) {
                Ok(ev) => {
                    if let Some(payload) = self.accept_event(ev)? {
                        return Ok(Some(Self::decode_payload(&payload)?));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(FabricError::Closed),
            }
        }
    }

    fn counters(&self) -> LinkCounters {
        *self.counters.lock().expect("counter lock poisoned")
    }
}

/// The reader loop for one peer stream: decode frames, run the
/// receive-side reliability verdicts, answer acks/nacks, and feed
/// intact first deliveries into the merged inbox.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    peer: usize,
    me: usize,
    mut stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    tx: Arc<Mutex<RelTx>>,
    counters: Arc<Mutex<LinkCounters>>,
    events: Sender<Event>,
    recorder: Option<Arc<FlightRecorder>>,
) {
    let mut rx = RelRx::new();
    loop {
        match Frame::read_from(&mut stream) {
            Ok(Some(frame)) => match frame.kind {
                FrameKind::Data => match rx.accept(&frame) {
                    RxVerdict::Deliver => {
                        note(
                            &recorder,
                            FlightKind::RecvData,
                            peer,
                            frame.seq,
                            frame.payload.len() as u64,
                        );
                        let ack = Frame::control(FrameKind::Ack, me as u32, frame.seq);
                        note(&recorder, FlightKind::AckSent, peer, frame.seq, 0);
                        let _ = write_frame(&writer, &counters, &ack);
                        if events
                            .send(Event::Deliver {
                                payload: frame.payload,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    RxVerdict::Duplicate => {
                        note(&recorder, FlightKind::DupData, peer, frame.seq, 0);
                        let ack = Frame::control(FrameKind::Ack, me as u32, frame.seq);
                        note(&recorder, FlightKind::AckSent, peer, frame.seq, 0);
                        let _ = write_frame(&writer, &counters, &ack);
                    }
                    RxVerdict::Corrupt => {
                        note(&recorder, FlightKind::CorruptData, peer, frame.seq, 0);
                        let nack = Frame::control(FrameKind::Nack, me as u32, frame.seq);
                        note(&recorder, FlightKind::NackSent, peer, frame.seq, 0);
                        let _ = write_frame(&writer, &counters, &nack);
                    }
                },
                FrameKind::Ack => {
                    note(&recorder, FlightKind::AckRecv, peer, frame.seq, 0);
                    tx.lock().expect("rel-tx lock poisoned").on_ack(frame.seq);
                }
                FrameKind::Nack => {
                    note(&recorder, FlightKind::NackRecv, peer, frame.seq, 0);
                    let resend = {
                        let mut t = tx.lock().expect("rel-tx lock poisoned");
                        t.on_nack(frame.seq, Instant::now())
                    };
                    match resend {
                        Ok(Some(f)) => {
                            {
                                let mut c = counters.lock().expect("counter lock poisoned");
                                c.retransmits += 1;
                            }
                            note(
                                &recorder,
                                FlightKind::Retransmit,
                                peer,
                                f.seq,
                                f.payload.len() as u64,
                            );
                            let _ = write_frame(&writer, &counters, &f);
                        }
                        Ok(None) => {}
                        Err(d) => {
                            let _ = events.send(Event::Dead {
                                peer,
                                seq: d.seq,
                                attempts: d.attempts,
                            });
                            return;
                        }
                    }
                }
                FrameKind::Ping => {
                    note(&recorder, FlightKind::HeartbeatRecv, peer, 0, 0);
                }
                FrameKind::Hello => {}
            },
            Ok(None) => {
                note(&recorder, FlightKind::PeerLost, peer, 0, 0);
                let _ = events.send(Event::PeerLost {
                    peer,
                    detail: "stream closed".into(),
                });
                return;
            }
            Err(e) => {
                note(&recorder, FlightKind::PeerLost, peer, 0, 0);
                let _ = events.send(Event::PeerLost {
                    peer,
                    detail: e.to_string(),
                });
                return;
            }
        }
    }
}

fn io_err(peer: usize, e: impl std::fmt::Display) -> FabricError {
    FabricError::Io {
        peer,
        detail: e.to_string(),
    }
}

/// Dials `addr` until it answers or `deadline` passes (rendezvous
/// guarantees the listener exists, but the accept loop may lag).
fn dial(addr: SocketAddr, deadline: Instant, peer: usize) -> Result<TcpStream, FabricError> {
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io_err(peer, format!("connect {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Builds rank `rank`'s endpoint of an `nodes`-way mesh: dials every
/// lower rank at `peers[p]`, accepts from every higher rank on
/// `listener`, identifies each accepted stream by its Hello frame,
/// then spawns the per-peer reader threads.
///
/// # Errors
///
/// [`FabricError`] when a peer cannot be dialed or does not dial in
/// before the config's connect timeout, or on any handshake I/O
/// failure.
pub fn connect_mesh<M: WireMsg>(
    rank: usize,
    nodes: usize,
    listener: TcpListener,
    peers: &[SocketAddr],
    config: &MeshConfig,
) -> Result<TcpLink<M>, FabricError> {
    let deadline = Instant::now() + config.connect_timeout;
    let counters = Arc::new(Mutex::new(LinkCounters::default()));
    let mut streams: Vec<Option<TcpStream>> = (0..nodes).map(|_| None).collect();

    // Dial every lower rank, introducing ourselves with a Hello.
    for (p, &addr) in peers.iter().enumerate().take(rank) {
        let stream = dial(addr, deadline, p)?;
        stream.set_nodelay(true).map_err(|e| io_err(p, e))?;
        let hello = Frame::control(FrameKind::Hello, rank as u32, config.epoch);
        let mut s = stream.try_clone().map_err(|e| io_err(p, e))?;
        hello.write_to(&mut s).map_err(|e| io_err(p, e))?;
        note(&config.recorder, FlightKind::Hello, p, 0, 0);
        streams[p] = Some(stream);
    }

    // Accept every higher rank; the Hello frame names the dialer.
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err(rank, e))?;
    let mut accepted = 0;
    while accepted < nodes - 1 - rank {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(|e| io_err(rank, e))?;
                stream.set_nodelay(true).map_err(|e| io_err(rank, e))?;
                let mut s = stream.try_clone().map_err(|e| io_err(rank, e))?;
                let hello = Frame::read_from(&mut s)
                    .map_err(|e| io_err(rank, e))?
                    .ok_or_else(|| io_err(rank, "stream closed before Hello"))?;
                if hello.kind != FrameKind::Hello {
                    return Err(io_err(rank, "first frame was not a Hello"));
                }
                if hello.seq != config.epoch {
                    // A dialer from another membership epoch: a zombie
                    // segment's late reconnect must never splice into
                    // the rebuilt mesh.
                    return Err(io_err(
                        rank,
                        format!(
                            "stale Hello from rank {}: epoch {} != {}",
                            hello.src, hello.seq, config.epoch
                        ),
                    ));
                }
                let p = hello.src as usize;
                if p <= rank || p >= nodes {
                    return Err(io_err(rank, format!("Hello from unexpected rank {p}")));
                }
                note(&config.recorder, FlightKind::Hello, p, 0, 0);
                streams[p] = Some(stream);
                accepted += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io_err(
                        rank,
                        format!(
                            "timed out with {accepted} of {} peers accepted",
                            nodes - 1 - rank
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(io_err(rank, e)),
        }
    }

    // Wire up per-peer reliability state and reader threads.
    let (events_tx, events_rx) = mpsc::channel();
    let mut handles: Vec<Option<PeerHandle>> = (0..nodes).map(|_| None).collect();
    for (p, slot) in streams.into_iter().enumerate() {
        let Some(stream) = slot else { continue };
        let read_half = stream.try_clone().map_err(|e| io_err(p, e))?;
        let writer = Arc::new(Mutex::new(stream));
        let tx = Arc::new(Mutex::new(RelTx::new(
            rank as u32,
            config.tuning,
            Instant::now(),
        )));
        let thread_writer = Arc::clone(&writer);
        let thread_tx = Arc::clone(&tx);
        let thread_counters = Arc::clone(&counters);
        let thread_events = events_tx.clone();
        let thread_recorder = config.recorder.clone();
        std::thread::Builder::new()
            .name(format!("fabric-rx-{rank}-{p}"))
            .spawn(move || {
                reader_loop(
                    p,
                    rank,
                    read_half,
                    thread_writer,
                    thread_tx,
                    thread_counters,
                    thread_events,
                    thread_recorder,
                )
            })
            .map_err(|e| io_err(p, e))?;
        handles[p] = Some(PeerHandle { stream: writer, tx });
    }

    Ok(TcpLink {
        me: rank,
        nodes,
        peers: handles,
        inbox: events_rx,
        config: config.clone(),
        counters,
        _msg: PhantomData,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{DecodeError, Reader, Writer};

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Probe(u64, Vec<u8>);

    impl WireMsg for Probe {
        fn encode(&self, w: &mut Writer) {
            w.put_u64(self.0);
            w.put_bytes(&self.1);
        }

        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(Probe(r.u64()?, r.bytes()?.to_vec()))
        }
    }

    fn local_listener() -> (TcpListener, SocketAddr) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = l.local_addr().unwrap();
        (l, a)
    }

    #[test]
    fn three_way_mesh_exchanges_messages() {
        let nodes = 3;
        let (listeners, addrs): (Vec<_>, Vec<_>) = (0..nodes).map(|_| local_listener()).unzip();
        let config = MeshConfig::default();
        // Dropping a link sends FIN, and peers surface that promptly
        // as PeerLost — so, exactly like the runtime's Shutdown
        // handshake, nobody drops their link until every rank is done.
        let done = std::sync::Arc::new(std::sync::Barrier::new(nodes));
        let mut joins = Vec::new();
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            let config = config.clone();
            let done = std::sync::Arc::clone(&done);
            joins.push(std::thread::spawn(move || {
                let mut link: TcpLink<Probe> =
                    connect_mesh(rank, nodes, listener, &addrs, &config).unwrap();
                // Everyone sends a tagged probe to everyone else...
                for p in 0..nodes {
                    if p != rank {
                        link.send(p, Probe(rank as u64, vec![rank as u8; 100]))
                            .unwrap();
                    }
                }
                // ...and collects one from each peer.
                let mut got = Vec::new();
                while got.len() < nodes - 1 {
                    if let Some(m) = link.recv_timeout(Duration::from_secs(5)).unwrap() {
                        got.push(m.0);
                    } else {
                        panic!("rank {rank}: timed out waiting for probes");
                    }
                }
                got.sort_unstable();
                let want: Vec<u64> = (0..nodes as u64).filter(|&p| p != rank as u64).collect();
                assert_eq!(got, want);
                let c = link.counters();
                assert_eq!(c.frames, (nodes - 1) as u64);
                assert!(c.bytes_framed > c.bytes_payload);
                assert_eq!(c.retransmits, 0);
                done.wait();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn flight_recorder_captures_the_exchange() {
        use crate::recorder::{FlightKind, FlightRecorder};
        let nodes = 2;
        let (listeners, addrs): (Vec<_>, Vec<_>) = (0..nodes).map(|_| local_listener()).unzip();
        let recorders: Vec<_> = (0..nodes)
            .map(|_| Arc::new(FlightRecorder::new(Instant::now())))
            .collect();
        let done = std::sync::Arc::new(std::sync::Barrier::new(nodes));
        let mut joins = Vec::new();
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            let config = MeshConfig {
                recorder: Some(Arc::clone(&recorders[rank])),
                ..MeshConfig::default()
            };
            let done = std::sync::Arc::clone(&done);
            let rec = Arc::clone(&recorders[rank]);
            joins.push(std::thread::spawn(move || {
                let mut link: TcpLink<Probe> =
                    connect_mesh(rank, nodes, listener, &addrs, &config).unwrap();
                link.send(1 - rank, Probe(rank as u64, vec![0; 32]))
                    .unwrap();
                let got = link.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
                assert_eq!(got.0, (1 - rank) as u64);
                // The ack for our own send races the probe delivery;
                // hold the link open until it lands in the ring.
                let deadline = Instant::now() + Duration::from_secs(5);
                while !rec
                    .dump()
                    .iter()
                    .any(|e| e.kind == crate::recorder::FlightKind::AckRecv)
                {
                    assert!(Instant::now() < deadline, "ack never arrived");
                    std::thread::sleep(Duration::from_millis(1));
                }
                done.wait();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        for rec in &recorders {
            let kinds: Vec<FlightKind> = rec.dump().iter().map(|e| e.kind).collect();
            // Every rank said hello, sent one data frame, delivered
            // one, and acked in both directions.
            assert!(kinds.contains(&FlightKind::Hello));
            assert!(kinds.contains(&FlightKind::SendData));
            assert!(kinds.contains(&FlightKind::RecvData));
            assert!(kinds.contains(&FlightKind::AckSent));
            assert!(kinds.contains(&FlightKind::AckRecv));
        }
    }

    #[test]
    fn dead_peer_is_reported_with_its_rank() {
        let nodes = 2;
        let (listeners, addrs): (Vec<_>, Vec<_>) = (0..nodes).map(|_| local_listener()).unzip();
        let config = MeshConfig::default();
        let mut it = listeners.into_iter();
        let l0 = it.next().unwrap();
        let l1 = it.next().unwrap();
        let addrs1 = addrs.clone();
        let config1 = config.clone();
        let survivor = std::thread::spawn(move || {
            let mut link: TcpLink<Probe> = connect_mesh(0, nodes, l0, &addrs, &config).unwrap();
            // The peer vanishes without a word; the receive path must
            // name it rather than hang.
            match link.recv_timeout(Duration::from_secs(5)) {
                Err(FabricError::PeerLost { peer, .. }) => assert_eq!(peer, 1),
                other => panic!("expected PeerLost, got {other:?}"),
            }
        });
        let vanisher = std::thread::spawn(move || {
            let link: TcpLink<Probe> = connect_mesh(1, nodes, l1, &addrs1, &config1).unwrap();
            drop(link); // Streams close; rank 0 sees EOF.
        });
        vanisher.join().unwrap();
        survivor.join().unwrap();
    }

    #[test]
    fn stale_epoch_dial_is_rejected_at_accept() {
        let nodes = 2;
        let (listeners, addrs): (Vec<_>, Vec<_>) = (0..nodes).map(|_| local_listener()).unzip();
        let mut it = listeners.into_iter();
        let l0 = it.next().unwrap();
        let l1 = it.next().unwrap();
        // Rank 0 accepts at epoch 1; rank 1 dials with a Hello still
        // stamped epoch 0 — a zombie segment's late reconnect.
        let addrs1 = addrs.clone();
        let acceptor = std::thread::spawn(move || {
            let config = MeshConfig {
                epoch: 1,
                ..MeshConfig::default()
            };
            let got: Result<TcpLink<Probe>, FabricError> =
                connect_mesh(0, nodes, l0, &addrs, &config);
            match got {
                Err(FabricError::Io { detail, .. }) => {
                    assert!(detail.contains("stale Hello"), "detail: {detail}");
                    assert!(detail.contains("epoch 0 != 1"), "detail: {detail}");
                }
                Err(other) => panic!("expected a stale-Hello rejection, got {other:?}"),
                Ok(_) => panic!("stale dial was accepted"),
            }
        });
        let stale = std::thread::spawn(move || {
            let config = MeshConfig::default(); // epoch 0
            let _ = connect_mesh::<Probe>(1, nodes, l1, &addrs1, &config);
        });
        acceptor.join().unwrap();
        stale.join().unwrap();
    }

    #[test]
    fn matching_epochs_connect() {
        let nodes = 2;
        let (listeners, addrs): (Vec<_>, Vec<_>) = (0..nodes).map(|_| local_listener()).unzip();
        let done = std::sync::Arc::new(std::sync::Barrier::new(nodes));
        let mut joins = Vec::new();
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            let done = std::sync::Arc::clone(&done);
            joins.push(std::thread::spawn(move || {
                let config = MeshConfig {
                    epoch: 7,
                    ..MeshConfig::default()
                };
                let mut link: TcpLink<Probe> =
                    connect_mesh(rank, nodes, listener, &addrs, &config).unwrap();
                link.send(1 - rank, Probe(rank as u64, vec![0; 16]))
                    .unwrap();
                let got = link.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
                assert_eq!(got.0, (1 - rank) as u64);
                done.wait();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }
}

//! The fabric's wire frame: a versioned, checksummed, length-prefixed
//! envelope around an opaque payload.
//!
//! The frame promotes the fault-tolerant envelope discipline of the
//! runtime's in-process protocol — sequence numbers, FNV-1a
//! checksums, attempt counters — into the actual framing layer of the
//! socket fabric. On a stream the frame travels as:
//!
//! ```text
//! u32  body_len           (bytes after this field)
//! u32  magic  "HPFB"
//! u16  version            (currently 1)
//! u8   kind               (Data / Ack / Nack / Ping / Hello)
//! u8   reserved           (0)
//! u32  src                (sender rank)
//! u64  seq                (per-link sequence number)
//! u32  attempt            (retransmission counter, excluded from the
//!                          checksum so resends carry one digest)
//! u32  payload_len
//! [payload bytes]
//! u64  checksum           (FNV-1a over header-sans-attempt + payload)
//! ```
//!
//! Structural damage (truncation, bad magic, version skew, hostile
//! lengths) surfaces as a [`DecodeError`]; payload damage surfaces as
//! a failed [`Frame::verify`], which the reliability layer answers
//! with a nack rather than an abort — exactly the split the chaos
//! protocol uses in-process.

use crate::codec::{DecodeError, Reader, Writer};

/// The four bytes every fabric frame starts with (`"HPFB"`).
pub const MAGIC: u32 = 0x4850_4642;

/// The wire-protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Ceiling on one frame's body: length prefixes above this are
/// rejected before allocation (a garbage or hostile prefix must not
/// become a multi-gigabyte allocation).
pub const MAX_FRAME_BYTES: u64 = 256 * 1024 * 1024;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01B3;

fn fnv(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// An application payload (acknowledged, retransmitted).
    Data,
    /// Acknowledges receipt of the data frame with this `seq`.
    Ack,
    /// Reports the data frame with this `seq` arrived corrupt.
    Nack,
    /// A liveness heartbeat on an otherwise idle link.
    Ping,
    /// The first frame on a connection: identifies the sender's rank.
    Hello,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Data => 1,
            FrameKind::Ack => 2,
            FrameKind::Nack => 3,
            FrameKind::Ping => 4,
            FrameKind::Hello => 5,
        }
    }

    fn from_tag(t: u8) -> Result<Self, DecodeError> {
        Ok(match t {
            1 => FrameKind::Data,
            2 => FrameKind::Ack,
            3 => FrameKind::Nack,
            4 => FrameKind::Ping,
            5 => FrameKind::Hello,
            other => return Err(DecodeError::BadKind(other)),
        })
    }
}

/// One wire frame. See the module docs for the byte layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Sender rank.
    pub src: u32,
    /// Per-link sequence number (for [`FrameKind::Ack`] /
    /// [`FrameKind::Nack`], the sequence being answered).
    pub seq: u64,
    /// Retransmission attempt, 0 for the first send. Excluded from
    /// the checksum so a resend carries the original digest.
    pub attempt: u32,
    /// Opaque payload bytes (the encoded application message).
    pub payload: Vec<u8>,
    /// FNV-1a digest as carried on the wire; equals
    /// [`Frame::digest`] for intact frames.
    pub checksum: u64,
}

impl Frame {
    /// Builds a frame of `kind` with a freshly computed checksum.
    pub fn new(kind: FrameKind, src: u32, seq: u64, payload: Vec<u8>) -> Self {
        let mut f = Frame {
            kind,
            src,
            seq,
            attempt: 0,
            payload,
            checksum: 0,
        };
        f.checksum = f.digest();
        f
    }

    /// A payload-free control frame (ack/nack/ping/hello).
    pub fn control(kind: FrameKind, src: u32, seq: u64) -> Self {
        Self::new(kind, src, seq, Vec::new())
    }

    /// The FNV-1a digest over the header (minus `attempt`) and the
    /// payload, folded 8 bytes at a time.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv(h, u64::from(MAGIC));
        h = fnv(h, u64::from(VERSION));
        h = fnv(h, u64::from(self.kind.tag()));
        h = fnv(h, u64::from(self.src));
        h = fnv(h, self.seq);
        h = fnv(h, self.payload.len() as u64);
        for chunk in self.payload.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h = fnv(h, u64::from_le_bytes(word));
        }
        h
    }

    /// True when the carried checksum matches the recomputed digest —
    /// the frame survived the wire intact.
    pub fn verify(&self) -> bool {
        self.checksum == self.digest()
    }

    /// Encodes the frame body (everything after the stream-level
    /// `body_len` prefix).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(self.kind.tag());
        w.put_u8(0);
        w.put_u32(self.src);
        w.put_u64(self.seq);
        w.put_u32(self.attempt);
        w.put_bytes(&self.payload);
        w.put_u64(self.checksum);
        w.into_vec()
    }

    /// Encodes the full stream representation: `u32 body_len` then
    /// the body.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut w = Writer::new();
        w.put_u32(body.len() as u32);
        let mut out = w.into_vec();
        out.extend_from_slice(&body);
        out
    }

    /// Parses one frame body (no stream length prefix). The checksum
    /// is *parsed*, not enforced: call [`Frame::verify`] and answer
    /// damage with a nack. Structural problems are decode errors.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] for truncated, mis-tagged, oversized, or
    /// trailing-byte input.
    pub fn decode_body(buf: &[u8]) -> Result<Frame, DecodeError> {
        if buf.len() as u64 > MAX_FRAME_BYTES {
            return Err(DecodeError::FrameTooLarge(buf.len() as u64));
        }
        let mut r = Reader::new(buf);
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let kind = FrameKind::from_tag(r.u8()?)?;
        let _reserved = r.u8()?;
        let src = r.u32()?;
        let seq = r.u64()?;
        let attempt = r.u32()?;
        let payload = r.bytes()?.to_vec();
        let checksum = r.u64()?;
        r.finish()?;
        Ok(Frame {
            kind,
            src,
            seq,
            attempt,
            payload,
            checksum,
        })
    }

    /// Reads one length-prefixed frame from a stream. Returns
    /// `Ok(None)` on clean end-of-stream at a frame boundary.
    ///
    /// # Errors
    ///
    /// I/O errors, mid-frame end-of-stream, hostile length prefixes,
    /// and body decode errors, all as [`std::io::Error`] with the
    /// decode diagnostic as the message.
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Option<Frame>> {
        let mut len = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            match r.read(&mut len[filled..])? {
                0 if filled == 0 => return Ok(None),
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "stream ended inside a frame length prefix",
                    ))
                }
                n => filled += n,
            }
        }
        let body_len = u32::from_le_bytes(len) as u64;
        if body_len > MAX_FRAME_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                DecodeError::FrameTooLarge(body_len).to_string(),
            ));
        }
        let mut body = vec![0u8; body_len as usize];
        r.read_exact(&mut body)?;
        Frame::decode_body(&body)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Writes the full stream representation of the frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }
}

/// Chaos can corrupt a frame's payload bits in transit; the checksum
/// (and the nack/retransmit discipline above it) is what catches the
/// damage — same contract as the in-process envelope protocol.
impl hipress_chaos::Wire for Frame {
    fn payload_bits(&self) -> u64 {
        match self.kind {
            FrameKind::Data => (self.payload.len() as u64) * 8,
            _ => 0,
        }
    }

    fn flip_bit(&mut self, bit: u64) {
        let byte = (bit / 8) as usize;
        let mask = 1u8 << (bit % 8);
        if let Some(b) = self.payload.get_mut(byte) {
            *b ^= mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_chaos::Wire;

    fn sample() -> Frame {
        Frame::new(FrameKind::Data, 2, 41, vec![1, 2, 3, 4, 5, 6, 7, 8, 9])
    }

    #[test]
    fn body_round_trips() {
        let f = sample();
        let body = f.encode_body();
        let back = Frame::decode_body(&body).unwrap();
        assert_eq!(back, f);
        assert!(back.verify());
    }

    #[test]
    fn stream_round_trips() {
        let frames = vec![
            sample(),
            Frame::control(FrameKind::Ack, 0, 41),
            Frame::control(FrameKind::Ping, 1, 0),
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.write_to(&mut buf).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut cursor).unwrap().unwrap(), f);
        }
        assert!(Frame::read_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn attempt_does_not_change_digest() {
        let mut f = sample();
        let d = f.digest();
        f.attempt = 5;
        assert_eq!(f.digest(), d);
        assert!(f.verify());
    }

    #[test]
    fn flipped_payload_bit_fails_verify() {
        let mut f = sample();
        assert!(f.payload_bits() > 0);
        f.flip_bit(11);
        assert!(!f.verify());
        // The frame still *decodes* — damage is a verdict, not a
        // parse failure.
        let back = Frame::decode_body(&f.encode_body()).unwrap();
        assert!(!back.verify());
    }

    #[test]
    fn every_truncation_errors() {
        let body = sample().encode_body();
        for cut in 0..body.len() {
            assert!(Frame::decode_body(&body[..cut]).is_err());
        }
    }

    #[test]
    fn hostile_stream_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(Frame::read_from(&mut cursor).is_err());
    }
}

//! Embedded HTTP/1.1 scrape/stream server over `std::net`.
//!
//! Endpoint contract (all `GET`, all `Connection: close`):
//!
//! * `/metrics` — Prometheus text exposition (format 0.0.4) rendered
//!   from the live [`hipress_metrics::Registry`] snapshot.
//! * `/healthz` — JSON job liveness: run status, uptime, record and
//!   alert counts, and per-rank last-heartbeat ages.
//! * `/report.json` — the final [`RuntimeReport`] once the job has
//!   retired (`{"pending":true,...}` while it is still running).
//! * `/events` — chunked NDJSON stream of per-iteration
//!   [`IterRecord`](crate::IterRecord)s, one JSON object per line,
//!   starting from sequence 0 (or `?from=N`) and terminating once the
//!   job is done and the ring is drained.
//!
//! The server is a handful of blocking threads: one acceptor plus one
//! per connection. Handlers only ever *read* telemetry state (registry
//! snapshot, progress ring, heartbeat table), so a slow or stuck
//! scraper cannot block the training hot path.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hipress_metrics::prom;
use hipress_util::{Error, Result};

use crate::Telemetry;

/// How long `/events` sleeps between ring polls.
const EVENT_POLL: Duration = Duration::from_millis(20);
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Largest request head we bother parsing.
const MAX_HEAD: usize = 8 * 1024;

/// A running telemetry server. Dropping the handle does *not* stop the
/// server (the CLI keeps serving through its linger window and exits
/// with the process); call [`Server::stop`] for an orderly shutdown.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `telemetry` on background threads.
    pub fn bind(addr: &str, telemetry: Telemetry) -> Result<Server> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| Error::config(format!("telemetry: bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::config(format!("telemetry: local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("telemetry-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { break };
                    let t = telemetry.clone();
                    let _ = std::thread::Builder::new()
                        .name("telemetry-conn".into())
                        .spawn(move || handle(stream, &t));
                }
            })
            .map_err(|e| Error::config(format!("telemetry: spawn acceptor: {e}")))?;
        Ok(Server { addr, stop })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections. In-flight handlers finish on their
    /// own; `/events` streams observe the done flag and terminate.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

fn handle(mut stream: TcpStream, t: &Telemetry) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some((method, target)) = read_request(&mut stream) else {
        return;
    };
    if method != "GET" {
        let _ = respond(&mut stream, 405, "text/plain", "method not allowed\n");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };
    let _ = match path {
        "/metrics" => {
            let body = prom::render(&t.registry().snapshot());
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => {
            t.scan_heartbeats();
            respond(&mut stream, 200, "application/json", &healthz_json(t))
        }
        "/report.json" => {
            let body = t.report_json().unwrap_or_else(|| {
                format!(
                    "{{\"pending\":true,\"records\":{},\"uptime_ns\":{}}}",
                    t.records_published(),
                    t.now_ns()
                )
            });
            respond(&mut stream, 200, "application/json", &body)
        }
        "/events" => stream_events(&mut stream, t, from_param(query)),
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    };
}

fn from_param(query: Option<&str>) -> u64 {
    let Some(q) = query else { return 0 };
    q.split('&')
        .find_map(|kv| kv.strip_prefix("from="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn healthz_json(t: &Telemetry) -> String {
    let status = if t.is_done() { "done" } else { "running" };
    let ranks: Vec<String> = t
        .heartbeat_ages_ns()
        .into_iter()
        .map(|(rank, age)| format!("{{\"rank\":{rank},\"last_beat_age_ns\":{age}}}"))
        .collect();
    format!(
        "{{\"status\":\"{}\",\"uptime_ns\":{},\"records\":{},\"alerts\":{},\"epoch\":{},\"ranks\":[{}]}}",
        status,
        t.now_ns(),
        t.records_published(),
        t.alert_count(),
        t.membership_epoch(),
        ranks.join(",")
    )
}

/// Read and parse the request head; returns `(method, target)`.
fn read_request(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return None;
        }
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    Some((method, target))
}

fn respond(stream: &mut TcpStream, status: u16, ctype: &str, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Serve `/events`: chunked NDJSON, one record per chunk, draining the
/// ring until the job is done and no records remain.
fn stream_events(stream: &mut TcpStream, t: &Telemetry, from: u64) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    let mut cursor = from;
    loop {
        let (recs, next) = t.read_events(cursor);
        cursor = next;
        for rec in &recs {
            let mut line = rec.to_json_line();
            line.push('\n');
            write!(stream, "{:x}\r\n{line}\r\n", line.len())?;
        }
        if !recs.is_empty() {
            stream.flush()?;
        }
        if t.is_done() && cursor >= t.records_published() {
            break;
        }
        t.scan_heartbeats();
        std::thread::sleep(EVENT_POLL);
    }
    write!(stream, "0\r\n\r\n")?;
    stream.flush()
}

/// Minimal std-TCP HTTP client for tests and the `hipress scrape`
/// smoke tool: fetch `path` from `addr`, decoding chunked bodies. For
/// streaming endpoints pass `max_lines` to stop after that many
/// newline-terminated lines instead of waiting for the stream to end.
pub fn fetch(addr: &str, path: &str, max_lines: Option<usize>) -> Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| Error::config(format!("telemetry: connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| Error::config(format!("telemetry: timeout: {e}")))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .and_then(|()| stream.flush())
    .map_err(|e| Error::config(format!("telemetry: request: {e}")))?;

    // Read the response head.
    let mut raw = Vec::new();
    let mut buf = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| Error::config(format!("telemetry: read: {e}")))?;
        if n == 0 {
            return Err(Error::config("telemetry: connection closed before headers"));
        }
        raw.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::config(format!("telemetry: bad status line: {head}")))?;
    let chunked = head
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("transfer-encoding:") && l.contains("chunked"));
    let mut body_raw = raw[head_end..].to_vec();

    if !chunked {
        // Connection: close framing — read until EOF.
        loop {
            let n = stream
                .read(&mut buf)
                .map_err(|e| Error::config(format!("telemetry: read body: {e}")))?;
            if n == 0 {
                break;
            }
            body_raw.extend_from_slice(&buf[..n]);
        }
        return Ok((status, String::from_utf8_lossy(&body_raw).to_string()));
    }

    // Chunked: decode incrementally so `max_lines` can stop early while
    // the server is still streaming.
    let mut body = String::new();
    loop {
        if let Some(max) = max_lines {
            if body.bytes().filter(|&b| b == b'\n').count() >= max {
                return Ok((status, body));
            }
        }
        // Decode every complete chunk currently buffered.
        let mut progressed = true;
        while progressed {
            progressed = false;
            if let Some(nl) = body_raw.windows(2).position(|w| w == b"\r\n") {
                let size_line = String::from_utf8_lossy(&body_raw[..nl]).to_string();
                let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                    Error::config(format!("telemetry: bad chunk size: {size_line}"))
                })?;
                if size == 0 {
                    return Ok((status, body));
                }
                let need = nl + 2 + size + 2;
                if body_raw.len() >= need {
                    body.push_str(&String::from_utf8_lossy(&body_raw[nl + 2..nl + 2 + size]));
                    body_raw.drain(..need);
                    progressed = true;
                }
            }
        }
        if let Some(max) = max_lines {
            if body.bytes().filter(|&b| b == b'\n').count() >= max {
                return Ok((status, body));
            }
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| Error::config(format!("telemetry: read chunk: {e}")))?;
        if n == 0 {
            return Ok((status, body));
        }
        body_raw.extend_from_slice(&buf[..n]);
    }
}

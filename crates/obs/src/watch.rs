//! SLO watchdog: EWMA + log-bucket baselines over the per-iteration
//! progress stream, with deterministic, latched alerting.
//!
//! The detector is a pure state machine: [`Watchdog::observe`] consumes
//! one [`IterRecord`] and returns the alerts (if any) that this record
//! caused to fire. All thresholds come from [`WatchConfig`] and all
//! state transitions are deterministic functions of the record stream,
//! so tests can feed a synthetic stream and assert the exact alert.
//!
//! Alert taxonomy (each latched once per rank — a bad rank alerts once,
//! not once per iteration):
//!
//! * [`AlertKind::IterationLatencyRegression`] — an iteration span
//!   exceeded `max(latency_factor * ewma, ewma + latency_margin_ns,
//!   latency_factor * p99)` for `consecutive` records in a row, after a
//!   `warmup`-record baseline was established. The EWMA (alpha 0.2,
//!   same integer form as the runtime's straggler detector) tracks the
//!   recent typical span; the p99 comes from a per-rank log-bucket
//!   [`LatencyHistogram`] of the same clean spans and keeps a skewed
//!   (long-tailed) baseline from alerting on its own tail. Both absorb
//!   only non-exceeding spans so a regression cannot drag its own
//!   baseline up.
//! * [`AlertKind::RetransmitStorm`] — a single iteration charged at
//!   least `retransmit_burst` fabric retransmissions.
//! * [`AlertKind::OverlapCollapse`] — with a pipeline window > 1, the
//!   ratio `span_ns / retirement_gap_ns` fell below `overlap_floor_pct`
//!   for `consecutive` records: the rank spends most of its wall time
//!   idle between retirements, i.e. the pipeline has stalled.
//! * [`AlertKind::StragglerRank`] — a rank's span EWMA exceeds
//!   `straggler_factor` times the median EWMA of the other warmed-up
//!   ranks (plus the absolute margin).
//! * [`AlertKind::HeartbeatGap`] — a rank's last sign of life is older
//!   than `heartbeat_gap_ns` ([`Watchdog::check_heartbeats`], driven by
//!   the serving layer's clock while the job is live).
//! * [`AlertKind::MembershipChange`] — an elastic run bumped its
//!   membership epoch (a rank was evicted or re-admitted). Raised by
//!   the hub's [`crate::Telemetry::bump_epoch`], not by this state
//!   machine: membership is coordinator truth, not something inferred
//!   from the record stream. Latched once per epoch bump.

use std::collections::BTreeMap;

use hipress_trace::LatencyHistogram;

use crate::progress::IterRecord;

/// The six anomaly classes the telemetry plane can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    /// Iteration latency broke away from its own EWMA baseline.
    IterationLatencyRegression,
    /// A burst of fabric retransmissions in one iteration.
    RetransmitStorm,
    /// Pipelined run degenerated to (worse than) serial cadence.
    OverlapCollapse,
    /// One rank is persistently slower than its peers.
    StragglerRank,
    /// A rank went silent.
    HeartbeatGap,
    /// An elastic run changed membership (eviction or re-admission).
    MembershipChange,
}

impl AlertKind {
    /// Stable snake_case label value used in `alerts_total{kind=...}`
    /// and in the NDJSON/trace renderings.
    pub fn as_label(&self) -> &'static str {
        match self {
            AlertKind::IterationLatencyRegression => "iteration_latency_regression",
            AlertKind::RetransmitStorm => "retransmit_storm",
            AlertKind::OverlapCollapse => "overlap_collapse",
            AlertKind::StragglerRank => "straggler_rank",
            AlertKind::HeartbeatGap => "heartbeat_gap",
            AlertKind::MembershipChange => "membership_change",
        }
    }
}

impl std::fmt::Display for AlertKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_label())
    }
}

/// One fired alert: what, where, and the numbers that crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// Anomaly class.
    pub kind: AlertKind,
    /// Rank the alert is about.
    pub node: u32,
    /// Iteration that tripped the detector (0 for heartbeat alerts).
    pub iter: u32,
    /// Telemetry-epoch timestamp of the offending observation.
    pub ts_ns: u64,
    /// The observed value that crossed the threshold.
    pub observed: u64,
    /// The threshold it crossed (same unit as `observed`).
    pub threshold: u64,
}

/// Deterministic thresholds for the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchConfig {
    /// Records per rank absorbed into the baseline before any
    /// latency/overlap/straggler alerting.
    pub warmup: u32,
    /// Latency threshold multiplier over the span EWMA.
    pub latency_factor: u64,
    /// Absolute slack added to the EWMA; keeps microsecond-scale
    /// baselines from alerting on scheduler jitter.
    pub latency_margin_ns: u64,
    /// Consecutive exceeding records required before latching the
    /// latency or overlap alert.
    pub consecutive: u32,
    /// Per-iteration retransmission count that counts as a storm.
    pub retransmit_burst: u64,
    /// Straggler threshold multiplier over the peer-median EWMA.
    pub straggler_factor: u64,
    /// Floor for `100 * span / retirement_gap` below which a windowed
    /// rank counts as stalled.
    pub overlap_floor_pct: u64,
    /// Maximum tolerated heartbeat age while the job is live.
    pub heartbeat_gap_ns: u64,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            warmup: 3,
            latency_factor: 4,
            latency_margin_ns: 20_000_000,
            consecutive: 2,
            retransmit_burst: 64,
            straggler_factor: 4,
            overlap_floor_pct: 40,
            heartbeat_gap_ns: 5_000_000_000,
        }
    }
}

/// Integer EWMA with alpha 0.2 (matches the runtime's fault-tolerance
/// gap estimator): `ewma' = (4 * ewma + v) / 5`, seeded by the first
/// observation.
fn ewma(prev: u64, v: u64) -> u64 {
    if prev == 0 {
        v
    } else {
        (prev.saturating_mul(4).saturating_add(v)) / 5
    }
}

#[derive(Debug, Default)]
struct RankState {
    seen: u32,
    ewma_span: u64,
    baseline: LatencyHistogram,
    lat_streak: u32,
    lat_latched: bool,
    retr_latched: bool,
    last_ts: u64,
    ov_streak: u32,
    ov_latched: bool,
    strag_latched: bool,
    hb_latched: bool,
}

/// The SLO watchdog state machine. Feed it the iteration stream with
/// [`observe`](Watchdog::observe); poke it with a clock via
/// [`check_heartbeats`](Watchdog::check_heartbeats).
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchConfig,
    ranks: BTreeMap<u32, RankState>,
}

impl Watchdog {
    /// Fresh watchdog with the given thresholds.
    pub fn new(cfg: WatchConfig) -> Self {
        Watchdog {
            cfg,
            ranks: BTreeMap::new(),
        }
    }

    /// Consume one progress record; return every alert it fired.
    pub fn observe(&mut self, rec: &IterRecord) -> Vec<Alert> {
        let cfg = self.cfg;
        let mut alerts = Vec::new();
        let st = self.ranks.entry(rec.node).or_default();
        st.seen += 1;

        // Iteration latency vs. the rank's own EWMA + log-bucket-p99
        // baseline.
        if st.seen <= cfg.warmup {
            st.ewma_span = ewma(st.ewma_span, rec.span_ns);
            st.baseline.record(rec.span_ns);
        } else {
            let threshold = (st.ewma_span.saturating_mul(cfg.latency_factor))
                .max(st.ewma_span.saturating_add(cfg.latency_margin_ns))
                .max(st.baseline.p99().saturating_mul(cfg.latency_factor));
            if rec.span_ns > threshold {
                st.lat_streak += 1;
                if st.lat_streak >= cfg.consecutive && !st.lat_latched {
                    st.lat_latched = true;
                    alerts.push(Alert {
                        kind: AlertKind::IterationLatencyRegression,
                        node: rec.node,
                        iter: rec.iter,
                        ts_ns: rec.ts_ns,
                        observed: rec.span_ns,
                        threshold,
                    });
                }
            } else {
                st.lat_streak = 0;
                st.ewma_span = ewma(st.ewma_span, rec.span_ns);
                st.baseline.record(rec.span_ns);
            }
        }

        // Retransmit storm: a single bad iteration is enough.
        if rec.retransmits >= cfg.retransmit_burst && !st.retr_latched {
            st.retr_latched = true;
            alerts.push(Alert {
                kind: AlertKind::RetransmitStorm,
                node: rec.node,
                iter: rec.iter,
                ts_ns: rec.ts_ns,
                observed: rec.retransmits,
                threshold: cfg.retransmit_burst,
            });
        }

        // Overlap collapse: retirement cadence far slower than the
        // iterations' own spans means the pipe is sitting idle.
        if rec.window > 1 {
            if st.last_ts != 0 && rec.ts_ns > st.last_ts {
                let gap = (rec.ts_ns - st.last_ts).max(1);
                let ratio_pct = rec.span_ns.saturating_mul(100) / gap;
                if st.seen > cfg.warmup && ratio_pct < cfg.overlap_floor_pct {
                    st.ov_streak += 1;
                    if st.ov_streak >= cfg.consecutive && !st.ov_latched {
                        st.ov_latched = true;
                        alerts.push(Alert {
                            kind: AlertKind::OverlapCollapse,
                            node: rec.node,
                            iter: rec.iter,
                            ts_ns: rec.ts_ns,
                            observed: ratio_pct,
                            threshold: cfg.overlap_floor_pct,
                        });
                    }
                } else {
                    st.ov_streak = 0;
                }
            }
            st.last_ts = rec.ts_ns;
        }

        // Straggler: compare this rank's EWMA against the median of its
        // warmed-up peers.
        let (seen, mine, latched) = {
            let st = &self.ranks[&rec.node];
            (st.seen, st.ewma_span, st.strag_latched)
        };
        if seen > cfg.warmup && !latched {
            let mut peers: Vec<u64> = self
                .ranks
                .iter()
                .filter(|(n, s)| **n != rec.node && s.seen > cfg.warmup)
                .map(|(_, s)| s.ewma_span)
                .collect();
            if !peers.is_empty() {
                peers.sort_unstable();
                let median = peers[peers.len() / 2];
                let threshold = median
                    .saturating_mul(cfg.straggler_factor)
                    .max(median.saturating_add(cfg.latency_margin_ns));
                if mine > threshold {
                    let st = self.ranks.get_mut(&rec.node).expect("rank state");
                    st.strag_latched = true;
                    alerts.push(Alert {
                        kind: AlertKind::StragglerRank,
                        node: rec.node,
                        iter: rec.iter,
                        ts_ns: rec.ts_ns,
                        observed: mine,
                        threshold,
                    });
                }
            }
        }

        alerts
    }

    /// Check per-rank heartbeat ages against the configured gap. `beats`
    /// maps rank to the telemetry-epoch timestamp of its last sign of
    /// life; `now_ns` is the current telemetry-epoch time. Pure in its
    /// inputs so tests can drive the clock by hand.
    pub fn check_heartbeats(&mut self, now_ns: u64, beats: &[(u32, u64)]) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for &(rank, last) in beats {
            let gap = now_ns.saturating_sub(last);
            let st = self.ranks.entry(rank).or_default();
            if gap > self.cfg.heartbeat_gap_ns && !st.hb_latched {
                st.hb_latched = true;
                alerts.push(Alert {
                    kind: AlertKind::HeartbeatGap,
                    node: rank,
                    iter: 0,
                    ts_ns: now_ns,
                    observed: gap,
                    threshold: self.cfg.heartbeat_gap_ns,
                });
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, iter: u32, ts_ns: u64, span_ns: u64) -> IterRecord {
        IterRecord {
            node,
            iter,
            ts_ns,
            span_ns,
            window: 1,
            ..IterRecord::default()
        }
    }

    fn drain(w: &mut Watchdog, recs: &[IterRecord]) -> Vec<Alert> {
        recs.iter().flat_map(|r| w.observe(r)).collect()
    }

    #[test]
    fn steady_stream_raises_nothing() {
        let mut w = Watchdog::new(WatchConfig::default());
        let recs: Vec<_> = (0..50)
            .map(|i| rec(0, i, u64::from(i) * 1_000_000, 900_000 + u64::from(i % 7)))
            .collect();
        assert!(drain(&mut w, &recs).is_empty());
    }

    #[test]
    fn latency_regression_fires_exactly_once_after_two_consecutive_breaches() {
        let mut w = Watchdog::new(WatchConfig::default());
        // Baseline: 5 fast iterations at ~1ms.
        for i in 0..5 {
            assert!(w
                .observe(&rec(0, i, u64::from(i) * 1_000_000, 1_000_000))
                .is_empty());
        }
        // One slow iteration: streak 1, no alert yet.
        assert!(w.observe(&rec(0, 5, 5_000_000, 60_000_000)).is_empty());
        // Second consecutive slow iteration: threshold is
        // max(4 * 1ms, 1ms + 20ms) = 21ms, breached -> exactly one alert.
        let alerts = w.observe(&rec(0, 6, 65_000_000, 60_000_000));
        assert_eq!(alerts.len(), 1);
        let a = alerts[0];
        assert_eq!(a.kind, AlertKind::IterationLatencyRegression);
        assert_eq!(a.node, 0);
        assert_eq!(a.iter, 6);
        assert_eq!(a.observed, 60_000_000);
        assert_eq!(a.threshold, 21_000_000);
        // Latched: further breaches stay silent.
        assert!(w.observe(&rec(0, 7, 130_000_000, 60_000_000)).is_empty());
    }

    #[test]
    fn single_breach_between_normal_records_does_not_alert() {
        let mut w = Watchdog::new(WatchConfig::default());
        for i in 0..5 {
            w.observe(&rec(0, i, u64::from(i) * 1_000_000, 1_000_000));
        }
        assert!(w.observe(&rec(0, 5, 5_000_000, 60_000_000)).is_empty());
        // Back to normal: streak resets.
        assert!(w.observe(&rec(0, 6, 66_000_000, 1_000_000)).is_empty());
        assert!(w.observe(&rec(0, 7, 67_000_000, 60_000_000)).is_empty());
    }

    #[test]
    fn regression_does_not_poison_its_own_baseline() {
        let mut w = Watchdog::new(WatchConfig::default());
        for i in 0..5 {
            w.observe(&rec(0, i, u64::from(i) * 1_000_000, 1_000_000));
        }
        // Alert fires on the 2nd breach...
        w.observe(&rec(0, 5, 5_000_000, 60_000_000));
        let alerts = w.observe(&rec(0, 6, 65_000_000, 60_000_000));
        assert_eq!(alerts.len(), 1);
        // ...and the threshold was computed from the *clean* 1ms EWMA,
        // not one dragged up by the slow records.
        assert_eq!(alerts[0].threshold, 21_000_000);
    }

    #[test]
    fn retransmit_storm_latches_on_one_bad_iteration() {
        let mut w = Watchdog::new(WatchConfig::default());
        let mut r = rec(2, 0, 0, 1_000_000);
        r.retransmits = 64;
        let alerts = w.observe(&r);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::RetransmitStorm);
        assert_eq!(alerts[0].node, 2);
        // Latched per rank.
        let mut r2 = rec(2, 1, 1, 1_000_000);
        r2.retransmits = 500;
        assert!(w.observe(&r2).is_empty());
    }

    #[test]
    fn overlap_collapse_fires_when_pipe_goes_idle() {
        let mut w = Watchdog::new(WatchConfig::default());
        // Healthy window-4 pipeline: spans of 10ms retiring every 2.5ms
        // (ratio 400%).
        let mut ts = 0;
        for i in 0..6 {
            ts += 2_500_000;
            let mut r = rec(0, i, ts, 10_000_000);
            r.window = 4;
            assert!(w.observe(&r).is_empty());
        }
        // Stall: 1ms spans retiring every 50ms (ratio 2%) — alert on the
        // second consecutive stalled record.
        ts += 50_000_000;
        let mut r = rec(0, 6, ts, 1_000_000);
        r.window = 4;
        assert!(w.observe(&r).is_empty());
        ts += 50_000_000;
        let mut r = rec(0, 7, ts, 1_000_000);
        r.window = 4;
        let alerts = w.observe(&r);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::OverlapCollapse);
        assert_eq!(alerts[0].observed, 2);
        assert_eq!(alerts[0].threshold, 40);
    }

    #[test]
    fn straggler_rank_is_flagged_against_peer_median() {
        let mut w = Watchdog::new(WatchConfig::default());
        // Three healthy ranks at 1ms, one rank at 100ms.
        for i in 0..8 {
            for n in 0..3 {
                w.observe(&rec(
                    n,
                    i,
                    u64::from(i) * 1_000_000 + u64::from(n),
                    1_000_000,
                ));
            }
        }
        let mut fired = Vec::new();
        for i in 0..8 {
            fired.extend(w.observe(&rec(3, i, u64::from(i) * 100_000_000, 100_000_000)));
        }
        let stragglers: Vec<_> = fired
            .iter()
            .filter(|a| a.kind == AlertKind::StragglerRank)
            .collect();
        assert_eq!(stragglers.len(), 1);
        assert_eq!(stragglers[0].node, 3);
        // Healthy peers never get flagged.
        assert!(fired.iter().all(|a| a.node == 3));
    }

    #[test]
    fn heartbeat_gap_alerts_once_per_silent_rank() {
        let mut w = Watchdog::new(WatchConfig::default());
        let beats = [(0u32, 1_000_000_000u64), (1, 7_000_000_000)];
        // At t=7s rank 0 is 6s silent (gap > 5s), rank 1 is fresh.
        let alerts = w.check_heartbeats(7_000_000_000, &beats);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::HeartbeatGap);
        assert_eq!(alerts[0].node, 0);
        assert_eq!(alerts[0].observed, 6_000_000_000);
        // Latched.
        assert!(w.check_heartbeats(9_000_000_000, &beats).is_empty());
        // Rank 1 eventually goes silent too.
        let later = w.check_heartbeats(13_000_000_000, &beats);
        assert_eq!(later.len(), 1);
        assert_eq!(later[0].node, 1);
    }
}

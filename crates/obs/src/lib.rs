//! Live telemetry plane for HiPress.
//!
//! Everything before this crate observes a run *after the fact*: traces
//! are exported when the job exits, metrics snapshots are printed at
//! the end, postmortems read crash dumps. The paper's premise — that
//! gradient compression only pays in the right network/model regime —
//! makes *live* observation a first-class need: an operator (or an
//! adaptation layer) must see stragglers, retransmit storms, and
//! vanishing pipeline overlap while the job is still running. This
//! crate is that plane, `std`-only like the rest of the workspace:
//!
//! * [`progress`] — per-iteration [`IterRecord`]s and the wait-free
//!   bounded [`ProgressRing`] the runtime publishes them through.
//! * [`watch`] — the deterministic SLO [`Watchdog`]: EWMA +
//!   log-bucket-percentile baselines over the iteration stream,
//!   emitting latched [`Alert`]s per rank.
//! * [`serve`] — the embedded HTTP/1.1 [`Server`] (`/metrics`,
//!   `/healthz`, `/report.json`, `/events`).
//! * [`Telemetry`] — the hub tying them together: one shared clock,
//!   the ring, the heartbeat table, the watchdog, and the live metrics
//!   [`Registry`] that `alerts_total{kind}` is counted into.
//!
//! The runtime holds an `Option<&Telemetry>` in its `Instruments`
//! bundle and pays one ring publish per *retired iteration* — never
//! per task — when it is attached, and nothing when it is not.

#![forbid(unsafe_code)]

pub mod progress;
pub mod serve;
pub mod watch;

pub use progress::{IterRecord, ProgressRing, ProgressSink, RING_CAPACITY};
pub use serve::Server;
pub use watch::{Alert, AlertKind, WatchConfig, Watchdog};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hipress_metrics::{names, Registry};

struct Inner {
    epoch: Instant,
    ring: ProgressRing,
    registry: Registry,
    watch: Mutex<Watchdog>,
    alerts: Mutex<Vec<Alert>>,
    beats: Mutex<BTreeMap<u32, u64>>,
    report_json: Mutex<Option<String>>,
    done: AtomicBool,
    /// Current membership epoch of the observed run (0 unless elastic).
    membership_epoch: AtomicU64,
}

/// The telemetry hub: everything the serving layer reads and the
/// runtime writes. Cheap to clone (one `Arc`); all methods take
/// `&self` and are safe to call from any thread.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("records", &self.records_published())
            .field("alerts", &self.alert_count())
            .field("done", &self.is_done())
            .finish()
    }
}

impl Telemetry {
    /// New hub counting alerts into `registry` (the same registry the
    /// engines record their metrics into, so one `/metrics` scrape sees
    /// both), with watchdog thresholds from `cfg`.
    pub fn new(registry: Registry, cfg: WatchConfig) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                ring: ProgressRing::new(),
                registry,
                watch: Mutex::new(Watchdog::new(cfg)),
                alerts: Mutex::new(Vec::new()),
                beats: Mutex::new(BTreeMap::new()),
                report_json: Mutex::new(None),
                done: AtomicBool::new(false),
                membership_epoch: AtomicU64::new(0),
            }),
        }
    }

    /// Nanoseconds since this hub was created (the telemetry epoch; the
    /// single clock every published record is stamped against).
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// The registry alert counters live in (and `/metrics` renders).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Record a sign of life from `rank` without publishing a record
    /// (the process coordinator beats on every control frame).
    pub fn beat(&self, rank: u32) {
        let now = self.now_ns();
        self.inner
            .beats
            .lock()
            .expect("beats lock")
            .insert(rank, now);
    }

    /// Per-rank heartbeat ages, `(rank, ns_since_last_beat)`.
    pub fn heartbeat_ages_ns(&self) -> Vec<(u32, u64)> {
        let now = self.now_ns();
        self.inner
            .beats
            .lock()
            .expect("beats lock")
            .iter()
            .map(|(&r, &t)| (r, now.saturating_sub(t)))
            .collect()
    }

    /// Run the heartbeat-gap detector against the current clock. A
    /// no-op once the job is done (a retired job is not "silent").
    pub fn scan_heartbeats(&self) {
        if self.is_done() {
            return;
        }
        let now = self.now_ns();
        let beats: Vec<(u32, u64)> = {
            let b = self.inner.beats.lock().expect("beats lock");
            b.iter().map(|(&r, &t)| (r, t)).collect()
        };
        let fired = self
            .inner
            .watch
            .lock()
            .expect("watch lock")
            .check_heartbeats(now, &beats);
        self.absorb_alerts(fired);
    }

    /// Total records ever published into the ring.
    pub fn records_published(&self) -> u64 {
        self.inner.ring.published()
    }

    /// Read progress records with sequence number ≥ `from`; returns the
    /// records plus the cursor to resume from.
    pub fn read_events(&self, from: u64) -> (Vec<IterRecord>, u64) {
        self.inner.ring.read_since(from)
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> Vec<Alert> {
        self.inner.alerts.lock().expect("alerts lock").clone()
    }

    /// Number of alerts fired so far.
    pub fn alert_count(&self) -> usize {
        self.inner.alerts.lock().expect("alerts lock").len()
    }

    /// Install the final report JSON served at `/report.json`.
    pub fn set_report_json(&self, json: String) {
        *self.inner.report_json.lock().expect("report lock") = Some(json);
    }

    /// The installed report JSON, if the job has retired.
    pub fn report_json(&self) -> Option<String> {
        self.inner.report_json.lock().expect("report lock").clone()
    }

    /// The run's current membership epoch (0 on fixed-membership runs).
    pub fn membership_epoch(&self) -> u64 {
        self.inner.membership_epoch.load(Ordering::Acquire)
    }

    /// Record a membership change: advance the published epoch to
    /// `epoch` and latch a [`AlertKind::MembershipChange`] alert naming
    /// the rank whose loss (or return) caused the bump. `observed` is
    /// the new epoch, `threshold` the old one, so the alert row reads
    /// as the transition itself. Exactly one alert per bump — the
    /// membership timeline in the report carries the details.
    pub fn bump_epoch(&self, epoch: u64, rank: u32, from_iter: u32) {
        let prev = self.inner.membership_epoch.swap(epoch, Ordering::AcqRel);
        self.absorb_alerts(vec![Alert {
            kind: AlertKind::MembershipChange,
            node: rank,
            iter: from_iter,
            ts_ns: self.now_ns(),
            observed: epoch,
            threshold: prev,
        }]);
    }

    /// Mark the job finished: `/events` streams terminate once drained,
    /// `/healthz` reports `done`, and heartbeat scanning stops.
    pub fn mark_done(&self) {
        self.inner.done.store(true, Ordering::Release);
    }

    /// Whether the job has been marked finished.
    pub fn is_done(&self) -> bool {
        self.inner.done.load(Ordering::Acquire)
    }

    fn absorb_alerts(&self, fired: Vec<Alert>) {
        if fired.is_empty() {
            return;
        }
        for a in &fired {
            self.inner
                .registry
                .root()
                .counter(names::ALERTS_TOTAL, &[("kind", a.kind.as_label())])
                .inc();
        }
        self.inner.alerts.lock().expect("alerts lock").extend(fired);
    }
}

impl ProgressSink for Telemetry {
    /// Publish one retired-iteration record: stamp it against the hub
    /// clock, feed the watchdog, count any alerts, push it to the ring.
    fn publish(&self, mut rec: IterRecord) {
        rec.ts_ns = self.now_ns();
        self.beat(rec.node);
        let fired = self.inner.watch.lock().expect("watch lock").observe(&rec);
        self.absorb_alerts(fired);
        self.inner.ring.push(&rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> Telemetry {
        Telemetry::new(Registry::new(), WatchConfig::default())
    }

    fn rec(node: u32, iter: u32, span_ns: u64) -> IterRecord {
        IterRecord {
            node,
            iter,
            span_ns,
            window: 1,
            ..IterRecord::default()
        }
    }

    #[test]
    fn publish_stamps_feeds_watchdog_and_counts_alerts() {
        let t = hub();
        for i in 0..5 {
            t.publish(rec(0, i, 1_000_000));
        }
        assert_eq!(t.alert_count(), 0);
        // Two consecutive 60ms iterations against a 1ms baseline.
        t.publish(rec(0, 5, 60_000_000));
        t.publish(rec(0, 6, 60_000_000));
        let alerts = t.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::IterationLatencyRegression);
        // The alert landed in the registry under the documented name.
        let snap = t.registry().snapshot();
        assert_eq!(
            snap.total_counter(names::ALERTS_TOTAL),
            1,
            "alerts_total{{kind}} must be counted in the registry"
        );
        // Records flowed to the ring with hub-stamped timestamps.
        let (events, next) = t.read_events(0);
        assert_eq!(next, 7);
        assert_eq!(events.len(), 7);
        let mut prev = 0;
        for e in &events {
            assert!(e.ts_ns >= prev, "hub stamps must be monotone");
            prev = e.ts_ns;
        }
        // Publishing beats the rank.
        let ages = t.heartbeat_ages_ns();
        assert_eq!(ages.len(), 1);
        assert_eq!(ages[0].0, 0);
    }

    /// An epoch bump advances the published membership epoch and
    /// latches exactly one `membership_change` alert per bump, counted
    /// into `alerts_total{kind="membership_change"}` like every other
    /// alert kind.
    #[test]
    fn epoch_bump_latches_one_membership_alert() {
        let t = hub();
        assert_eq!(t.membership_epoch(), 0);
        t.bump_epoch(1, 3, 7);
        t.bump_epoch(2, 3, 12);
        assert_eq!(t.membership_epoch(), 2);
        let alerts = t.alerts();
        assert_eq!(alerts.len(), 2);
        for (a, (epoch, iter)) in alerts.iter().zip([(1, 7), (2, 12)]) {
            assert_eq!(a.kind, AlertKind::MembershipChange);
            assert_eq!(a.node, 3);
            assert_eq!(a.iter, iter);
            assert_eq!(a.observed, epoch);
            assert_eq!(a.threshold, epoch - 1);
        }
        assert_eq!(
            t.registry().snapshot().total_counter(names::ALERTS_TOTAL),
            2
        );
    }

    #[test]
    fn end_to_end_over_real_sockets() {
        let t = hub();
        let srv = Server::bind("127.0.0.1:0", t.clone()).expect("bind");
        let addr = srv.addr().to_string();
        for i in 0..4 {
            t.publish(rec(1, i, 2_000_000));
        }

        let (status, body) = serve::fetch(&addr, "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"running\""), "{body}");
        assert!(body.contains("\"records\":4"), "{body}");
        assert!(body.contains("\"epoch\":0"), "{body}");
        assert!(body.contains("\"rank\":1"), "{body}");
        t.bump_epoch(1, 2, 8);
        let (_, body) = serve::fetch(&addr, "/healthz", None).expect("healthz bumped");
        assert!(body.contains("\"epoch\":1"), "{body}");

        t.registry().root().counter("bytes_wire", &[]).add(42);
        let (status, body) = serve::fetch(&addr, "/metrics", None).expect("metrics");
        assert_eq!(status, 200);
        assert!(body.contains("bytes_wire 42"), "{body}");

        let (status, body) = serve::fetch(&addr, "/report.json", None).expect("report");
        assert_eq!(status, 200);
        assert!(body.contains("\"pending\":true"), "{body}");
        t.set_report_json("{\"nodes\":3}".into());
        let (_, body) = serve::fetch(&addr, "/report.json", None).expect("report 2");
        assert_eq!(body, "{\"nodes\":3}");

        // Streamed events: grab the first two lines mid-run.
        let (status, body) = serve::fetch(&addr, "/events", Some(2)).expect("events");
        assert_eq!(status, 200);
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines.len() >= 2, "{body}");
        assert!(lines[0].contains("\"node\":1"), "{body}");
        assert!(lines[0].contains("\"iter\":0"), "{body}");

        // Once done, the stream drains fully and terminates on its own.
        t.mark_done();
        let (status, body) = serve::fetch(&addr, "/events?from=2", None).expect("drain");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2, "{body}");
        assert!(
            body.lines().next().unwrap().contains("\"iter\":2"),
            "{body}"
        );

        let (_, body) = serve::fetch(&addr, "/healthz", None).expect("healthz done");
        assert!(body.contains("\"status\":\"done\""), "{body}");

        let (status, _) = serve::fetch(&addr, "/nope", None).expect("404");
        assert_eq!(status, 404);
        srv.stop();
    }
}

//! Per-iteration progress records and the bounded ring they travel
//! through.
//!
//! Workers publish one [`IterRecord`] per retired pipelined iteration.
//! The record is snapshotted into a fixed-capacity [`ProgressRing`]
//! whose writer path is wait-free (one `fetch_add` plus a handful of
//! relaxed stores) so the hot path never blocks on a reader. Readers
//! (the HTTP `/events` stream, the watchdog) poll the ring and skip
//! slots that are mid-write, using the same claim/stamp idiom as the
//! fabric's flight recorder: a writer claims a slot by bumping the
//! cursor, zeroes the slot's stamp, stores the payload, then publishes
//! the stamp with `Release`; a reader accepts a slot only when the
//! stamp reads as `seq + 1` both before and after copying the payload.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Number of slots retained by a [`ProgressRing`]. Old records are
/// overwritten once more than this many iterations have retired.
pub const RING_CAPACITY: usize = 1024;

/// One retired pipelined iteration on one rank, as published by the
/// runtime's progress hook.
///
/// All latencies are nanoseconds. `comp_ns` aggregates the busy time
/// of the compute-side primitives (source, encode, decode, merge,
/// update, barrier, plus local aggregation); `commu_ns` aggregates the
/// communication primitives (send, recv). `retransmits` is the
/// per-iteration delta of the fabric's retransmission counter, not a
/// running total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterRecord {
    /// Rank that retired the iteration.
    pub node: u32,
    /// Iteration id (0-based).
    pub iter: u32,
    /// Publication timestamp, nanoseconds since the telemetry epoch.
    /// Stamped by the [`crate::Telemetry`] hub, not the worker, so all
    /// ranks share one clock.
    pub ts_ns: u64,
    /// Wall time from admission to retirement of this iteration.
    pub span_ns: u64,
    /// Busy nanoseconds in compute-side primitives this iteration.
    pub comp_ns: u64,
    /// Busy nanoseconds in send/recv this iteration.
    pub commu_ns: u64,
    /// Bytes put on the wire this iteration (post-compression).
    pub bytes_wire: u64,
    /// Gradient messages exchanged this iteration.
    pub messages: u64,
    /// Fabric retransmissions attributed to this iteration.
    pub retransmits: u64,
    /// Fault-tolerance events (retries, nacks, degraded chunks, ...)
    /// absorbed this iteration.
    pub faults: u64,
    /// Pipeline window the run was configured with.
    pub window: u32,
    /// Membership epoch the iteration ran under (0 on fixed runs;
    /// bumps when an elastic run evicts or re-admits a worker).
    pub epoch: u64,
}

impl IterRecord {
    /// Render the record as a single NDJSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"node\":{},\"iter\":{},\"ts_ns\":{},\"span_ns\":{},\"comp_ns\":{},\
             \"commu_ns\":{},\"bytes_wire\":{},\"messages\":{},\"retransmits\":{},\
             \"faults\":{},\"window\":{},\"epoch\":{}}}",
            self.node,
            self.iter,
            self.ts_ns,
            self.span_ns,
            self.comp_ns,
            self.commu_ns,
            self.bytes_wire,
            self.messages,
            self.retransmits,
            self.faults,
            self.window,
            self.epoch
        )
    }
}

/// Anything that accepts per-iteration progress records.
///
/// Implemented by [`crate::Telemetry`] (thread backend: workers publish
/// straight into the hub) and by the process backend's control-stream
/// forwarder (workers ship records to the coordinator, which republishes
/// them into its hub).
pub trait ProgressSink: std::fmt::Debug + Sync {
    /// Publish one retired-iteration record. Must not block on readers.
    fn publish(&self, rec: IterRecord);
}

#[derive(Default)]
struct Slot {
    /// `seq + 1` once the payload for sequence `seq` is fully stored;
    /// zero while a writer is mid-flight.
    stamp: AtomicU64,
    /// `node << 32 | iter`.
    ids: AtomicU64,
    /// `window` widened to u64.
    window: AtomicU64,
    ts_ns: AtomicU64,
    span_ns: AtomicU64,
    comp_ns: AtomicU64,
    commu_ns: AtomicU64,
    bytes_wire: AtomicU64,
    messages: AtomicU64,
    retransmits: AtomicU64,
    faults: AtomicU64,
    epoch: AtomicU64,
}

/// Bounded multi-producer ring of [`IterRecord`]s with non-blocking,
/// possibly-lossy readers (a reader that falls more than
/// [`RING_CAPACITY`] records behind observes a gap, never a stall).
pub struct ProgressRing {
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for ProgressRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressRing")
            .field("published", &self.cursor.load(Ordering::Relaxed))
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl Default for ProgressRing {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressRing {
    /// Empty ring with [`RING_CAPACITY`] slots.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(RING_CAPACITY);
        slots.resize_with(RING_CAPACITY, Slot::default);
        ProgressRing {
            cursor: AtomicU64::new(0),
            slots,
        }
    }

    /// Total records ever published (monotone; readers use it as the
    /// exclusive upper bound of the available sequence range).
    pub fn published(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Publish one record. Wait-free: claims a sequence number, then
    /// stores the payload into the slot it maps to.
    pub fn push(&self, rec: &IterRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Invalidate the slot first so a concurrent reader of the
        // previous occupant cannot mistake a half-written payload for
        // a consistent one.
        slot.stamp.store(0, Ordering::Release);
        slot.ids.store(
            u64::from(rec.node) << 32 | u64::from(rec.iter),
            Ordering::Relaxed,
        );
        slot.window.store(u64::from(rec.window), Ordering::Relaxed);
        slot.ts_ns.store(rec.ts_ns, Ordering::Relaxed);
        slot.span_ns.store(rec.span_ns, Ordering::Relaxed);
        slot.comp_ns.store(rec.comp_ns, Ordering::Relaxed);
        slot.commu_ns.store(rec.commu_ns, Ordering::Relaxed);
        slot.bytes_wire.store(rec.bytes_wire, Ordering::Relaxed);
        slot.messages.store(rec.messages, Ordering::Relaxed);
        slot.retransmits.store(rec.retransmits, Ordering::Relaxed);
        slot.faults.store(rec.faults, Ordering::Relaxed);
        slot.epoch.store(rec.epoch, Ordering::Relaxed);
        slot.stamp.store(seq + 1, Ordering::Release);
    }

    /// Copy out every record with sequence number in `[from, published)`
    /// that is still resident and consistent, returning the records in
    /// sequence order together with the next `from` value to resume at.
    /// Records overwritten by lap-ahead writers (or caught mid-write)
    /// are silently skipped.
    pub fn read_since(&self, from: u64) -> (Vec<IterRecord>, u64) {
        let head = self.published();
        let cap = self.slots.len() as u64;
        let lo = from.max(head.saturating_sub(cap));
        let mut out = Vec::new();
        for seq in lo..head {
            let slot = &self.slots[(seq % cap) as usize];
            if slot.stamp.load(Ordering::Acquire) != seq + 1 {
                continue;
            }
            let ids = slot.ids.load(Ordering::Relaxed);
            let rec = IterRecord {
                node: (ids >> 32) as u32,
                iter: (ids & u32::MAX as u64) as u32,
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                span_ns: slot.span_ns.load(Ordering::Relaxed),
                comp_ns: slot.comp_ns.load(Ordering::Relaxed),
                commu_ns: slot.commu_ns.load(Ordering::Relaxed),
                bytes_wire: slot.bytes_wire.load(Ordering::Relaxed),
                messages: slot.messages.load(Ordering::Relaxed),
                retransmits: slot.retransmits.load(Ordering::Relaxed),
                faults: slot.faults.load(Ordering::Relaxed),
                window: slot.window.load(Ordering::Relaxed) as u32,
                epoch: slot.epoch.load(Ordering::Relaxed),
            };
            // Seqlock validation: if the stamp changed while we copied,
            // a writer lapped us and the copy may be torn — drop it.
            fence(Ordering::Acquire);
            if slot.stamp.load(Ordering::Acquire) != seq + 1 {
                continue;
            }
            out.push(rec);
        }
        (out, head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, iter: u32) -> IterRecord {
        IterRecord {
            node,
            iter,
            ts_ns: 10,
            span_ns: 20,
            comp_ns: 12,
            commu_ns: 8,
            bytes_wire: 1024,
            messages: 4,
            retransmits: 0,
            faults: 0,
            window: 2,
            epoch: 1,
        }
    }

    #[test]
    fn ring_round_trips_records_in_order() {
        let ring = ProgressRing::new();
        for i in 0..5 {
            ring.push(&rec(1, i));
        }
        let (got, next) = ring.read_since(0);
        assert_eq!(next, 5);
        assert_eq!(got.len(), 5);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(*r, rec(1, i as u32));
        }
        // Resuming from the returned cursor yields nothing new.
        let (more, next2) = ring.read_since(next);
        assert!(more.is_empty());
        assert_eq!(next2, 5);
    }

    #[test]
    fn ring_overwrite_drops_oldest_but_keeps_latest() {
        let ring = ProgressRing::new();
        let total = RING_CAPACITY as u32 + 17;
        for i in 0..total {
            ring.push(&rec(0, i));
        }
        let (got, next) = ring.read_since(0);
        assert_eq!(next, u64::from(total));
        // The oldest 17 were overwritten; everything resident reads
        // back exactly and in order.
        assert_eq!(got.len(), RING_CAPACITY);
        assert_eq!(got[0].iter, 17);
        assert_eq!(got.last().unwrap().iter, total - 1);
    }

    #[test]
    fn concurrent_writers_never_yield_torn_records() {
        let ring = std::sync::Arc::new(ProgressRing::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for node in 0..4u32 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..2000u32 {
                        // Every field derived from (node, iter) so a torn
                        // read is detectable.
                        let r = IterRecord {
                            node,
                            iter: i,
                            ts_ns: u64::from(node) * 1_000_000 + u64::from(i),
                            span_ns: u64::from(i) + 1,
                            comp_ns: u64::from(i) * 2,
                            commu_ns: u64::from(i) * 3,
                            bytes_wire: u64::from(i) * 5,
                            messages: u64::from(i) * 7,
                            retransmits: u64::from(node),
                            faults: 0,
                            window: node + 1,
                            epoch: u64::from(node) + u64::from(i) * 11,
                        };
                        ring.push(&r);
                    }
                });
            }
            let ring2 = std::sync::Arc::clone(&ring);
            let stop2 = std::sync::Arc::clone(&stop);
            s.spawn(move || {
                let mut from = 0;
                while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                    let (recs, next) = ring2.read_since(from);
                    from = next;
                    for r in recs {
                        assert_eq!(r.span_ns, u64::from(r.iter) + 1);
                        assert_eq!(r.comp_ns, u64::from(r.iter) * 2);
                        assert_eq!(r.commu_ns, u64::from(r.iter) * 3);
                        assert_eq!(r.bytes_wire, u64::from(r.iter) * 5);
                        assert_eq!(r.messages, u64::from(r.iter) * 7);
                        assert_eq!(r.retransmits, u64::from(r.node));
                        assert_eq!(r.window, r.node + 1);
                        assert_eq!(r.epoch, u64::from(r.node) + u64::from(r.iter) * 11);
                    }
                }
            });
            // Writers finish, then release the reader.
            while ring.published() < 8000 {
                std::thread::yield_now();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(ring.published(), 8000);
    }
}

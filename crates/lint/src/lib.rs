//! `hipress-lint` — static analysis for HiPress.
//!
//! Two analyzers share one diagnostics core ([`diag`]):
//!
//! * [`plan::verify`] checks a CaSync [`hipress_core::TaskGraph`]
//!   before anything executes it: structural sanity, dependency
//!   cycles, Send/Recv pairing and FIFO ordering on the fabric,
//!   happens-before races on chunk replicas, and completion /
//!   aggregation coverage. [`plan::verify_pipelined`] additionally
//!   unrolls the plan into overlapping pipeline iterations and
//!   checks the cross-iteration properties (buffer-slot reuse races,
//!   queue growth, admission order).
//! * [`dataflow::analyze`] checks a type-checked CompLL program:
//!   def-before-use, dead stores, interval-based index bounds, packed
//!   `uintN` overflow, and lambda purity.
//!
//! Call [`install`] once (the `hipress` facade and CLI do) to make
//! both analyzers load-bearing: in debug builds every graph built by
//! `hipress_core::Strategy::build`, every graph interpreted, and
//! every program compiled by `hipress_compll::compile` is analyzed
//! automatically, and any error-severity diagnostic aborts with
//! [`hipress_util::Error::Lint`]. Release builds skip the hooks;
//! `hipress lint` runs the same analyzers standalone.

#![forbid(unsafe_code)]

pub mod dataflow;
pub mod diag;
pub mod plan;

pub use diag::{Code, Diagnostic, Report, Severity, Site};
pub use plan::{compose, verify_composed, verify_pipelined, Composed, PipelineSpec};

use hipress_compll::ast::Program;
use hipress_core::TaskGraph;
use hipress_util::Result;

/// Verifies a CaSync task graph; alias for [`plan::verify`].
pub fn verify_graph(graph: &TaskGraph, cluster_nodes: usize) -> Report {
    plan::verify(graph, cluster_nodes)
}

/// Analyzes a type-checked CompLL program; alias for
/// [`dataflow::analyze`].
pub fn check_program(prog: &Program) -> Report {
    dataflow::analyze(prog)
}

/// Compiles CompLL source (lex, parse, typeck — without the installed
/// debug hook, to avoid double analysis) and runs the dataflow
/// analyzer on the result.
///
/// Returns `Err` when the program does not compile; the [`Report`]
/// carries the dataflow diagnostics of a compiling program.
pub fn check_source(source: &str) -> Result<Report> {
    let toks = hipress_compll::lexer::lex(source)?;
    let prog = hipress_compll::parser::parse(&toks)?;
    hipress_compll::typeck::check(&prog)?;
    Ok(dataflow::analyze(&prog))
}

/// Registers both analyzers as debug-build hooks in `hipress-core`
/// and `hipress-compll`. Idempotent.
pub fn install() {
    hipress_core::graph::install_debug_verifier(|graph, cluster_nodes| {
        plan::verify(graph, cluster_nodes).into_result()
    });
    hipress_compll::install_dataflow_check(|prog| dataflow::analyze(prog).into_result());
}

//! The diagnostics core shared by both analyzers: codes, severities,
//! provenance sites, and human-readable rendering.

use std::fmt;

use hipress_core::graph::TaskId;
use hipress_util::{Error, Result};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong — reported, never fatal.
    Warning,
    /// A defect: the plan or program would misbehave if executed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Every check the two analyzers can report, with a stable code.
///
/// `P…` codes come from the plan verifier ([`crate::plan::verify`]),
/// `D…` codes from the CompLL dataflow analyzer
/// ([`crate::dataflow::analyze`]). The catalogue (with examples) is
/// documented in `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// P001 — a task is placed on a node outside the cluster.
    UnknownNode,
    /// P002 — a dependency edge points at a missing task or at the
    /// task itself.
    OrphanDep,
    /// P003 — the dependency relation contains a cycle; the plan can
    /// never complete.
    DependencyCycle,
    /// P004 — a Send/Recv has a missing, out-of-range, or self peer.
    BadPeer,
    /// P005 — a Recv is not paired with exactly one matching Send
    /// (wrong count, wrong node, or wrong peer on either side).
    UnpairedRecv,
    /// P006 — a paired Send/Recv disagree on chunk identity or wire
    /// bytes.
    PayloadMismatch,
    /// P007 — a Send whose payload no Recv ever consumes.
    UnconsumedSend,
    /// P008 — a task's value source is missing: decode without a
    /// recv, encoded send without an encode, forward without a recv,
    /// merge with nothing to merge, or a read of a chunk no Source
    /// initialized.
    MissingValueSource,
    /// P009 — a payload of the wrong kind flows into a task (decode
    /// of a raw payload, raw merge/update of a compressed payload).
    PayloadKindMismatch,
    /// P010 — a read and a write of the same chunk replica are not
    /// ordered by happens-before (the PR-1 dissemination bug class).
    DataRace,
    /// P011 — two writes of the same chunk replica are not ordered by
    /// happens-before.
    DoubleWrite,
    /// P012 — two sends on one channel are ordered one way but their
    /// receives are consumed in the opposite order: a FIFO fabric
    /// deadlocks or crosses payloads.
    FifoInversion,
    /// P013 — a chunk replica is initialized by a Source but never
    /// committed by an Update; synchronization silently never
    /// finishes there.
    MissingCompletion,
    /// P014 — an Update commits a value that cannot have aggregated
    /// every node's contribution (some Source is not an ancestor).
    IncompleteAggregation,
    /// P015 — tasks touching one chunk disagree on its raw size.
    ChunkSizeMismatch,
    /// P016 — the graph exceeds the deep-analysis size bound; only
    /// structural checks ran.
    AnalysisSkipped,
    /// P017 — two overlapping pipeline iterations touch one chunk
    /// buffer slot with no happens-before ordering; only possible
    /// when the window admits the reusing iteration while the owner
    /// is still in flight.
    CrossIterRace,
    /// P018 — a channel's sends can run more than `window` iterations
    /// ahead of their consumption: the receive queue grows without
    /// bound as iterations stream.
    QueueGrowth,
    /// P019 — pipeline iterations are not admitted in order on some
    /// node: a later iteration's admission precedes (or is unordered
    /// with) an earlier one's.
    AdmissionInversion,
    /// D001 — a local or global is read before any assignment.
    UseBeforeDef,
    /// D002 — a pure store whose value is overwritten or never read.
    DeadStore,
    /// D003 — an index expression is provably outside its array.
    IndexOutOfBounds,
    /// D004 — an integer provably too large (or negative) is packed
    /// into a `uintN` cell.
    UintOverflow,
    /// D005 — a lambda used in a data-parallel operator writes a
    /// global: two instances race on it in the generated CUDA.
    ImpureLambda,
}

impl Code {
    /// Every diagnostic code, in catalogue order. `DESIGN.md` §8.3 is
    /// generated from this list (a test keeps them in lockstep).
    pub const ALL: [Code; 24] = [
        Code::UnknownNode,
        Code::OrphanDep,
        Code::DependencyCycle,
        Code::BadPeer,
        Code::UnpairedRecv,
        Code::PayloadMismatch,
        Code::UnconsumedSend,
        Code::MissingValueSource,
        Code::PayloadKindMismatch,
        Code::DataRace,
        Code::DoubleWrite,
        Code::FifoInversion,
        Code::MissingCompletion,
        Code::IncompleteAggregation,
        Code::ChunkSizeMismatch,
        Code::AnalysisSkipped,
        Code::CrossIterRace,
        Code::QueueGrowth,
        Code::AdmissionInversion,
        Code::UseBeforeDef,
        Code::DeadStore,
        Code::IndexOutOfBounds,
        Code::UintOverflow,
        Code::ImpureLambda,
    ];

    /// The stable short code (`P010`, `D003`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnknownNode => "P001",
            Code::OrphanDep => "P002",
            Code::DependencyCycle => "P003",
            Code::BadPeer => "P004",
            Code::UnpairedRecv => "P005",
            Code::PayloadMismatch => "P006",
            Code::UnconsumedSend => "P007",
            Code::MissingValueSource => "P008",
            Code::PayloadKindMismatch => "P009",
            Code::DataRace => "P010",
            Code::DoubleWrite => "P011",
            Code::FifoInversion => "P012",
            Code::MissingCompletion => "P013",
            Code::IncompleteAggregation => "P014",
            Code::ChunkSizeMismatch => "P015",
            Code::AnalysisSkipped => "P016",
            Code::CrossIterRace => "P017",
            Code::QueueGrowth => "P018",
            Code::AdmissionInversion => "P019",
            Code::UseBeforeDef => "D001",
            Code::DeadStore => "D002",
            Code::IndexOutOfBounds => "D003",
            Code::UintOverflow => "D004",
            Code::ImpureLambda => "D005",
        }
    }

    /// The severity this code always reports at.
    pub fn severity(self) -> Severity {
        match self {
            Code::UnconsumedSend
            | Code::ChunkSizeMismatch
            | Code::AnalysisSkipped
            | Code::DeadStore => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// The one-line meaning shown in the `DESIGN.md` §8.3 catalogue
    /// table — kept here so the document is derived from the enum
    /// rather than drifting beside it.
    pub fn summary(self) -> &'static str {
        match self {
            Code::UnknownNode => "task placed on a node outside the cluster",
            Code::OrphanDep => "dependency edge points at a missing task or at itself",
            Code::DependencyCycle => "dependency cycle — the plan can never complete",
            Code::BadPeer => "Send/Recv peer missing, out of range, or self",
            Code::UnpairedRecv => "Recv not paired with exactly one matching Send",
            Code::PayloadMismatch => "paired Send/Recv disagree on chunk or wire bytes",
            Code::UnconsumedSend => "Send whose payload no Recv consumes",
            Code::MissingValueSource => {
                "value source missing (decode without recv, merge with nothing to merge, \
                 read of an uninitialized chunk, …)"
            }
            Code::PayloadKindMismatch => "payload of the wrong kind flows into a task",
            Code::DataRace => "read/write of one chunk replica unordered by happens-before",
            Code::DoubleWrite => "two writes of one chunk replica unordered",
            Code::FifoInversion => "FIFO inversion: send order contradicts consumption order",
            Code::MissingCompletion => "replica initialized but never committed by an Update",
            Code::IncompleteAggregation => {
                "Update commits an aggregate missing some node's contribution"
            }
            Code::ChunkSizeMismatch => "tasks disagree on a chunk's raw size",
            Code::AnalysisSkipped => "graph too large, deep analysis skipped",
            Code::CrossIterRace => {
                "overlapping pipeline iterations share a chunk buffer slot unordered"
            }
            Code::QueueGrowth => {
                "a channel's sends outrun consumption by more than the pipeline window"
            }
            Code::AdmissionInversion => "pipeline iterations admitted out of order on a node",
            Code::UseBeforeDef => "variable or global read before assignment",
            Code::DeadStore => "pure store never read or overwritten before a read",
            Code::IndexOutOfBounds => "index provably outside its array",
            Code::UintOverflow => "value provably too large (or negative) packed into `uintN`",
            Code::ImpureLambda => "lambda in a data-parallel operator writes a global",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Site {
    /// The plan as a whole (cycles, skipped analysis).
    Graph,
    /// One task in a plan.
    Task(TaskId),
    /// Two tasks in a plan (races, inversions, bad pairings).
    Tasks(TaskId, TaskId),
    /// A location in a CompLL program.
    Dsl {
        /// The enclosing function.
        function: String,
        /// The function's source line (CompLL tracks per-function
        /// lines, not per-statement).
        line: u32,
    },
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Graph => write!(f, "plan"),
            Site::Task(t) => write!(f, "task {}", t.0),
            Site::Tasks(a, b) => write!(f, "tasks {}/{}", a.0, b.0),
            Site::Dsl { function, line } => write!(f, "fn {function} (line {line})"),
        }
    }
}

/// One finding: a coded, sited, human-readable defect description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which check fired.
    pub code: Code,
    /// Where it fired.
    pub site: Site,
    /// What is wrong, in one sentence.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; severity comes from the code.
    pub fn new(code: Code, site: Site, message: impl Into<String>) -> Self {
        Self {
            code,
            site,
            message: message.into(),
        }
    }

    /// The severity of this diagnostic.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity(),
            self.code,
            self.site,
            self.message
        )
    }
}

/// The outcome of one analyzer run: all diagnostics, in emission
/// order.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// All diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Only the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// True when there are no diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one diagnostic carries the given code.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders every diagnostic, one per line.
    pub fn render(&self) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// `Ok(())` when error-free; otherwise an [`Error::Lint`] whose
    /// message is the rendered error diagnostics.
    pub fn into_result(self) -> Result<()> {
        if self.error_count() == 0 {
            return Ok(());
        }
        let rendered = self
            .errors()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        Err(Error::lint(rendered))
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
        }
        // P-codes then D-codes, each numbered densely from 1.
        let (p, d): (Vec<_>, Vec<_>) = Code::ALL
            .iter()
            .map(|c| c.as_str())
            .partition(|s| s.starts_with('P'));
        for (i, s) in p.iter().enumerate() {
            assert_eq!(*s, format!("P{:03}", i + 1));
        }
        for (i, s) in d.iter().enumerate() {
            assert_eq!(*s, format!("D{:03}", i + 1));
        }
    }

    /// `DESIGN.md` §8.3 must contain exactly one catalogue row per
    /// code, with the severity and meaning the enum declares — the
    /// drift this test forbids is how stale docs happen.
    #[test]
    fn design_md_catalogue_matches_enum() {
        let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
            .expect("DESIGN.md at the workspace root");
        for c in Code::ALL {
            let sev = match c.severity() {
                Severity::Warning => "warn",
                Severity::Error => "error",
            };
            let row = format!("| {} | {} | {} |", c.as_str(), sev, c.summary());
            assert!(
                doc.contains(&row),
                "DESIGN.md §8.3 is missing or has drifted for {c}: expected row\n{row}"
            );
        }
        // No phantom rows for codes the enum does not define.
        let rows = doc
            .lines()
            .filter(|l| {
                let l = l.trim_start();
                l.starts_with("| P0") || l.starts_with("| D0")
            })
            .count();
        assert_eq!(rows, Code::ALL.len(), "DESIGN.md §8.3 row count drifted");
    }

    #[test]
    fn report_severity_accounting() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert!(r.clone().into_result().is_ok());
        r.push(Diagnostic::new(Code::UnconsumedSend, Site::Graph, "idle"));
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.error_count(), 0);
        assert!(!r.is_clean());
        assert!(r.clone().into_result().is_ok());
        r.push(Diagnostic::new(
            Code::DataRace,
            Site::Tasks(TaskId(3), TaskId(7)),
            "unordered read/write",
        ));
        assert_eq!(r.error_count(), 1);
        let err = r.clone().into_result().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("P010"), "{msg}");
        assert!(msg.contains("tasks 3/7"), "{msg}");
        assert!(!msg.contains("P007"), "warnings must not fail: {msg}");
    }
}

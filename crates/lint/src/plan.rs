//! The CaSync plan verifier.
//!
//! Builds a happens-before relation over a [`TaskGraph`] (transitive
//! closure of the dependency edges) plus the fabric's send/recv
//! pairing, then statically replays the interpreter's value-flow
//! rules over every task. Anything the reference interpreter or the
//! concurrent thread engine could trip over at run time — unmatched
//! sends, payloads of the wrong kind, reads of chunks another task
//! may still be writing — becomes a [`Diagnostic`] here, before any
//! engine runs.
//!
//! The diagnostic catalogue (`P001`–`P016`) is documented on
//! [`Code`] and in `DESIGN.md`.

use std::collections::{BTreeMap, HashMap, VecDeque};

use hipress_core::graph::{Primitive, SendSrc, TaskGraph, TaskId, TaskNode};

use crate::diag::{Code, Diagnostic, Report, Site};

/// Graphs beyond this many tasks only get the structural checks; the
/// happens-before closure is quadratic in memory (n²/8 bytes) and the
/// deep checks are quadratic per cell/channel.
pub const DEEP_ANALYSIS_LIMIT: usize = 20_000;

/// A chunk replica: one node's accumulator for one gradient chunk.
type Cell = (usize, u32, u32);

/// What a task does to its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Read,
    Write,
}

/// What travels over a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Raw,
    Compressed,
}

/// Verifies a task graph against a cluster of `cluster_nodes` nodes.
///
/// Runs every check that does not require dependency edges to be
/// well-formed first; if edges are broken (orphan deps, cycles) the
/// deep happens-before phase is skipped — its diagnostics would be
/// noise on top of the structural ones.
pub fn verify(graph: &TaskGraph, cluster_nodes: usize) -> Report {
    let mut report = Report::new();
    let deps_ok = structural(graph, cluster_nodes, &mut report);
    if !deps_ok {
        return report;
    }
    let Some(topo) = topo_or_cycle(graph, &mut report) else {
        return report;
    };
    if graph.len() > DEEP_ANALYSIS_LIMIT {
        report.push(Diagnostic::new(
            Code::AnalysisSkipped,
            Site::Graph,
            format!(
                "graph has {} tasks (> {DEEP_ANALYSIS_LIMIT}); deep analysis skipped",
                graph.len()
            ),
        ));
        return report;
    }
    let hb = Closure::build(graph, &topo);
    let pairing = Pairing::build(graph);
    value_sources(graph, &hb, &pairing, &mut report);
    races(graph, &hb, &mut report);
    fifo_order(graph, &hb, &pairing, &mut report);
    completion(graph, &hb, &mut report);
    chunk_sizes(graph, &mut report);
    report
}

/// Short human label for a task: `Send(node 2, g0.p1)`.
fn describe(t: &TaskNode) -> String {
    format!(
        "{:?}(node {}, g{}.p{})",
        t.prim, t.node, t.chunk.grad, t.chunk.part
    )
}

/// Node bounds, dependency sanity, peer sanity, send/recv pairing.
/// Returns false when dependency edges themselves are broken.
fn structural(graph: &TaskGraph, cluster_nodes: usize, report: &mut Report) -> bool {
    let n = graph.len();
    let mut deps_ok = true;
    for t in graph.tasks() {
        if t.node >= cluster_nodes {
            report.push(Diagnostic::new(
                Code::UnknownNode,
                Site::Task(t.id),
                format!(
                    "{} placed on node {} of a {cluster_nodes}-node cluster",
                    describe(t),
                    t.node
                ),
            ));
        }
        for d in &t.deps {
            if d.0 as usize >= n || *d == t.id {
                deps_ok = false;
                report.push(Diagnostic::new(
                    Code::OrphanDep,
                    Site::Task(t.id),
                    format!(
                        "{} depends on nonexistent or self task {}",
                        describe(t),
                        d.0
                    ),
                ));
            }
        }
        match t.prim {
            Primitive::Send | Primitive::Recv => match t.peer {
                None => report.push(Diagnostic::new(
                    Code::BadPeer,
                    Site::Task(t.id),
                    format!("{} lacks a peer", describe(t)),
                )),
                Some(p) if p == t.node || p >= cluster_nodes => report.push(Diagnostic::new(
                    Code::BadPeer,
                    Site::Task(t.id),
                    format!("{} has bad peer {p}", describe(t)),
                )),
                Some(_) => {}
            },
            _ => {}
        }
    }
    if !deps_ok {
        return false;
    }
    for t in graph.tasks() {
        if t.prim != Primitive::Recv {
            continue;
        }
        let sends: Vec<&TaskNode> = t
            .deps
            .iter()
            .map(|d| graph.task(*d))
            .filter(|d| d.prim == Primitive::Send)
            .collect();
        match sends.as_slice() {
            [s] => {
                if t.peer.is_some() && (s.node != t.peer.unwrap() || s.peer != Some(t.node)) {
                    report.push(Diagnostic::new(
                        Code::UnpairedRecv,
                        Site::Tasks(t.id, s.id),
                        format!(
                            "{} expects its payload from node {:?} but is wired to {} ({} -> {:?})",
                            describe(t),
                            t.peer,
                            describe(s),
                            s.node,
                            s.peer
                        ),
                    ));
                } else if s.chunk != t.chunk || s.bytes_wire != t.bytes_wire {
                    report.push(Diagnostic::new(
                        Code::PayloadMismatch,
                        Site::Tasks(t.id, s.id),
                        format!(
                            "{} (g{}.p{}, {} wire bytes) disagrees with {} (g{}.p{}, {} wire bytes)",
                            describe(t),
                            t.chunk.grad,
                            t.chunk.part,
                            t.bytes_wire,
                            describe(s),
                            s.chunk.grad,
                            s.chunk.part,
                            s.bytes_wire
                        ),
                    ));
                }
            }
            _ => report.push(Diagnostic::new(
                Code::UnpairedRecv,
                Site::Task(t.id),
                format!(
                    "{} depends on {} sends (want exactly 1)",
                    describe(t),
                    sends.len()
                ),
            )),
        }
    }
    true
}

/// Kahn order, or a cycle diagnostic.
fn topo_or_cycle(graph: &TaskGraph, report: &mut Report) -> Option<Vec<TaskId>> {
    let n = graph.len();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for t in graph.tasks() {
        for d in &t.deps {
            indeg[t.id.0 as usize] += 1;
            out[d.0 as usize].push(t.id.0);
        }
    }
    let mut q: VecDeque<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = q.pop_front() {
        order.push(TaskId(i));
        for &s in &out[i as usize] {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                q.push_back(s);
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n).filter(|&i| indeg[i] > 0).count();
        let witness = (0..n).find(|&i| indeg[i] > 0).unwrap();
        report.push(Diagnostic::new(
            Code::DependencyCycle,
            Site::Task(TaskId(witness as u32)),
            format!(
                "dependency cycle: {stuck} tasks can never run, e.g. {}",
                describe(graph.task(TaskId(witness as u32)))
            ),
        ));
        return None;
    }
    Some(order)
}

/// Transitive closure of the dependency relation as per-task ancestor
/// bitsets.
struct Closure {
    words: usize,
    rows: Vec<u64>,
}

impl Closure {
    fn build(graph: &TaskGraph, topo: &[TaskId]) -> Self {
        let n = graph.len();
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        for &id in topo {
            let i = id.0 as usize;
            for d in &graph.task(id).deps {
                let di = d.0 as usize;
                let (dst, src) = split_rows(&mut rows, i, di, words);
                for (a, b) in dst.iter_mut().zip(src) {
                    *a |= *b;
                }
                rows[i * words + di / 64] |= 1 << (di % 64);
            }
        }
        Self { words, rows }
    }

    /// True when `anc` happens strictly before `desc` (is an
    /// ancestor).
    fn before(&self, anc: TaskId, desc: TaskId) -> bool {
        let (a, d) = (anc.0 as usize, desc.0 as usize);
        self.rows[d * self.words + a / 64] >> (a % 64) & 1 == 1
    }

    /// True when the two tasks are ordered either way.
    fn ordered(&self, a: TaskId, b: TaskId) -> bool {
        self.before(a, b) || self.before(b, a)
    }
}

/// Borrows row `i` mutably and row `j` immutably from the flat bitset.
fn split_rows(rows: &mut [u64], i: usize, j: usize, words: usize) -> (&mut [u64], &[u64]) {
    debug_assert_ne!(i, j);
    if i < j {
        let (lo, hi) = rows.split_at_mut(j * words);
        (&mut lo[i * words..(i + 1) * words], &hi[..words])
    } else {
        let (lo, hi) = rows.split_at_mut(i * words);
        (&mut hi[..words], &lo[j * words..(j + 1) * words])
    }
}

/// The fabric view: which recvs consume which sends.
struct Pairing {
    /// send id → recvs listing it as a direct dependency.
    consumers: HashMap<TaskId, Vec<TaskId>>,
}

impl Pairing {
    fn build(graph: &TaskGraph) -> Self {
        let mut consumers: HashMap<TaskId, Vec<TaskId>> = HashMap::new();
        for t in graph.tasks() {
            if t.prim != Primitive::Recv {
                continue;
            }
            for d in &t.deps {
                if graph.task(*d).prim == Primitive::Send {
                    consumers.entry(*d).or_default().push(t.id);
                }
            }
        }
        Self { consumers }
    }

    /// The recv consuming this send, when unique.
    fn recv_of(&self, send: TaskId) -> Option<TaskId> {
        match self.consumers.get(&send).map(Vec::as_slice) {
            Some([r]) => Some(*r),
            _ => None,
        }
    }
}

/// Mirrors the interpreter's `find_dep`: depth-first over direct
/// dependencies, looking through `Barrier` pseudo-tasks only.
fn find_dep(graph: &TaskGraph, t: &TaskNode, want: Primitive) -> Option<TaskId> {
    let mut stack: Vec<TaskId> = t.deps.clone();
    while let Some(d) = stack.pop() {
        let dt = graph.task(d);
        if dt.prim == want {
            return Some(d);
        }
        if dt.prim == Primitive::Barrier {
            stack.extend(dt.deps.iter().copied());
        }
    }
    None
}

/// The payload kind a send puts on the wire (`None` when the forward
/// chain is broken — reported elsewhere).
fn send_kind(graph: &TaskGraph, send: TaskId) -> Option<Kind> {
    let t = graph.task(send);
    match t.send_src {
        SendSrc::Raw => Some(Kind::Raw),
        SendSrc::Encoded => Some(Kind::Compressed),
        SendSrc::Forward => {
            let recv = find_dep(graph, t, Primitive::Recv)?;
            let upstream = graph
                .task(recv)
                .deps
                .iter()
                .copied()
                .find(|d| graph.task(*d).prim == Primitive::Send)?;
            send_kind(graph, upstream)
        }
    }
}

/// The payload kind a recv delivers.
fn recv_kind(graph: &TaskGraph, recv: TaskId) -> Option<Kind> {
    let send = graph
        .task(recv)
        .deps
        .iter()
        .copied()
        .find(|d| graph.task(*d).prim == Primitive::Send)?;
    send_kind(graph, send)
}

/// Sources per cell, for initialized-before-read checks.
fn cell_sources(graph: &TaskGraph) -> HashMap<Cell, Vec<TaskId>> {
    let mut m: HashMap<Cell, Vec<TaskId>> = HashMap::new();
    for t in graph.tasks() {
        if t.prim == Primitive::Source {
            m.entry((t.node, t.chunk.grad, t.chunk.part))
                .or_default()
                .push(t.id);
        }
    }
    m
}

/// Statically replays the interpreter's per-primitive value-source
/// resolution: every task must be able to find the data it consumes,
/// of the kind it expects (`P008`, `P009`, `P007`).
fn value_sources(graph: &TaskGraph, hb: &Closure, pairing: &Pairing, report: &mut Report) {
    let sources = cell_sources(graph);
    let initialized = |t: &TaskNode| {
        sources
            .get(&(t.node, t.chunk.grad, t.chunk.part))
            .is_some_and(|ss| ss.iter().any(|s| hb.before(*s, t.id)))
    };
    let missing = |report: &mut Report, t: &TaskNode, what: &str| {
        report.push(Diagnostic::new(
            Code::MissingValueSource,
            Site::Task(t.id),
            format!("{}: {what}", describe(t)),
        ));
    };
    for t in graph.tasks() {
        match t.prim {
            Primitive::Encode => {
                if !initialized(t) {
                    missing(report, t, "encodes a chunk no Source initialized before it");
                }
            }
            Primitive::Decode => match find_dep(graph, t, Primitive::Recv) {
                None => missing(report, t, "decode without a recv dependency"),
                Some(r) => {
                    if recv_kind(graph, r) == Some(Kind::Raw) {
                        report.push(Diagnostic::new(
                            Code::PayloadKindMismatch,
                            Site::Tasks(t.id, r),
                            format!("{} decodes a raw payload", describe(t)),
                        ));
                    }
                }
            },
            Primitive::Merge => {
                if !initialized(t) {
                    missing(
                        report,
                        t,
                        "merges into an accumulator no Source initialized",
                    );
                }
                if find_dep(graph, t, Primitive::Decode).is_none() {
                    match find_dep(graph, t, Primitive::Recv) {
                        None => missing(report, t, "merge with nothing to merge"),
                        Some(r) => {
                            if recv_kind(graph, r) == Some(Kind::Compressed) {
                                report.push(Diagnostic::new(
                                    Code::PayloadKindMismatch,
                                    Site::Tasks(t.id, r),
                                    format!(
                                        "{} raw-merges a compressed payload (missing decode)",
                                        describe(t)
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            Primitive::Send => {
                match t.send_src {
                    SendSrc::Raw => {
                        if !initialized(t) {
                            missing(report, t, "raw send of a chunk no Source initialized");
                        }
                    }
                    SendSrc::Encoded => {
                        if find_dep(graph, t, Primitive::Encode).is_none() {
                            missing(report, t, "encoded send without an encode dependency");
                        }
                    }
                    SendSrc::Forward => {
                        if find_dep(graph, t, Primitive::Recv).is_none() {
                            missing(report, t, "forward send without a recv dependency");
                        }
                    }
                }
                if !pairing.consumers.contains_key(&t.id) {
                    report.push(Diagnostic::new(
                        Code::UnconsumedSend,
                        Site::Task(t.id),
                        format!("{} is never consumed by a recv", describe(t)),
                    ));
                }
            }
            Primitive::Update => {
                if !sources.contains_key(&(t.node, t.chunk.grad, t.chunk.part)) {
                    missing(report, t, "commits a chunk replica that has no Source");
                } else if find_dep(graph, t, Primitive::Decode).is_some() {
                    // Installs the decoded payload.
                } else if let Some(r) = find_dep(graph, t, Primitive::Recv) {
                    if recv_kind(graph, r) == Some(Kind::Compressed) {
                        report.push(Diagnostic::new(
                            Code::PayloadKindMismatch,
                            Site::Tasks(t.id, r),
                            format!(
                                "{} raw-installs a compressed payload (missing decode)",
                                describe(t)
                            ),
                        ));
                    }
                } else if find_dep(graph, t, Primitive::Encode).is_some() {
                    // Installs the decode∘encode reconstruction.
                } else if !initialized(t) {
                    missing(report, t, "commits an accumulator no Source initialized");
                }
            }
            _ => {}
        }
    }
}

/// How a task touches its cell, if at all. A foreign-valued `Update`
/// (one that installs a decode/recv/encode product) overwrites the
/// accumulator; a fallback `Update` re-installs the accumulator's own
/// value and is a read.
fn access_of(graph: &TaskGraph, t: &TaskNode) -> Option<Access> {
    match t.prim {
        Primitive::Source => Some(Access::Write),
        Primitive::Encode => Some(Access::Read),
        Primitive::Merge => Some(Access::Write),
        Primitive::Send if t.send_src == SendSrc::Raw => Some(Access::Read),
        Primitive::Update => {
            let foreign = find_dep(graph, t, Primitive::Decode).is_some()
                || find_dep(graph, t, Primitive::Recv).is_some()
                || find_dep(graph, t, Primitive::Encode).is_some();
            Some(if foreign { Access::Write } else { Access::Read })
        }
        _ => None,
    }
}

/// Unordered read/write and write/write pairs on one chunk replica
/// (`P010`, `P011`) — the PR-1 dissemination bug class.
fn races(graph: &TaskGraph, hb: &Closure, report: &mut Report) {
    let mut cells: BTreeMap<Cell, Vec<(TaskId, Access)>> = BTreeMap::new();
    for t in graph.tasks() {
        if let Some(a) = access_of(graph, t) {
            cells
                .entry((t.node, t.chunk.grad, t.chunk.part))
                .or_default()
                .push((t.id, a));
        }
    }
    for ((node, grad, part), accs) in cells {
        for (i, &(a, ka)) in accs.iter().enumerate() {
            for &(b, kb) in &accs[i + 1..] {
                if ka == Access::Read && kb == Access::Read {
                    continue;
                }
                if hb.ordered(a, b) {
                    continue;
                }
                let (code, what) = if ka == Access::Write && kb == Access::Write {
                    (Code::DoubleWrite, "both write")
                } else {
                    (Code::DataRace, "read and write")
                };
                report.push(Diagnostic::new(
                    code,
                    Site::Tasks(a, b),
                    format!(
                        "{} and {} {what} node {node}'s replica of g{grad}.p{part} \
                         with no happens-before edge",
                        describe(graph.task(a)),
                        describe(graph.task(b)),
                    ),
                ));
            }
        }
    }
}

/// Per-channel FIFO consistency (`P012`): if two sends on one
/// `from → to` channel are ordered, their receives must complete in
/// the same order, or a FIFO fabric wedges/crosses payloads.
fn fifo_order(graph: &TaskGraph, hb: &Closure, pairing: &Pairing, report: &mut Report) {
    let mut channels: BTreeMap<(usize, usize), Vec<TaskId>> = BTreeMap::new();
    for t in graph.tasks() {
        if t.prim == Primitive::Send {
            if let Some(p) = t.peer {
                channels.entry((t.node, p)).or_default().push(t.id);
            }
        }
    }
    for ((from, to), sends) in channels {
        for (i, &s1) in sends.iter().enumerate() {
            let Some(r1) = pairing.recv_of(s1) else {
                continue;
            };
            for &s2 in &sends[i + 1..] {
                let Some(r2) = pairing.recv_of(s2) else {
                    continue;
                };
                let inverted = (hb.before(s1, s2) && hb.before(r2, r1))
                    || (hb.before(s2, s1) && hb.before(r1, r2));
                if inverted {
                    report.push(Diagnostic::new(
                        Code::FifoInversion,
                        Site::Tasks(s1, s2),
                        format!(
                            "sends {} and {} on channel {from} -> {to} are ordered one way \
                             but their recvs are consumed in the opposite order",
                            s1.0, s2.0
                        ),
                    ));
                }
            }
        }
    }
}

/// Every initialized nonzero chunk replica must be committed by an
/// `Update` (`P013`), and every such `Update` must causally follow
/// every node's `Source` for that chunk (`P014`) — otherwise it
/// commits a partial aggregate.
fn completion(graph: &TaskGraph, hb: &Closure, report: &mut Report) {
    let mut chunk_sources: BTreeMap<(u32, u32), Vec<TaskId>> = BTreeMap::new();
    let mut nonzero: BTreeMap<(u32, u32), bool> = BTreeMap::new();
    for t in graph.tasks() {
        if t.prim == Primitive::Source {
            chunk_sources
                .entry((t.chunk.grad, t.chunk.part))
                .or_default()
                .push(t.id);
            *nonzero.entry((t.chunk.grad, t.chunk.part)).or_default() |= t.bytes_raw > 0;
        }
    }
    let mut updates: BTreeMap<Cell, Vec<TaskId>> = BTreeMap::new();
    for t in graph.tasks() {
        if t.prim == Primitive::Update {
            updates
                .entry((t.node, t.chunk.grad, t.chunk.part))
                .or_default()
                .push(t.id);
        }
    }
    for (&(grad, part), srcs) in &chunk_sources {
        if !nonzero[&(grad, part)] {
            continue;
        }
        for &s in srcs {
            let node = graph.task(s).node;
            match updates.get(&(node, grad, part)) {
                None => report.push(Diagnostic::new(
                    Code::MissingCompletion,
                    Site::Task(s),
                    format!(
                        "node {node}'s replica of g{grad}.p{part} is initialized \
                         but never committed by an Update"
                    ),
                )),
                Some(ups) => {
                    for &u in ups {
                        if let Some(&miss) = srcs.iter().find(|&&other| !hb.before(other, u)) {
                            report.push(Diagnostic::new(
                                Code::IncompleteAggregation,
                                Site::Tasks(u, miss),
                                format!(
                                    "{} commits g{grad}.p{part} without node {}'s \
                                     contribution (Source {} is not an ancestor)",
                                    describe(graph.task(u)),
                                    graph.task(miss).node,
                                    miss.0
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// All non-barrier tasks touching one chunk must agree on its raw
/// size (`P015`).
fn chunk_sizes(graph: &TaskGraph, report: &mut Report) {
    let mut sizes: BTreeMap<(u32, u32), Vec<(u64, TaskId)>> = BTreeMap::new();
    for t in graph.tasks() {
        if t.prim != Primitive::Barrier {
            sizes
                .entry((t.chunk.grad, t.chunk.part))
                .or_default()
                .push((t.bytes_raw, t.id));
        }
    }
    for ((grad, part), mut seen) in sizes {
        seen.sort_unstable();
        seen.dedup_by_key(|(b, _)| *b);
        if seen.len() > 1 {
            report.push(Diagnostic::new(
                Code::ChunkSizeMismatch,
                Site::Tasks(seen[0].1, seen[seen.len() - 1].1),
                format!(
                    "tasks on g{grad}.p{part} disagree on its raw size: {:?}",
                    seen.iter().map(|(b, _)| *b).collect::<Vec<_>>()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipress_core::graph::{task, ChunkId, TaskGraph, TaskNode};

    fn chunk() -> ChunkId {
        ChunkId { grad: 0, part: 0 }
    }

    /// A minimal clean two-node exchange: 0 sends its raw chunk, 1
    /// merges it and both commit.
    fn clean_pair() -> TaskGraph {
        let mut g = TaskGraph::new();
        let s0 = g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            ..task(0, Primitive::Source, chunk())
        });
        let s1 = g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            ..task(1, Primitive::Source, chunk())
        });
        let send = g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![s0],
            ..task(0, Primitive::Send, chunk())
        });
        let recv = g.add(TaskNode {
            peer: Some(0),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![send],
            ..task(1, Primitive::Recv, chunk())
        });
        let merge = g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![recv, s1],
            ..task(1, Primitive::Merge, chunk())
        });
        let back = g.add(TaskNode {
            peer: Some(0),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![merge],
            ..task(1, Primitive::Send, chunk())
        });
        let recv0 = g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![back],
            ..task(0, Primitive::Recv, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![recv0],
            ..task(0, Primitive::Update, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![merge],
            ..task(1, Primitive::Update, chunk())
        });
        g
    }

    #[test]
    fn clean_exchange_passes() {
        let r = verify(&clean_pair(), 2);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn unknown_node_flagged() {
        let mut g = TaskGraph::new();
        g.add(task(5, Primitive::Source, chunk()));
        assert!(verify(&g, 2).has(Code::UnknownNode));
    }

    #[test]
    fn self_send_flagged() {
        let mut g = TaskGraph::new();
        g.add(TaskNode {
            peer: Some(0),
            ..task(0, Primitive::Send, chunk())
        });
        assert!(verify(&g, 2).has(Code::BadPeer));
    }

    #[test]
    fn recv_without_send_flagged() {
        let mut g = TaskGraph::new();
        g.add(TaskNode {
            peer: Some(0),
            ..task(1, Primitive::Recv, chunk())
        });
        assert!(verify(&g, 2).has(Code::UnpairedRecv));
    }

    #[test]
    fn mismatched_payload_flagged() {
        let mut g = clean_pair();
        g.task_mut(TaskId(3)).bytes_wire = 50;
        assert!(verify(&g, 2).has(Code::PayloadMismatch));
    }

    #[test]
    fn retargeted_recv_flagged() {
        let mut g = clean_pair();
        g.task_mut(TaskId(3)).peer = Some(1);
        let r = verify(&g, 3);
        assert!(
            r.has(Code::UnpairedRecv) || r.has(Code::BadPeer),
            "{}",
            r.render()
        );
    }

    #[test]
    fn cycle_flagged() {
        let mut g = clean_pair();
        // Make the first Source depend on the last Update: a cycle.
        g.task_mut(TaskId(0)).deps.push(TaskId(8));
        assert!(verify(&g, 2).has(Code::DependencyCycle));
    }

    #[test]
    fn orphan_dep_flagged() {
        let mut g = clean_pair();
        g.task_mut(TaskId(2)).deps.push(TaskId(99));
        assert!(verify(&g, 2).has(Code::OrphanDep));
    }

    #[test]
    fn unordered_read_write_flagged_as_race() {
        let mut g = clean_pair();
        // Cut the edge ordering node 1's merge after its own source:
        // Source(1) write now races with nothing ordering it before
        // the merge write.
        g.task_mut(TaskId(4)).deps.retain(|d| *d != TaskId(1));
        let r = verify(&g, 2);
        assert!(
            r.has(Code::DataRace) || r.has(Code::DoubleWrite),
            "{}",
            r.render()
        );
    }

    #[test]
    fn missing_completion_flagged() {
        let mut g = clean_pair();
        // Retarget node 0's update to a different chunk: node 0's
        // replica of g0.p0 is never committed.
        g.task_mut(TaskId(7)).chunk = ChunkId { grad: 1, part: 0 };
        let r = verify(&g, 2);
        assert!(r.has(Code::MissingCompletion), "{}", r.render());
    }

    #[test]
    fn partial_aggregate_flagged() {
        let mut g = clean_pair();
        // Node 1's update no longer waits for the merge — it commits
        // before node 0's contribution arrived.
        let merge = TaskId(4);
        let upd = TaskId(8);
        g.task_mut(upd).deps.retain(|d| *d != merge);
        g.task_mut(upd).deps.push(TaskId(1));
        let r = verify(&g, 2);
        assert!(r.has(Code::IncompleteAggregation), "{}", r.render());
    }

    #[test]
    fn unconsumed_send_warns() {
        let mut g = clean_pair();
        // Depends on node 0's final Update so the extra read races
        // with nothing — the only defect is the dangling payload.
        g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![TaskId(7)],
            ..task(0, Primitive::Send, chunk())
        });
        let r = verify(&g, 2);
        assert!(r.has(Code::UnconsumedSend));
        assert_eq!(r.error_count(), 0, "{}", r.render());
    }

    #[test]
    fn chunk_size_disagreement_warns() {
        let mut g = clean_pair();
        g.task_mut(TaskId(4)).bytes_raw = 64;
        let r = verify(&g, 2);
        assert!(r.has(Code::ChunkSizeMismatch), "{}", r.render());
    }

    #[test]
    fn decode_of_raw_payload_flagged() {
        let mut g = clean_pair();
        // Insert a decode after node 1's recv of a raw payload.
        g.add(TaskNode {
            bytes_raw: 100,
            bytes_wire: 100,
            deps: vec![TaskId(3)],
            ..task(1, Primitive::Decode, chunk())
        });
        let r = verify(&g, 2);
        assert!(r.has(Code::PayloadKindMismatch), "{}", r.render());
    }

    #[test]
    fn encoded_send_without_encode_flagged() {
        let mut g = clean_pair();
        g.task_mut(TaskId(2)).send_src = SendSrc::Encoded;
        let r = verify(&g, 2);
        assert!(r.has(Code::MissingValueSource), "{}", r.render());
    }

    #[test]
    fn fifo_inversion_flagged() {
        // Two ordered sends 0 -> 1 whose recvs are consumed in the
        // opposite order.
        let mut g = TaskGraph::new();
        let src = g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            ..task(0, Primitive::Source, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            ..task(1, Primitive::Source, chunk())
        });
        let s1 = g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![src],
            ..task(0, Primitive::Send, chunk())
        });
        let s2 = g.add(TaskNode {
            peer: Some(1),
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![s1],
            ..task(0, Primitive::Send, chunk())
        });
        let r2 = g.add(TaskNode {
            peer: Some(0),
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![s2],
            ..task(1, Primitive::Recv, chunk())
        });
        let r1 = g.add(TaskNode {
            peer: Some(0),
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![s1, r2],
            ..task(1, Primitive::Recv, chunk())
        });
        let m = g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![r1, TaskId(1)],
            ..task(1, Primitive::Merge, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![m, src],
            ..task(1, Primitive::Update, chunk())
        });
        g.add(TaskNode {
            bytes_raw: 8,
            bytes_wire: 8,
            deps: vec![s2, src],
            ..task(0, Primitive::Update, chunk())
        });
        let r = verify(&g, 2);
        assert!(r.has(Code::FifoInversion), "{}", r.render());
    }
}
